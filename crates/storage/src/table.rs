//! The table store: an ordered sequence of segments.

use std::collections::BTreeSet;

use fungus_types::{FungusError, Result, Schema, Tick, Tuple, TupleId, Value};

use crate::config::StorageConfig;
use crate::index::{HashIndex, OrdIndex};
use crate::segment::{Segment, TombstoneReason};
use crate::stats::TableStats;

/// What one [`compact`](TableStore::compact) pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Fully dead sealed segments dropped outright.
    pub segments_dropped: usize,
    /// Sparse-converted (or summary-rebuilt) segments.
    pub segments_compacted: usize,
    /// Approximate bytes reclaimed (slot memory of dropped/converted
    /// segments; a lower bound).
    pub bytes_reclaimed: usize,
}

/// The physical store behind one container: time-ordered segments of
/// tuples, the infected-tuple index, and eviction accounting.
///
/// ```
/// use fungus_storage::TableStore;
/// use fungus_types::{DataType, Schema, Tick, Value};
///
/// let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
/// let mut table = TableStore::new(schema, Default::default()).unwrap();
/// let id = table.insert(vec![Value::Int(42)], Tick(1)).unwrap();
/// assert_eq!(table.live_count(), 1);
/// assert_eq!(table.get(id).unwrap().values[0], Value::Int(42));
/// ```
#[derive(Debug, Clone)]
pub struct TableStore {
    schema: Schema,
    config: StorageConfig,
    segments: Vec<Segment>,
    /// First id this store may allocate (0 for a standalone table; a
    /// shard's global range start when the store backs a shard).
    base: u64,
    next_id: u64,
    total_inserted: u64,
    infected: BTreeSet<TupleId>,
    indexes: Vec<HashIndex>,
    ord_indexes: Vec<OrdIndex>,
    evicted_rotted: u64,
    evicted_consumed: u64,
    evicted_deleted: u64,
    /// Rotted tuples that were never returned by any query — the paper's
    /// wasted rice.
    rotted_unread: u64,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new(schema: Schema, config: StorageConfig) -> Result<Self> {
        config.validate()?;
        Ok(TableStore {
            schema,
            config,
            segments: Vec::new(),
            base: 0,
            next_id: 0,
            total_inserted: 0,
            infected: BTreeSet::new(),
            indexes: Vec::new(),
            ord_indexes: Vec::new(),
            evicted_rotted: 0,
            evicted_consumed: 0,
            evicted_deleted: 0,
            rotted_unread: 0,
        })
    }

    /// Creates an empty store whose first insert receives id `base`.
    ///
    /// Sharded extents give every shard a contiguous id range; each shard's
    /// store keeps absolute ids so tuple ids stay globally unique and
    /// time-ordered across the whole extent.
    pub fn with_base(schema: Schema, config: StorageConfig, base: TupleId) -> Result<Self> {
        let mut store = TableStore::new(schema, config)?;
        store.base = base.get();
        store.next_id = base.get();
        Ok(store)
    }

    /// First id this store may allocate (0 unless built via
    /// [`with_base`](Self::with_base) or restored from a based snapshot).
    #[inline]
    pub fn base(&self) -> TupleId {
        TupleId(self.base)
    }

    /// The store's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The store's configuration.
    #[inline]
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Validates, normalises, and appends a row at time `now`, returning the
    /// new tuple's id.
    pub fn insert(&mut self, values: Vec<Value>, now: Tick) -> Result<TupleId> {
        let values = self.schema.normalise_row(values)?;
        let id = TupleId(self.next_id);
        let tuple = Tuple::new(id, now, values);
        self.push_tail(tuple);
        Ok(id)
    }

    /// Appends a pre-built tuple during snapshot/WAL restore. The tuple's id
    /// must be the next dense id.
    pub fn insert_restored(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.meta.id.get() != self.next_id {
            return Err(FungusError::CorruptSnapshot(format!(
                "restore out of order: expected id {}, got {}",
                self.next_id, tuple.meta.id
            )));
        }
        self.schema.check_row(&tuple.values)?;
        if tuple.meta.infected {
            self.infected.insert(tuple.meta.id);
        }
        self.push_tail(tuple);
        Ok(())
    }

    /// Records a tombstone during restore (the tuple never materialises).
    pub fn tombstone_restored(&mut self, reason: TombstoneReason) -> Result<()> {
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.total_inserted += 1;
        let arity = self.zone_arity();
        let seg = self.tail_segment(arity);
        seg.push_slot_restored(crate::segment::Slot::Tombstone(reason));
        debug_assert!(seg.covers(id));
        match reason {
            TombstoneReason::Rotted => self.evicted_rotted += 1,
            TombstoneReason::Consumed => self.evicted_consumed += 1,
            TombstoneReason::Deleted => self.evicted_deleted += 1,
        }
        Ok(())
    }

    fn push_tail(&mut self, tuple: Tuple) {
        self.next_id += 1;
        self.total_inserted += 1;
        for idx in &mut self.indexes {
            idx.insert(tuple.meta.id, &tuple.values[idx.column()]);
        }
        for idx in &mut self.ord_indexes {
            idx.insert(tuple.meta.id, &tuple.values[idx.column()]);
        }
        let arity = self.zone_arity();
        self.tail_segment(arity).push(tuple);
    }

    /// Zone maps cover every column, or none when disabled by config (the
    /// pruning ablation): a zero-arity map has no entries, so every
    /// pruning check conservatively answers "may match".
    fn zone_arity(&self) -> usize {
        if self.config.zone_maps {
            self.schema.arity()
        } else {
            0
        }
    }

    fn tail_segment(&mut self, arity: usize) -> &mut Segment {
        let needs_new = match self.segments.last() {
            Some(seg) => seg.is_sealed(),
            None => true,
        };
        if needs_new {
            let base = TupleId(self.next_id - 1);
            self.segments
                .push(Segment::new(base, self.config.segment_capacity, arity));
        }
        self.segments.last_mut().expect("tail exists")
    }

    /// Binary-searches the segment covering `id`.
    fn segment_index(&self, id: TupleId) -> Option<usize> {
        let idx = self.segments.partition_point(|s| s.end() <= id);
        (idx < self.segments.len() && self.segments[idx].covers(id)).then_some(idx)
    }

    /// The live tuple with `id`, if present.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        let idx = self.segment_index(id)?;
        self.segments[idx].get(id)
    }

    /// Mutable access to the live tuple with `id` (metadata mutation only).
    pub fn get_mut(&mut self, id: TupleId) -> Option<&mut Tuple> {
        let idx = self.segment_index(id)?;
        self.segments[idx].get_mut(id)
    }

    /// Tombstones `id`, returning the removed tuple and maintaining the
    /// infected index and eviction accounting.
    pub fn delete(&mut self, id: TupleId, reason: TombstoneReason) -> Option<Tuple> {
        let idx = self.segment_index(id)?;
        let tuple = self.segments[idx].remove(id, reason)?;
        self.infected.remove(&id);
        for index in &mut self.indexes {
            index.remove(id, &tuple.values[index.column()]);
        }
        for index in &mut self.ord_indexes {
            index.remove(id, &tuple.values[index.column()]);
        }
        match reason {
            TombstoneReason::Rotted => {
                self.evicted_rotted += 1;
                if tuple.meta.never_read() {
                    self.rotted_unread += 1;
                }
            }
            TombstoneReason::Consumed => self.evicted_consumed += 1,
            TombstoneReason::Deleted => self.evicted_deleted += 1,
        }
        Some(tuple)
    }

    /// Records a read access on `id` at time `now`.
    pub fn touch(&mut self, id: TupleId, now: Tick) {
        if let Some(t) = self.get_mut(id) {
            t.meta.touch(now);
        }
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.segments.iter().map(Segment::live_count).sum()
    }

    /// Total tuples ever inserted (live + evicted).
    #[inline]
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// The id the next insert will receive.
    #[inline]
    pub fn next_id(&self) -> TupleId {
        TupleId(self.next_id)
    }

    /// Approximate live-data heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.segments.iter().map(Segment::approx_bytes).sum()
    }

    /// Tuples evicted by rot (first law).
    #[inline]
    pub fn evicted_rotted(&self) -> u64 {
        self.evicted_rotted
    }

    /// Tuples consumed by queries (second law).
    #[inline]
    pub fn evicted_consumed(&self) -> u64 {
        self.evicted_consumed
    }

    /// Tuples explicitly deleted.
    #[inline]
    pub fn evicted_deleted(&self) -> u64 {
        self.evicted_deleted
    }

    /// Rotted tuples that no query ever read.
    #[inline]
    pub fn rotted_unread(&self) -> u64 {
        self.rotted_unread
    }

    /// The segments in id order (query planning iterates these and prunes
    /// via [`Segment::zone`]).
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterates all live tuples in insertion order.
    pub fn iter_live(&self) -> impl Iterator<Item = &Tuple> {
        self.segments.iter().flat_map(|s| s.iter_live())
    }

    /// Iterates all live tuples mutably in insertion order.
    pub fn iter_live_mut(&mut self) -> impl Iterator<Item = &mut Tuple> {
        self.segments.iter_mut().flat_map(|s| s.iter_live_mut())
    }

    /// The nearest live neighbours of `id` along the time axis:
    /// `(predecessor, successor)`. `id` itself need not be live. Scans
    /// outward from `id`, skipping tombstones, so the cost is proportional
    /// to the hole size being crossed — in EGI that is the rot spot width.
    pub fn live_neighbors(&self, id: TupleId) -> (Option<TupleId>, Option<TupleId>) {
        let pred = self.prev_live(id);
        let succ = self.next_live(id);
        (pred, succ)
    }

    fn prev_live(&self, id: TupleId) -> Option<TupleId> {
        let mut cur = id.pred()?;
        loop {
            if self.get(cur).is_some() {
                return Some(cur);
            }
            cur = cur.pred()?;
        }
    }

    fn next_live(&self, id: TupleId) -> Option<TupleId> {
        let mut cur = id.succ();
        let end = TupleId(self.next_id);
        while cur < end {
            if self.get(cur).is_some() {
                return Some(cur);
            }
            cur = cur.succ();
        }
        None
    }

    /// Greatest live id strictly below `id`, or `None`. Unlike
    /// [`live_neighbors`](Self::live_neighbors) the scan is clamped to this
    /// store's own id range, so a sharded extent probing a predecessor
    /// shard does not pay for the id distance between shards.
    pub fn prev_live_below(&self, id: TupleId) -> Option<TupleId> {
        let floor = self.segments.first()?.base();
        let mut cur = TupleId(id.get().min(self.next_id)).pred()?;
        while cur >= floor {
            if self.get(cur).is_some() {
                return Some(cur);
            }
            cur = cur.pred()?;
        }
        None
    }

    /// Smallest live id at or above `id`, clamped to this store's range.
    pub fn next_live_from(&self, id: TupleId) -> Option<TupleId> {
        let mut cur = id.max(self.segments.first()?.base());
        let end = TupleId(self.next_id);
        while cur < end {
            if self.get(cur).is_some() {
                return Some(cur);
            }
            cur = cur.succ();
        }
        None
    }

    /// Marks `id` infected at `now`, maintaining the infected index.
    /// Returns false if the tuple is not live.
    pub fn infect(&mut self, id: TupleId, now: Tick) -> bool {
        if let Some(t) = self.get_mut(id) {
            t.meta.infect(now);
            self.infected.insert(id);
            true
        } else {
            false
        }
    }

    /// Cures `id`, clearing its infection.
    pub fn cure(&mut self, id: TupleId) -> bool {
        self.infected.remove(&id);
        if let Some(t) = self.get_mut(id) {
            t.meta.cure();
            true
        } else {
            false
        }
    }

    /// Cures every infected tuple (owner intervention in experiment E10).
    pub fn cure_all(&mut self) -> usize {
        let ids: Vec<TupleId> = self.infected.iter().copied().collect();
        for id in &ids {
            if let Some(t) = self.get_mut(*id) {
                t.meta.cure();
            }
        }
        self.infected.clear();
        ids.len()
    }

    /// The ids of currently infected live tuples, in id order.
    pub fn infected_ids(&self) -> Vec<TupleId> {
        self.infected.iter().copied().collect()
    }

    /// Number of infected live tuples.
    #[inline]
    pub fn infected_count(&self) -> usize {
        self.infected.len()
    }

    /// Builds a secondary hash index on the named column, covering every
    /// live tuple. Duplicate indexes are rejected.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| FungusError::UnknownColumn(column.to_string()))?;
        if self.indexes.iter().any(|i| i.column() == col) {
            return Err(FungusError::InvalidConfig(format!(
                "column `{column}` is already indexed"
            )));
        }
        let mut index = HashIndex::new(col);
        for t in self.iter_live() {
            index.insert(t.meta.id, &t.values[col]);
        }
        self.indexes.push(index);
        Ok(())
    }

    /// Drops the index on the named column; returns whether one existed.
    pub fn drop_index(&mut self, column: &str) -> bool {
        let Some(col) = self.schema.index_of(column) else {
            return false;
        };
        let before = self.indexes.len();
        self.indexes.retain(|i| i.column() != col);
        self.indexes.len() != before
    }

    /// The column indices that currently carry a hash index.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(HashIndex::column).collect()
    }

    /// Index probe: live tuple ids whose column `col` equals any of
    /// `values`, in insertion order. `None` when the column is unindexed
    /// (the caller must fall back to a scan). Falls back to an ordered
    /// index when no hash index covers the column.
    pub fn index_probe(&self, col: usize, values: &[Value]) -> Option<Vec<TupleId>> {
        if let Some(i) = self.indexes.iter().find(|i| i.column() == col) {
            return Some(i.lookup_any(values));
        }
        self.ord_indexes
            .iter()
            .find(|i| i.column() == col)
            .map(|i| {
                let mut out: BTreeSet<TupleId> = BTreeSet::new();
                for v in values {
                    out.extend(i.lookup(v));
                }
                out.into_iter().collect()
            })
    }

    /// Builds an ordered (B-tree) index on the named column, enabling range
    /// probes via [`ord_range_probe`](Self::ord_range_probe).
    pub fn create_ord_index(&mut self, column: &str) -> Result<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| FungusError::UnknownColumn(column.to_string()))?;
        if self.ord_indexes.iter().any(|i| i.column() == col) {
            return Err(FungusError::InvalidConfig(format!(
                "column `{column}` already has an ordered index"
            )));
        }
        let mut index = OrdIndex::new(col);
        for t in self.iter_live() {
            index.insert(t.meta.id, &t.values[col]);
        }
        self.ord_indexes.push(index);
        Ok(())
    }

    /// The columns carrying ordered indexes.
    pub fn ord_indexed_columns(&self) -> Vec<usize> {
        self.ord_indexes.iter().map(OrdIndex::column).collect()
    }

    /// Ordered-index range probe on column `col`; `None` when the column
    /// has no ordered index.
    pub fn ord_range_probe(
        &self,
        col: usize,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Option<Vec<TupleId>> {
        self.ord_indexes
            .iter()
            .find(|i| i.column() == col)
            .map(|i| i.range(lo, hi))
    }

    /// Reduces the freshness of `id` by `amount`; returns the new freshness,
    /// or `None` if the tuple is not live. Does *not* evict — eviction is a
    /// separate [`evict_rotten`](Self::evict_rotten) pass so fungi can
    /// observe the rotten state within a tick.
    pub fn decay(&mut self, id: TupleId, amount: f64) -> Option<fungus_types::Freshness> {
        let t = self.get_mut(id)?;
        t.meta.freshness = t.meta.freshness.decayed(amount);
        Some(t.meta.freshness)
    }

    /// Multiplies the freshness of `id` by `factor` (clamped to `[0, 1]`).
    pub fn scale_freshness(&mut self, id: TupleId, factor: f64) -> Option<fungus_types::Freshness> {
        let t = self.get_mut(id)?;
        t.meta.freshness = t.meta.freshness.scaled(factor);
        Some(t.meta.freshness)
    }

    /// Removes every tuple whose freshness has reached zero, returning the
    /// evicted tuples (the engine feeds them to distillation sinks before
    /// they are lost, honouring "inspect them once before removal").
    pub fn evict_rotten(&mut self) -> Vec<Tuple> {
        let rotten: Vec<TupleId> = self
            .iter_live()
            .filter(|t| t.meta.is_rotten())
            .map(|t| t.meta.id)
            .collect();
        let mut evicted = Vec::with_capacity(rotten.len());
        for id in rotten {
            if let Some(t) = self.delete(id, TombstoneReason::Rotted) {
                evicted.push(t);
            }
        }
        evicted
    }

    /// One maintenance pass: drops fully dead sealed segments and converts
    /// sparse-eligible sealed dense segments (live fraction below the
    /// configured threshold) to the compact layout.
    pub fn compact(&mut self) -> CompactionReport {
        let arity = self.zone_arity();
        let threshold = self.config.compact_live_threshold;
        let mut report = CompactionReport::default();
        // Never touch the unsealed tail segment.
        let sealed_len = self.segments.iter().take_while(|s| s.is_sealed()).count();
        let mut kept = Vec::with_capacity(self.segments.len());
        for (i, mut seg) in std::mem::take(&mut self.segments).into_iter().enumerate() {
            if i < sealed_len && seg.live_count() == 0 {
                report.segments_dropped += 1;
                report.bytes_reclaimed +=
                    seg.slot_count() * std::mem::size_of::<crate::segment::Slot>();
                continue;
            }
            if i < sealed_len && !seg.is_sparse() && seg.live_fraction() < threshold {
                report.segments_compacted += 1;
                report.bytes_reclaimed +=
                    seg.tombstone_count() * std::mem::size_of::<crate::segment::Slot>();
                seg.compact(arity);
            }
            kept.push(seg);
        }
        self.segments = kept;
        report
    }

    /// Point-in-time statistics over the live extent.
    pub fn stats(&self, now: Tick) -> TableStats {
        TableStats::collect(self, now)
    }

    /// Consumes the store, returning every live tuple in id order.
    ///
    /// This is the whole-shard drop path: no per-tuple tombstoning, index
    /// maintenance, or hole bookkeeping happens — the caller records one
    /// id-range gap for the entire store instead.
    pub fn into_live_tuples(self) -> Vec<Tuple> {
        self.segments
            .into_iter()
            .flat_map(Segment::into_live)
            .collect()
    }

    /// Overwrites the eviction counters with exact recorded values
    /// (snapshot restore and shard/monolithic conversions — replay cannot
    /// reconstruct `rotted_unread`).
    pub fn set_counters(&mut self, rotted: u64, consumed: u64, deleted: u64, rotted_unread: u64) {
        self.evicted_rotted = rotted;
        self.evicted_consumed = consumed;
        self.evicted_deleted = deleted;
        self.rotted_unread = rotted_unread;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_types::DataType;

    fn small_table() -> TableStore {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        TableStore::new(schema, StorageConfig::for_tests()).unwrap()
    }

    fn fill(table: &mut TableStore, n: u64) -> Vec<TupleId> {
        (0..n)
            .map(|i| table.insert(vec![Value::Int(i as i64)], Tick(i)).unwrap())
            .collect()
    }

    #[test]
    fn insert_allocates_dense_ids_across_segments() {
        let mut t = small_table();
        let ids = fill(&mut t, 20);
        assert_eq!(ids.first(), Some(&TupleId(0)));
        assert_eq!(ids.last(), Some(&TupleId(19)));
        assert_eq!(
            t.segments().len(),
            3,
            "capacity 8 → 3 segments for 20 tuples"
        );
        assert_eq!(t.live_count(), 20);
        assert_eq!(t.total_inserted(), 20);
        for id in ids {
            assert_eq!(t.get(id).unwrap().meta.id, id);
        }
    }

    #[test]
    fn insert_validates_against_schema() {
        let mut t = small_table();
        assert!(t.insert(vec![Value::from("no")], Tick(0)).is_err());
        assert!(t.insert(vec![], Tick(0)).is_err());
        assert_eq!(t.live_count(), 0, "failed inserts allocate nothing");
        assert_eq!(t.next_id(), TupleId(0));
    }

    #[test]
    fn delete_accounts_by_reason() {
        let mut t = small_table();
        let ids = fill(&mut t, 5);
        t.delete(ids[0], TombstoneReason::Rotted);
        t.delete(ids[1], TombstoneReason::Consumed);
        t.delete(ids[2], TombstoneReason::Deleted);
        assert_eq!(t.evicted_rotted(), 1);
        assert_eq!(t.evicted_consumed(), 1);
        assert_eq!(t.evicted_deleted(), 1);
        assert_eq!(t.rotted_unread(), 1, "rotted tuple was never read");
        assert_eq!(t.live_count(), 2);
        assert!(t.delete(ids[0], TombstoneReason::Rotted).is_none());
    }

    #[test]
    fn touched_then_rotted_is_not_waste() {
        let mut t = small_table();
        let ids = fill(&mut t, 2);
        t.touch(ids[0], Tick(3));
        t.delete(ids[0], TombstoneReason::Rotted);
        t.delete(ids[1], TombstoneReason::Rotted);
        assert_eq!(t.evicted_rotted(), 2);
        assert_eq!(
            t.rotted_unread(),
            1,
            "only the untouched tuple counts as waste"
        );
    }

    #[test]
    fn live_neighbors_skip_tombstones() {
        let mut t = small_table();
        let ids = fill(&mut t, 10);
        t.delete(ids[4], TombstoneReason::Rotted);
        t.delete(ids[5], TombstoneReason::Rotted);
        // Neighbours of the hole's centre.
        assert_eq!(t.live_neighbors(ids[4]), (Some(ids[3]), Some(ids[6])));
        assert_eq!(t.live_neighbors(ids[5]), (Some(ids[3]), Some(ids[6])));
        // Edges of the table.
        assert_eq!(t.live_neighbors(ids[0]), (None, Some(ids[1])));
        assert_eq!(t.live_neighbors(ids[9]), (Some(ids[8]), None));
    }

    #[test]
    fn infection_index_tracks_state() {
        let mut t = small_table();
        let ids = fill(&mut t, 6);
        assert!(t.infect(ids[2], Tick(9)));
        assert!(t.infect(ids[4], Tick(9)));
        assert_eq!(t.infected_ids(), vec![ids[2], ids[4]]);
        assert_eq!(t.infected_count(), 2);
        // Deleting an infected tuple clears it from the index.
        t.delete(ids[2], TombstoneReason::Rotted);
        assert_eq!(t.infected_ids(), vec![ids[4]]);
        // Curing clears flag and index.
        assert!(t.cure(ids[4]));
        assert_eq!(t.infected_count(), 0);
        assert!(!t.get(ids[4]).unwrap().meta.infected);
        // Infecting a dead tuple fails.
        assert!(!t.infect(ids[2], Tick(10)));
    }

    #[test]
    fn cure_all_clears_everything() {
        let mut t = small_table();
        let ids = fill(&mut t, 4);
        for id in &ids {
            t.infect(*id, Tick(1));
        }
        assert_eq!(t.cure_all(), 4);
        assert_eq!(t.infected_count(), 0);
        assert!(t.iter_live().all(|x| !x.meta.infected));
    }

    #[test]
    fn decay_and_evict_rotten() {
        let mut t = small_table();
        let ids = fill(&mut t, 4);
        t.decay(ids[0], 1.5);
        t.decay(ids[1], 0.4);
        assert!(t.get(ids[0]).unwrap().meta.is_rotten());
        let evicted = t.evict_rotten();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].meta.id, ids[0]);
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.evicted_rotted(), 1);
        assert!((t.get(ids[1]).unwrap().meta.freshness.get() - 0.6).abs() < 1e-12);
        assert!(
            t.decay(ids[0], 0.1).is_none(),
            "decaying a dead tuple is None"
        );
    }

    #[test]
    fn scale_freshness_multiplies() {
        let mut t = small_table();
        let ids = fill(&mut t, 1);
        t.scale_freshness(ids[0], 0.5);
        t.scale_freshness(ids[0], 0.5);
        assert!((t.get(ids[0]).unwrap().meta.freshness.get() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn compaction_drops_dead_and_sparsifies() {
        let mut t = small_table();
        let ids = fill(&mut t, 24); // 3 sealed segments of 8
                                    // Kill all of segment 0, most of segment 1, nothing in segment 2.
        for id in &ids[0..8] {
            t.delete(*id, TombstoneReason::Rotted);
        }
        for id in &ids[8..15] {
            t.delete(*id, TombstoneReason::Consumed);
        }
        let report = t.compact();
        assert_eq!(report.segments_dropped, 1);
        assert_eq!(report.segments_compacted, 1);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(t.live_count(), 9);
        // Everything still addressable.
        assert!(t.get(ids[15]).is_some());
        assert!(t.get(ids[0]).is_none());
        assert_eq!(t.live_neighbors(ids[0]), (None, Some(ids[15])));
        // Ids continue after compaction.
        let new_id = t.insert(vec![Value::Int(99)], Tick(99)).unwrap();
        assert_eq!(new_id, TupleId(24));
    }

    #[test]
    fn compaction_never_touches_unsealed_tail() {
        let mut t = small_table();
        let ids = fill(&mut t, 4); // tail unsealed
        for id in &ids {
            t.delete(*id, TombstoneReason::Rotted);
        }
        let report = t.compact();
        assert_eq!(report.segments_dropped, 0);
        assert_eq!(report.segments_compacted, 0);
        assert_eq!(t.segments().len(), 1);
        // Tail still accepts appends at the right id.
        let id = t.insert(vec![Value::Int(1)], Tick(5)).unwrap();
        assert_eq!(id, TupleId(4));
    }

    #[test]
    fn iteration_spans_segments_in_order() {
        let mut t = small_table();
        let ids = fill(&mut t, 20);
        t.delete(ids[3], TombstoneReason::Rotted);
        let seen: Vec<u64> = t.iter_live().map(|x| x.meta.id.get()).collect();
        let expected: Vec<u64> = (0..20).filter(|i| *i != 3).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn restore_roundtrip_of_tombstones() {
        let mut t = small_table();
        t.insert_restored(Tuple::new(TupleId(0), Tick(0), vec![Value::Int(1)]))
            .unwrap();
        t.tombstone_restored(TombstoneReason::Rotted).unwrap();
        t.insert_restored(Tuple::new(TupleId(2), Tick(2), vec![Value::Int(3)]))
            .unwrap();
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.total_inserted(), 3);
        assert_eq!(t.evicted_rotted(), 1);
        assert!(t.get(TupleId(1)).is_none());
        // Out-of-order restore is rejected.
        let err = t
            .insert_restored(Tuple::new(TupleId(7), Tick(0), vec![Value::Int(0)]))
            .unwrap_err();
        assert!(matches!(err, FungusError::CorruptSnapshot(_)));
    }

    #[test]
    fn secondary_index_tracks_all_mutations() {
        let mut t = small_table();
        t.create_index("v").unwrap();
        assert_eq!(t.indexed_columns(), vec![0]);
        assert!(t.create_index("v").is_err(), "duplicate index rejected");
        assert!(t.create_index("zzz").is_err(), "unknown column rejected");

        let ids = fill(&mut t, 10); // v = 0..10
                                    // Probe hits.
        assert_eq!(t.index_probe(0, &[Value::Int(4)]), Some(vec![ids[4]]));
        assert_eq!(
            t.index_probe(0, &[Value::Int(2), Value::Int(7)]),
            Some(vec![ids[2], ids[7]])
        );
        // Unindexed column → None (caller falls back to scan).
        assert_eq!(t.index_probe(1, &[Value::Int(1)]), None);
        // Deletion unhooks.
        t.delete(ids[4], TombstoneReason::Consumed);
        assert_eq!(t.index_probe(0, &[Value::Int(4)]), Some(vec![]));
        // Rot eviction unhooks too.
        t.decay(ids[7], 1.0);
        t.evict_rotten();
        assert_eq!(t.index_probe(0, &[Value::Int(7)]), Some(vec![]));
        // Drop.
        assert!(t.drop_index("v"));
        assert!(!t.drop_index("v"));
        assert_eq!(t.index_probe(0, &[Value::Int(1)]), None);
    }

    #[test]
    fn index_built_over_existing_data_and_survives_snapshot() {
        let mut t = small_table();
        let ids = fill(&mut t, 6);
        t.delete(ids[2], TombstoneReason::Deleted);
        t.create_index("v").unwrap();
        assert_eq!(t.index_probe(0, &[Value::Int(3)]), Some(vec![ids[3]]));
        assert_eq!(
            t.index_probe(0, &[Value::Int(2)]),
            Some(vec![]),
            "dead rows not indexed"
        );
        // Snapshot round-trip keeps the index definition and rebuilds it.
        let restored = crate::snapshot::decode_table(crate::snapshot::encode_table(&t)).unwrap();
        assert_eq!(restored.indexed_columns(), vec![0]);
        assert_eq!(
            restored.index_probe(0, &[Value::Int(3)]),
            Some(vec![ids[3]])
        );
    }

    #[test]
    fn zone_maps_can_be_disabled_for_ablation() {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let mut t = TableStore::new(
            schema,
            StorageConfig {
                segment_capacity: 4,
                zone_maps: false,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..12i64 {
            t.insert(vec![Value::Int(i)], Tick(0)).unwrap();
        }
        // Zone maps carry no entries → every pruning probe must answer
        // "may match" (no pruning, never a wrong answer).
        for seg in t.segments() {
            assert_eq!(seg.zone().arity(), 0);
            assert!(seg.zone().entry(0).is_none());
        }
        // The store still works end to end.
        assert_eq!(t.live_count(), 12);
        t.delete(TupleId(0), TombstoneReason::Rotted);
        t.compact();
        assert_eq!(t.live_count(), 11);
    }

    #[test]
    fn restored_infection_rebuilds_index() {
        let mut t = small_table();
        let mut tup = Tuple::new(TupleId(0), Tick(0), vec![Value::Int(1)]);
        tup.meta.infect(Tick(0));
        t.insert_restored(tup).unwrap();
        assert_eq!(t.infected_count(), 1);
    }
}
