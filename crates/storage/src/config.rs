//! Storage tuning knobs.

use serde::{Deserialize, Serialize};

use fungus_types::{FungusError, Result};

/// Configuration for a [`TableStore`](crate::table::TableStore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Tuples per segment. Larger segments amortise zone-map overhead;
    /// smaller segments prune better and compact cheaper.
    pub segment_capacity: usize,
    /// A sealed segment whose live fraction falls below this threshold is
    /// rewritten by [`compact`](crate::table::TableStore::compact).
    /// `0.0` disables rewriting (only fully dead segments are dropped);
    /// `1.0` rewrites any segment with at least one tombstone.
    pub compact_live_threshold: f64,
    /// Whether zone maps are maintained. Disabling them is useful for
    /// isolating their benefit in the ablation benchmarks.
    pub zone_maps: bool,
}

impl StorageConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.segment_capacity == 0 {
            return Err(FungusError::InvalidConfig(
                "segment_capacity must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.compact_live_threshold)
            || self.compact_live_threshold.is_nan()
        {
            return Err(FungusError::InvalidConfig(format!(
                "compact_live_threshold must be in [0,1], got {}",
                self.compact_live_threshold
            )));
        }
        Ok(())
    }

    /// A configuration with a small segment size, handy in tests.
    pub fn for_tests() -> Self {
        StorageConfig {
            segment_capacity: 8,
            ..Default::default()
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            segment_capacity: 1024,
            compact_live_threshold: 0.25,
            zone_maps: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        StorageConfig::default().validate().unwrap();
        StorageConfig::for_tests().validate().unwrap();
    }

    #[test]
    fn rejects_bad_values() {
        let c = StorageConfig {
            segment_capacity: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = StorageConfig {
            compact_live_threshold: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = StorageConfig {
            compact_live_threshold: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
