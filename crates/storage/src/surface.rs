//! The narrow storage API fungi act through.
//!
//! Every decay model in `fungus-fungi` is written against [`DecaySurface`]
//! rather than [`TableStore`] directly, so fungi are unit-testable on mock
//! stores and the storage layout can evolve without touching decay logic.
//!
//! The surface deliberately exposes *metadata only*: a fungus may read ages
//! and freshness, infect, cure, and decay — it can never see attribute
//! values or remove tuples. Eviction of rotten tuples is the engine's job
//! (after distillation has had its chance), preserving the paper's "inspect
//! them once before removal".

use fungus_types::{Freshness, Tick, TupleId, TupleMeta};

use crate::table::TableStore;

/// Mutation-limited view of a container's decay state.
pub trait DecaySurface {
    /// Number of live tuples.
    fn live_count(&self) -> usize;

    /// Visits every live tuple's metadata in insertion (time-axis) order.
    fn for_each_live_meta(&self, f: &mut dyn FnMut(TupleId, &TupleMeta));

    /// Metadata of one live tuple.
    fn meta(&self, id: TupleId) -> Option<TupleMeta>;

    /// Subtracts `amount` from the tuple's freshness; returns the new value
    /// (`None` if the tuple is not live).
    fn decay(&mut self, id: TupleId, amount: f64) -> Option<Freshness>;

    /// Multiplies the tuple's freshness by `factor ∈ [0,1]`.
    fn scale_freshness(&mut self, id: TupleId, factor: f64) -> Option<Freshness>;

    /// Infects the tuple (EGI seeding/spreading); false if not live.
    fn infect(&mut self, id: TupleId, now: Tick) -> bool;

    /// Clears the tuple's infection; false if not live.
    fn cure(&mut self, id: TupleId) -> bool;

    /// Ids of all infected live tuples in id order.
    fn infected_ids(&self) -> Vec<TupleId>;

    /// Nearest live neighbours along the time axis: `(older, younger)`.
    fn live_neighbors(&self, id: TupleId) -> (Option<TupleId>, Option<TupleId>);

    /// Snapshot of `(id, meta)` for every live tuple, in id order.
    ///
    /// Convenience for fungi that need random access by index for weighted
    /// sampling; the default builds it via
    /// [`for_each_live_meta`](Self::for_each_live_meta).
    fn live_metas(&self) -> Vec<(TupleId, TupleMeta)> {
        let mut out = Vec::with_capacity(self.live_count());
        self.for_each_live_meta(&mut |id, meta| out.push((id, *meta)));
        out
    }

    /// `(id, age in ticks)` of every live **uninfected** tuple, in id order
    /// — the EGI seed candidate list.
    ///
    /// A dedicated hook so partitioned surfaces can gather candidates
    /// per-partition (in parallel) and merge in id order; the output must
    /// be identical to this default for determinism to hold across
    /// layouts.
    fn seed_candidates(&self, now: Tick) -> Vec<(TupleId, f64)> {
        let mut out = Vec::with_capacity(self.live_count());
        self.for_each_live_meta(&mut |id, meta| {
            if !meta.infected {
                out.push((id, meta.age(now).as_f64()));
            }
        });
        out
    }
}

impl DecaySurface for TableStore {
    fn live_count(&self) -> usize {
        TableStore::live_count(self)
    }

    fn for_each_live_meta(&self, f: &mut dyn FnMut(TupleId, &TupleMeta)) {
        for t in self.iter_live() {
            f(t.meta.id, &t.meta);
        }
    }

    fn meta(&self, id: TupleId) -> Option<TupleMeta> {
        self.get(id).map(|t| t.meta)
    }

    fn decay(&mut self, id: TupleId, amount: f64) -> Option<Freshness> {
        TableStore::decay(self, id, amount)
    }

    fn scale_freshness(&mut self, id: TupleId, factor: f64) -> Option<Freshness> {
        TableStore::scale_freshness(self, id, factor)
    }

    fn infect(&mut self, id: TupleId, now: Tick) -> bool {
        TableStore::infect(self, id, now)
    }

    fn cure(&mut self, id: TupleId) -> bool {
        TableStore::cure(self, id)
    }

    fn infected_ids(&self) -> Vec<TupleId> {
        TableStore::infected_ids(self)
    }

    fn live_neighbors(&self, id: TupleId) -> (Option<TupleId>, Option<TupleId>) {
        TableStore::live_neighbors(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageConfig;
    use fungus_types::{DataType, Schema, Value};

    fn table_with(n: u64) -> TableStore {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let mut t = TableStore::new(schema, StorageConfig::for_tests()).unwrap();
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64)], Tick(i)).unwrap();
        }
        t
    }

    #[test]
    fn surface_mirrors_table_state() {
        let mut t = table_with(5);
        let s: &mut dyn DecaySurface = &mut t;
        assert_eq!(s.live_count(), 5);
        assert!(s.infect(TupleId(2), Tick(10)));
        assert_eq!(s.infected_ids(), vec![TupleId(2)]);
        assert_eq!(s.meta(TupleId(2)).unwrap().infected_at, Some(Tick(10)));
        s.decay(TupleId(2), 0.25);
        assert!((s.meta(TupleId(2)).unwrap().freshness.get() - 0.75).abs() < 1e-12);
        assert!(s.cure(TupleId(2)));
        assert!(s.infected_ids().is_empty());
    }

    #[test]
    fn live_metas_orders_by_id() {
        let t = table_with(4);
        let metas = DecaySurface::live_metas(&t);
        let ids: Vec<u64> = metas.iter().map(|(id, _)| id.get()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(metas.iter().all(|(id, m)| *id == m.id));
    }

    #[test]
    fn neighbors_via_surface() {
        let t = table_with(3);
        let s: &dyn DecaySurface = &t;
        assert_eq!(
            s.live_neighbors(TupleId(1)),
            (Some(TupleId(0)), Some(TupleId(2)))
        );
    }
}
