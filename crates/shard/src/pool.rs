//! A small work-stealing pool for shard fan-out.
//!
//! Decay ticks and scans issue one task per shard. Tasks are preloaded
//! round-robin onto per-worker queues; an idle worker steals from the back
//! of its neighbours' queues. Results are returned **slot-indexed** — the
//! output `Vec` is ordered by task index no matter which worker ran what —
//! so fan-out never perturbs determinism.
//!
//! With one worker (or one task) the pool runs inline on the calling
//! thread: no threads are spawned, no locks are taken. This is the
//! configuration benchmarked on single-core hosts, where sharding must win
//! algorithmically (dirty-shard skipping, whole-shard drops) rather than
//! through parallelism.

use std::collections::VecDeque;

use fungus_lint_rt::{hierarchy, OrderedMutex};

/// Fixed-width fan-out executor for per-shard tasks.
#[derive(Debug)]
pub struct ShardPool {
    workers: usize,
}

impl ShardPool {
    /// A pool with `workers` threads; `None` uses the machine's available
    /// parallelism. A requested width of 0 is treated as 1.
    pub fn new(workers: Option<usize>) -> Self {
        let workers = workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ShardPool {
            workers: workers.max(1),
        }
    }

    /// Configured fan-out width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(0..n_tasks)` and returns the results indexed by task.
    ///
    /// Inline when the pool has one worker or there is at most one task;
    /// otherwise scoped threads drain round-robin queues with stealing.
    pub fn run<T, F>(&self, n_tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers <= 1 || n_tasks <= 1 {
            return (0..n_tasks).map(&f).collect();
        }
        let width = self.workers.min(n_tasks);
        let queues: Vec<OrderedMutex<VecDeque<usize>>> = (0..width)
            .map(|_| OrderedMutex::new(&hierarchy::POOL_QUEUES, VecDeque::new()))
            .collect();
        for task in 0..n_tasks {
            queues[task % width].lock().push_back(task);
        }

        let mut results: Vec<Option<T>> = Vec::with_capacity(n_tasks);
        results.resize_with(n_tasks, || None);
        std::thread::scope(|scope| {
            let queues = &queues;
            let f = &f;
            let handles: Vec<_> = (0..width)
                .map(|me| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        while let Some(task) = Self::next_task(queues, me) {
                            done.push((task, f(task)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (task, value) in handle.join().expect("shard pool worker panicked") {
                    results[task] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every task ran exactly once"))
            .collect()
    }

    /// Pops from the worker's own queue, else steals from the back of a
    /// neighbour's. `None` only when every queue is empty (each task is
    /// popped under a lock, so none runs twice).
    fn next_task(queues: &[OrderedMutex<VecDeque<usize>>], me: usize) -> Option<usize> {
        if let Some(task) = queues[me].lock().pop_front() {
            return Some(task);
        }
        for offset in 1..queues.len() {
            let victim = (me + offset) % queues.len();
            if let Some(task) = queues[victim].lock().pop_back() {
                return Some(task);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn inline_pool_runs_in_order() {
        let pool = ShardPool::new(Some(1));
        let order = Mutex::new(Vec::new());
        let out = pool.run(5, |i| {
            order.lock().push(i);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_returns_slot_indexed_results() {
        let pool = ShardPool::new(Some(4));
        assert_eq!(pool.workers(), 4);
        let ran = AtomicUsize::new(0);
        let out = pool.run(33, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 33);
        assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let pool = ShardPool::new(Some(8));
        assert_eq!(pool.run(2, |i| i + 1), vec![1, 2]);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_width_requests_clamp_to_one() {
        assert_eq!(ShardPool::new(Some(0)).workers(), 1);
    }
}
