//! The sharded container extent.
//!
//! [`ShardedExtent`] replaces the single [`TableStore`] behind a container
//! with an ordered set of time-range [`Shard`]s, each behind its own lock
//! with its own summary stats. It implements the same two traits the
//! engine drives a monolithic store through — [`DecaySurface`] for fungi
//! and [`QueryExtent`] for the executor — and is **observationally
//! identical** to a monolithic store under any workload and any shard
//! count:
//!
//! - Tuple ids are allocated densely in insertion order; shard `k` owns
//!   the contiguous id range `[k·rows_per_shard, (k+1)·rows_per_shard)`,
//!   so the shard layout is a pure function of the insert count.
//! - Every id-ordered view (`for_each_live_meta`, `seed_candidates`,
//!   `infected_ids`, `live_ids`, scan results) concatenates per-shard
//!   views in shard order, which *is* global id order.
//! - `live_neighbors` bridges shard boundaries and dropped-shard gaps, so
//!   EGI spread crosses shards exactly as it crosses tombstone holes.
//! - EGI's random draws stay on the container's single RNG stream over
//!   the global candidate list; the per-shard streams exposed by
//!   [`Shard::rng_seed`] are derived from the shard base (layout-stable)
//!   and never feed the equivalence-relevant path.
//!
//! What *does* differ is the cost model, and that is the point:
//!
//! - Scans prune whole shards via per-shard min/max tick, id, and
//!   freshness bounds before touching tuples (then segment zone-maps
//!   within surviving shards).
//! - Eviction passes skip clean shards entirely (no freshness changed
//!   since the last pass), and a shard whose live tuples are all rotten
//!   is **dropped in O(1)** — detached whole, one id-range gap recorded —
//!   instead of tuple-by-tuple tombstoning and later compaction.
//! - Fan-out (scans, candidate gathers, rot detection) runs on a
//!   work-stealing [`ShardPool`]; results are merged slot-indexed so
//!   scheduling never perturbs determinism. With one worker everything
//!   runs inline.
//!
//! Diagnostic counters (`scanned`, pruned counts, census run shapes) may
//! differ from the monolithic layout; answers, eviction sets, and decay
//! state never do.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fungus_lint_rt::{hierarchy, OrderedRwLock};
use serde::{Deserialize, Serialize};

use fungus_clock::DeterministicRng;
use fungus_query::{scan_store, LogicalPlan, QueryExtent, ScanOutcome};
use fungus_storage::{
    CompactionReport, DecaySurface, FreshnessHistogram, Slot, SpotCensus, StorageConfig,
    TableStats, TableStore, TombstoneReason,
};
use fungus_types::{Freshness, Result, Schema, Tick, Tuple, TupleId, TupleMeta, Value};

use crate::config::ShardSpec;
use crate::pool::ShardPool;
use crate::shard::Shard;
use crate::snapshot::{ExtentSnapshot, SnapshotShard};

/// The id range `[base, end)` of a shard that was dropped whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DroppedRange {
    base: u64,
    end: u64,
    /// True when the drop was a rot drop (every live tuple rotten); false
    /// for a maintenance drop of an already-dead shard.
    rotted: bool,
}

/// One resident shard's structural record inside a [`ShardStructure`].
///
/// The freshness envelope is captured as raw bit patterns so equality is
/// exact, not within-epsilon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// First id of the shard's range.
    pub base: u64,
    /// One past the highest id handed out.
    pub end: u64,
    /// Width of the id range the shard owns.
    pub capacity: u64,
    /// Whether the shard has handed out its full range.
    pub sealed: bool,
    /// Whether any freshness changed since the last eviction pass.
    pub dirty: bool,
    /// Live tuples in the shard.
    pub live: usize,
    /// Bit pattern of the freshness lower bound.
    pub freshness_lo_bits: u64,
    /// Bit pattern of the freshness upper bound.
    pub freshness_hi_bits: u64,
    /// Minimum live insertion tick (`u64::MAX` when empty).
    pub min_tick: u64,
    /// Maximum live insertion tick (0 when empty).
    pub max_tick: u64,
}

/// A point-in-time structural description of a sharded extent: every
/// boundary, summary, dirty flag, id gap, and lifecycle counter.
///
/// Two extents with equal structures are identical not just in what the
/// layout-equivalence contract lets an observer see, but in the physical
/// shard layout itself — the checkpoint tests assert restored structures
/// are *equal*, a strictly stronger property than extent equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStructure {
    /// The id watermark (next id an insert would receive).
    pub next_id: u64,
    /// Resident shards in id order.
    pub shards: Vec<ShardRecord>,
    /// Dropped id ranges as `(base, end, rotted)`.
    pub dropped: Vec<(u64, u64, bool)>,
    /// Shards dropped whole since creation.
    pub shards_dropped: u64,
    /// Tail shards sealed early by the adaptive split rule.
    pub shards_split: u64,
    /// Underfull sealed shards merged into a neighbor.
    pub shards_merged: u64,
    /// Inserts the tail has absorbed since the last eviction sweep (the
    /// split rule's pressure gauge).
    pub tail_inserts_since_sweep: u64,
}

/// Summary record of one resident shard in a checkpoint manifest.
///
/// Tuple data lives in the shard's snapshot file; this record carries what
/// the snapshot format cannot: the shard boundary (`capacity`), the dirty
/// flag, and the pruning summary. Freshness bounds are serialized as
/// decimal floats — the manifest codec prints shortest-round-trip
/// representations, so the restored envelope is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// First id of the shard's range.
    pub base: u64,
    /// Width of the id range the shard owns.
    pub capacity: u64,
    /// Whether any freshness changed since the last eviction pass.
    pub dirty: bool,
    /// Freshness lower bound.
    pub freshness_lo: f64,
    /// Freshness upper bound.
    pub freshness_hi: f64,
    /// Minimum live insertion tick; `None` stands for the in-memory
    /// `u64::MAX` sentinel of an empty envelope, which the manifest's
    /// number representation cannot hold exactly.
    pub min_tick: Option<u64>,
    /// Maximum live insertion tick (0 when empty).
    pub max_tick: u64,
}

/// A dropped id range record in a checkpoint manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DroppedRangeManifest {
    /// First id of the dropped range.
    pub base: u64,
    /// One past the last id of the dropped range.
    pub end: u64,
    /// Whether the drop was a rot drop (vs a maintenance drop).
    pub rotted: bool,
}

/// The layout half of a sharded container's checkpoint: everything needed
/// to reassemble a [`ShardedExtent`] around its per-shard snapshot files
/// with boundaries, summaries, dirty flags, gaps, and counters intact.
///
/// RNG streams are deliberately absent: they re-derive from the database
/// construction seed, matching the restore contract ("freshly constructed
/// with the original seed").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLayoutManifest {
    /// The container schema (needed when no resident shard survives to
    /// carry it).
    pub schema: Schema,
    /// The shard layout spec in force at checkpoint time.
    pub spec: ShardSpec,
    /// The id watermark.
    pub next_id: u64,
    /// Dropped id ranges in ascending order.
    pub dropped: Vec<DroppedRangeManifest>,
    /// Rot evictions folded in from dropped shards.
    pub folded_rotted: u64,
    /// Consume evictions folded in from dropped shards.
    pub folded_consumed: u64,
    /// Explicit deletions folded in from dropped shards.
    pub folded_deleted: u64,
    /// Rotted-unread count folded in from dropped shards.
    pub folded_rotted_unread: u64,
    /// Shards dropped whole since creation.
    pub shards_dropped: u64,
    /// Adaptive splits since creation.
    pub shards_split: u64,
    /// Adaptive merges since creation.
    pub shards_merged: u64,
    /// The split rule's insert-pressure gauge at checkpoint time.
    pub tail_inserts_since_sweep: u64,
    /// Hash-indexed column names (applied to future shards).
    pub hash_indexed: Vec<String>,
    /// Ordered-indexed column names (applied to future shards).
    pub ord_indexed: Vec<String>,
    /// One record per resident shard, in id order.
    pub shards: Vec<ShardManifest>,
}

/// Per-shard outcome of one scan fan-out task.
enum ShardScan {
    /// Nothing live in the shard.
    Empty,
    /// Skipped whole by the shard summary.
    Pruned,
    /// Scanned (possibly via an index / with segment pruning).
    Done(ScanOutcome),
}

/// A container extent split into time-range shards.
#[derive(Debug)]
pub struct ShardedExtent {
    schema: Schema,
    storage: StorageConfig,
    spec: ShardSpec,
    shards: Vec<OrderedRwLock<Shard>>,
    /// Id ranges of dropped shards, ascending and non-overlapping.
    dropped: Vec<DroppedRange>,
    /// Next tuple id to allocate (== total ids ever allocated).
    next_id: u64,
    /// Eviction counters folded in from dropped shards.
    folded_rotted: u64,
    folded_consumed: u64,
    folded_deleted: u64,
    folded_rotted_unread: u64,
    shards_dropped: u64,
    /// Behind an `Arc` so published [`ExtentSnapshot`]s count their pruned
    /// shards into the same gauge as locked scans.
    shards_pruned: Arc<AtomicU64>,
    /// Tail shards sealed early by the adaptive split rule.
    shards_split: u64,
    /// Underfull sealed shards merged into a neighbor.
    shards_merged: u64,
    /// Shards reassembled from a shard-aware checkpoint.
    shards_restored: u64,
    /// Inserts absorbed by the tail since the last eviction sweep — the
    /// adaptive split rule's insert-pressure gauge.
    tail_inserts_since_sweep: u64,
    hash_indexed: Vec<String>,
    ord_indexed: Vec<String>,
    pool: ShardPool,
    /// Root for per-shard RNG stream derivation (see [`Shard::rng_seed`]).
    rng_root: u64,
}

impl ShardedExtent {
    /// An empty sharded extent. Per-shard RNG streams are split from
    /// `rng`, the container's deterministic RNG.
    pub fn new(
        schema: Schema,
        storage: StorageConfig,
        spec: ShardSpec,
        rng: &DeterministicRng,
    ) -> Result<Self> {
        spec.validate()?;
        Ok(ShardedExtent {
            schema,
            storage,
            spec,
            shards: Vec::new(),
            dropped: Vec::new(),
            next_id: 0,
            folded_rotted: 0,
            folded_consumed: 0,
            folded_deleted: 0,
            folded_rotted_unread: 0,
            shards_dropped: 0,
            shards_pruned: Arc::new(AtomicU64::new(0)),
            shards_split: 0,
            shards_merged: 0,
            shards_restored: 0,
            tail_inserts_since_sweep: 0,
            hash_indexed: Vec::new(),
            ord_indexed: Vec::new(),
            pool: ShardPool::new(spec.workers),
            rng_root: rng.derive_seed("shard-extent"),
        })
    }

    /// The extent's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shard layout spec.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of resident (not dropped) shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards dropped whole since creation (rot drops and maintenance
    /// drops of dead shards).
    pub fn shards_dropped(&self) -> u64 {
        self.shards_dropped
    }

    /// Cumulative count of shards skipped whole by scan pruning.
    pub fn shards_pruned(&self) -> u64 {
        self.shards_pruned.load(Ordering::Relaxed)
    }

    /// Tail shards sealed early by the adaptive split rule.
    pub fn shards_split(&self) -> u64 {
        self.shards_split
    }

    /// Underfull sealed shards merged into a time-adjacent neighbor.
    pub fn shards_merged(&self) -> u64 {
        self.shards_merged
    }

    /// Shards reassembled from a shard-aware checkpoint (0 unless this
    /// extent came back through [`ShardedExtent::from_manifest`]).
    pub fn shards_restored(&self) -> u64 {
        self.shards_restored
    }

    /// Shards whose freshness changed since their last eviction pass —
    /// the work an eviction pass cannot skip.
    pub fn dirty_shard_count(&self) -> usize {
        self.shards.iter().filter(|l| l.read().dirty()).count()
    }

    /// Live tuples across all shards.
    pub fn live_count(&self) -> usize {
        self.shards
            .iter()
            .map(|l| l.read().store().live_count())
            .sum()
    }

    /// Tuples ever inserted (ids are dense, so this is the id watermark).
    pub fn total_inserted(&self) -> u64 {
        self.next_id
    }

    /// The next id an insert would receive.
    pub fn next_id(&self) -> TupleId {
        TupleId(self.next_id)
    }

    /// Approximate live heap bytes across shards.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|l| l.read().store().approx_bytes())
            .sum()
    }

    /// Total segments across resident shards.
    pub fn segment_count(&self) -> usize {
        self.shards
            .iter()
            .map(|l| l.read().store().segments().len())
            .sum()
    }

    /// Infected live tuples across shards.
    pub fn infected_count(&self) -> usize {
        self.shards
            .iter()
            .map(|l| l.read().store().infected_count())
            .sum()
    }

    /// Evictions by rot (resident shards plus dropped ones).
    pub fn evicted_rotted(&self) -> u64 {
        self.folded_rotted
            + self
                .shards
                .iter()
                .map(|l| l.read().store().evicted_rotted())
                .sum::<u64>()
    }

    /// Evictions by consuming queries.
    pub fn evicted_consumed(&self) -> u64 {
        self.folded_consumed
            + self
                .shards
                .iter()
                .map(|l| l.read().store().evicted_consumed())
                .sum::<u64>()
    }

    /// Explicit deletions.
    pub fn evicted_deleted(&self) -> u64 {
        self.folded_deleted
            + self
                .shards
                .iter()
                .map(|l| l.read().store().evicted_deleted())
                .sum::<u64>()
    }

    /// Rotted-without-ever-being-read count.
    pub fn rotted_unread(&self) -> u64 {
        self.folded_rotted_unread
            + self
                .shards
                .iter()
                .map(|l| l.read().store().rotted_unread())
                .sum::<u64>()
    }

    /// Index of the resident shard covering `id`, if any (ids inside
    /// dropped ranges and unallocated ids have none).
    fn locate(&self, id: TupleId) -> Option<usize> {
        let idx = self.shards.partition_point(|l| l.read().end() <= id.get());
        (idx < self.shards.len() && self.shards[idx].read().base() <= id.get()).then_some(idx)
    }

    /// Opens a fresh tail shard when there is none or the tail is sealed.
    fn ensure_tail(&mut self) -> Result<()> {
        let needs_new = match self.shards.last_mut() {
            Some(l) => l.get_mut().is_sealed(),
            None => true,
        };
        if !needs_new {
            return Ok(());
        }
        let base = self.next_id;
        let seed = DeterministicRng::new(self.rng_root).derive_seed(&format!("shard/{base}"));
        let mut shard = Shard::new(
            self.schema.clone(),
            self.storage.clone(),
            base,
            self.spec.rows_per_shard,
            seed,
        )?;
        for col in &self.hash_indexed {
            shard.store_mut().create_index(col)?;
        }
        for col in &self.ord_indexed {
            shard.store_mut().create_ord_index(col)?;
        }
        self.shards
            .push(OrderedRwLock::new(&hierarchy::SHARDS, shard));
        Ok(())
    }

    /// Records a dropped id range, merging with an adjacent range of the
    /// same kind so the list stays bounded by the number of disjoint gaps.
    fn push_dropped(&mut self, base: u64, end: u64, rotted: bool) {
        let pos = self.dropped.partition_point(|d| d.base < base);
        if pos > 0 {
            let prev = &mut self.dropped[pos - 1];
            if prev.end == base && prev.rotted == rotted {
                prev.end = end;
                return;
            }
        }
        self.dropped.insert(pos, DroppedRange { base, end, rotted });
    }

    /// Detaches `shard` whole: folds its eviction counters into the
    /// extent, records its id range as a gap, and returns its live tuples
    /// (in id order) for the caller to account as evicted. No per-tuple
    /// tombstoning happens — this is the O(1) drop path.
    fn drop_shard(&mut self, shard: Shard, rotted: bool) -> Vec<Tuple> {
        let (base, end) = (shard.base(), shard.end());
        let store = shard.into_store();
        self.folded_consumed += store.evicted_consumed();
        self.folded_deleted += store.evicted_deleted();
        let prior_rotted = store.evicted_rotted();
        let prior_unread = store.rotted_unread();
        let tuples = store.into_live_tuples();
        self.folded_rotted += prior_rotted + tuples.len() as u64;
        self.folded_rotted_unread +=
            prior_unread + tuples.iter().filter(|t| t.meta.never_read()).count() as u64;
        if end > base {
            self.push_dropped(base, end, rotted);
        }
        self.shards_dropped += 1;
        tuples
    }

    /// Removes every rotten tuple, returning them in id order — the
    /// sharded counterpart of [`TableStore::evict_rotten`].
    ///
    /// Detection fans out over **dirty** shards only (no freshness changed
    /// since the last pass means nothing can have rotted); a dirty shard
    /// whose live tuples are all rotten is dropped whole in O(1).
    pub fn evict_rotten(&mut self) -> Vec<Tuple> {
        /// Detection result for one dirty shard: the rotten ids plus the
        /// exact summary of the survivors, folded into the same sweep so
        /// the shard is scanned once per pass, not once for detection and
        /// again for bounds recomputation.
        struct DirtySweep {
            rotten: Vec<TupleId>,
            lo: f64,
            hi: f64,
            min_tick: u64,
            max_tick: u64,
        }
        let sweeps: Vec<Option<DirtySweep>> = self.pool.run(self.shards.len(), |i| {
            let sh = self.shards[i].read();
            if !sh.dirty() {
                return None;
            }
            let mut sweep = DirtySweep {
                rotten: Vec::new(),
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                min_tick: u64::MAX,
                max_tick: 0,
            };
            for t in sh.store().iter_live() {
                if t.meta.is_rotten() {
                    sweep.rotten.push(t.meta.id);
                } else {
                    let f = t.meta.freshness.get();
                    sweep.lo = sweep.lo.min(f);
                    sweep.hi = sweep.hi.max(f);
                    sweep.min_tick = sweep.min_tick.min(t.meta.inserted_at.get());
                    sweep.max_tick = sweep.max_tick.max(t.meta.inserted_at.get());
                }
            }
            Some(sweep)
        });
        let mut evicted = Vec::new();
        let mut idx = 0usize;
        for sweep in sweeps {
            let Some(sweep) = sweep else {
                idx += 1;
                continue;
            };
            let live = self.shards[idx].get_mut().store().live_count();
            if live > 0 && sweep.rotten.len() == live {
                let shard = self.shards.remove(idx).into_inner();
                evicted.extend(self.drop_shard(shard, true));
                // The next shard slid into `idx`.
            } else {
                let shard = self.shards[idx].get_mut();
                for id in sweep.rotten {
                    if let Some(t) = shard.store_mut().delete(id, TombstoneReason::Rotted) {
                        evicted.push(t);
                    }
                }
                // The survivor summary from the sweep is exact: deletes
                // removed precisely the rotten set it skipped.
                shard.set_bounds(sweep.lo, sweep.hi, sweep.min_tick, sweep.max_tick);
                idx += 1;
            }
        }
        if self.spec.adaptive {
            self.adapt();
        }
        self.tail_inserts_since_sweep = 0;
        evicted
    }

    /// The adaptive lifecycle step, run at the tail of every eviction
    /// sweep — detection is free because live counts and the tail insert
    /// gauge are already maintained; no extra scan happens here.
    ///
    /// Split: the tail took [`tail_inserts_since_sweep`] inserts over the
    /// last sweep interval; if another interval like it would blow past
    /// the `rows_per_shard` budget, the boundary is cut *now*, at the
    /// sweep, instead of drifting past the budget mid-interval.
    ///
    /// Merge: a sealed shard whose live count fell below
    /// `low_water · rows_per_shard` joins its sealed, id-contiguous right
    /// neighbor, provided the union still fits the row budget. The merged
    /// shard may keep merging rightward in the same pass, so a run of
    /// hollowed-out shards collapses to one.
    ///
    /// Boundaries only ever move at sweep points and depend only on the
    /// operation history, so adaptive layouts are exactly as reproducible
    /// as fixed ones — and the layout-equivalence contract (answers and
    /// eviction sets are functions of global ids and time, never of
    /// boundaries) is untouched.
    ///
    /// [`tail_inserts_since_sweep`]: ShardStructure::tail_inserts_since_sweep
    fn adapt(&mut self) {
        if let Some(lock) = self.shards.last_mut() {
            let sh = lock.get_mut();
            if !sh.is_sealed()
                && sh.allocated() > 0
                && sh.allocated() + self.tail_inserts_since_sweep > self.spec.rows_per_shard
            {
                sh.seal_now();
                self.shards_split += 1;
            }
        }
        if self.spec.low_water <= 0.0 {
            return;
        }
        let low = self.spec.low_water * self.spec.rows_per_shard as f64;
        let mut i = 0usize;
        while i + 1 < self.shards.len() {
            let (l_end, l_sealed, l_live) = {
                let sh = self.shards[i].get_mut();
                (sh.end(), sh.is_sealed(), sh.store().live_count() as u64)
            };
            let (r_base, r_sealed, r_live) = {
                let sh = self.shards[i + 1].get_mut();
                (sh.base(), sh.is_sealed(), sh.store().live_count() as u64)
            };
            let contiguous = l_end == r_base;
            let underfull = (l_live as f64) < low || (r_live as f64) < low;
            let fits = l_live + r_live <= self.spec.rows_per_shard;
            if !(l_sealed && r_sealed && contiguous && underfull && fits) {
                i += 1;
                continue;
            }
            match self.merged_shard(i) {
                Ok(merged) => {
                    self.shards.remove(i + 1);
                    self.shards[i] = OrderedRwLock::new(&hierarchy::SHARDS, merged);
                    self.shards_merged += 1;
                    // Stay at `i`: the merged shard may absorb the next
                    // neighbor too.
                }
                Err(_) => {
                    // A merge failure can only come from an internal
                    // invariant breach; leave the pair untouched rather
                    // than risk a half-applied merge.
                    debug_assert!(false, "shard merge failed on valid inputs");
                    i += 1;
                }
            }
        }
    }

    /// Builds the merged replacement for shards `i` and `i + 1` without
    /// touching the shard list (the caller swaps it in only on success).
    /// The merged shard spans `[left.base, right.end)`, is sealed by
    /// construction, and carries the union of both summaries — exact
    /// whenever both inputs were exact, conservative otherwise.
    fn merged_shard(&self, i: usize) -> Result<Shard> {
        let left = self.shards[i].read();
        let right = self.shards[i + 1].read();
        let base = left.base();
        let capacity = right.end() - base;
        let mut store =
            TableStore::with_base(self.schema.clone(), self.storage.clone(), TupleId(base))?;
        for col in &self.hash_indexed {
            store.create_index(col)?;
        }
        for col in &self.ord_indexed {
            store.create_ord_index(col)?;
        }
        replay_store(&mut store, left.store())?;
        replay_store(&mut store, right.store())?;
        // Replay derives eviction counters from the tombstones it lays
        // down; overwrite with the exact sums.
        store.set_counters(
            left.store().evicted_rotted() + right.store().evicted_rotted(),
            left.store().evicted_consumed() + right.store().evicted_consumed(),
            left.store().evicted_deleted() + right.store().evicted_deleted(),
            left.store().rotted_unread() + right.store().rotted_unread(),
        );
        let (lr, rr) = (left.ranges(), right.ranges());
        Shard::from_parts(
            store,
            base,
            capacity,
            // Same base, same derived stream: the merged shard keeps the
            // left shard's RNG seed, so shard-local randomness stays
            // layout-stable.
            left.rng_seed(),
            left.dirty() || right.dirty(),
            lr.freshness_lo.min(rr.freshness_lo),
            lr.freshness_hi.max(rr.freshness_hi),
            lr.min_tick.min(rr.min_tick),
            lr.max_tick.max(rr.max_tick),
        )
    }

    /// Publishes a sealed MVCC snapshot of the extent's current state.
    ///
    /// Exclusive access (`&mut self`, already held by any caller holding
    /// the container write lock) means no per-shard locking happens here:
    /// each shard hands over its copy-on-write store (a cached `Arc` when
    /// the shard is clean since the last publish, one clone when dirty)
    /// plus its exact summary. The snapshot shares the extent's
    /// `shards_pruned` gauge.
    pub fn publish_snapshot(&mut self) -> ExtentSnapshot {
        let shards = self
            .shards
            .iter_mut()
            .map(|lock| {
                let sh = lock.get_mut();
                SnapshotShard {
                    base: sh.base(),
                    end: sh.end(),
                    ranges: sh.ranges(),
                    store: sh.snapshot_store(),
                }
            })
            .collect();
        ExtentSnapshot::new(self.schema.clone(), shards, self.shards_pruned.clone())
    }

    /// A point-in-time structural snapshot: every boundary, summary,
    /// dirty flag, gap, and lifecycle counter. Two extents with equal
    /// structures have identical physical layouts, not merely equivalent
    /// observable behavior.
    pub fn structure(&self) -> ShardStructure {
        ShardStructure {
            next_id: self.next_id,
            shards: self
                .shards
                .iter()
                .map(|lock| {
                    let sh = lock.read();
                    let r = sh.ranges();
                    ShardRecord {
                        base: sh.base(),
                        end: sh.end(),
                        capacity: sh.capacity(),
                        sealed: sh.is_sealed(),
                        dirty: sh.dirty(),
                        live: sh.store().live_count(),
                        freshness_lo_bits: r.freshness_lo.to_bits(),
                        freshness_hi_bits: r.freshness_hi.to_bits(),
                        min_tick: r.min_tick,
                        max_tick: r.max_tick,
                    }
                })
                .collect(),
            dropped: self
                .dropped
                .iter()
                .map(|d| (d.base, d.end, d.rotted))
                .collect(),
            shards_dropped: self.shards_dropped,
            shards_split: self.shards_split,
            shards_merged: self.shards_merged,
            tail_inserts_since_sweep: self.tail_inserts_since_sweep,
        }
    }

    /// The layout half of a shard-aware checkpoint. Tuple data is *not*
    /// here — pair this with one snapshot file per resident shard, visited
    /// via [`for_each_shard_store`](Self::for_each_shard_store).
    pub fn manifest(&self) -> ShardLayoutManifest {
        ShardLayoutManifest {
            schema: self.schema.clone(),
            spec: self.spec,
            next_id: self.next_id,
            dropped: self
                .dropped
                .iter()
                .map(|d| DroppedRangeManifest {
                    base: d.base,
                    end: d.end,
                    rotted: d.rotted,
                })
                .collect(),
            folded_rotted: self.folded_rotted,
            folded_consumed: self.folded_consumed,
            folded_deleted: self.folded_deleted,
            folded_rotted_unread: self.folded_rotted_unread,
            shards_dropped: self.shards_dropped,
            shards_split: self.shards_split,
            shards_merged: self.shards_merged,
            tail_inserts_since_sweep: self.tail_inserts_since_sweep,
            hash_indexed: self.hash_indexed.clone(),
            ord_indexed: self.ord_indexed.clone(),
            shards: self
                .shards
                .iter()
                .map(|lock| {
                    let sh = lock.read();
                    let r = sh.ranges();
                    ShardManifest {
                        base: sh.base(),
                        capacity: sh.capacity(),
                        dirty: sh.dirty(),
                        freshness_lo: r.freshness_lo,
                        freshness_hi: r.freshness_hi,
                        min_tick: (r.min_tick != u64::MAX).then_some(r.min_tick),
                        max_tick: r.max_tick,
                    }
                })
                .collect(),
        }
    }

    /// Visits every resident shard's backing store in id order, passing
    /// the shard base — the checkpoint writer streams each store to its
    /// own `<container>.shard-<base>.snap` file from here.
    pub fn for_each_shard_store(
        &self,
        mut f: impl FnMut(u64, &TableStore) -> Result<()>,
    ) -> Result<()> {
        for lock in &self.shards {
            let sh = lock.read();
            f(sh.base(), sh.store())?;
        }
        Ok(())
    }

    /// Reassembles an extent from a layout manifest plus one restored
    /// store per manifest shard record (same order). Boundaries, dirty
    /// flags, summaries, gaps, and counters come back verbatim; per-shard
    /// RNG seeds re-derive from `rng` (the restore contract hands us a
    /// container RNG in its construction state, so the derivation matches
    /// the original extent exactly).
    pub fn from_manifest(
        storage: StorageConfig,
        manifest: &ShardLayoutManifest,
        stores: Vec<TableStore>,
        rng: &DeterministicRng,
    ) -> Result<Self> {
        manifest.spec.validate()?;
        if stores.len() != manifest.shards.len() {
            return Err(fungus_types::FungusError::CorruptSnapshot(format!(
                "layout manifest lists {} shards but {} snapshots were supplied",
                manifest.shards.len(),
                stores.len()
            )));
        }
        let rng_root = rng.derive_seed("shard-extent");
        let derive = DeterministicRng::new(rng_root);
        let mut shards = Vec::with_capacity(stores.len());
        let mut prev_end = 0u64;
        for (record, store) in manifest.shards.iter().zip(stores) {
            if store.schema() != &manifest.schema {
                return Err(fungus_types::FungusError::CorruptSnapshot(format!(
                    "shard snapshot at base {} disagrees with the manifest schema",
                    record.base
                )));
            }
            if record.base < prev_end {
                return Err(fungus_types::FungusError::CorruptSnapshot(format!(
                    "shard records overlap or regress at base {}",
                    record.base
                )));
            }
            let seed = derive.derive_seed(&format!("shard/{}", record.base));
            let shard = Shard::from_parts(
                store,
                record.base,
                record.capacity,
                seed,
                record.dirty,
                record.freshness_lo,
                record.freshness_hi,
                record.min_tick.unwrap_or(u64::MAX),
                record.max_tick,
            )?;
            prev_end = shard.end();
            shards.push(OrderedRwLock::new(&hierarchy::SHARDS, shard));
        }
        if manifest.next_id < prev_end {
            return Err(fungus_types::FungusError::CorruptSnapshot(format!(
                "id watermark {} is behind the last resident shard ({prev_end})",
                manifest.next_id
            )));
        }
        let restored = shards.len() as u64;
        Ok(ShardedExtent {
            schema: manifest.schema.clone(),
            storage,
            spec: manifest.spec,
            shards,
            dropped: manifest
                .dropped
                .iter()
                .map(|d| DroppedRange {
                    base: d.base,
                    end: d.end,
                    rotted: d.rotted,
                })
                .collect(),
            next_id: manifest.next_id,
            folded_rotted: manifest.folded_rotted,
            folded_consumed: manifest.folded_consumed,
            folded_deleted: manifest.folded_deleted,
            folded_rotted_unread: manifest.folded_rotted_unread,
            shards_dropped: manifest.shards_dropped,
            shards_pruned: Arc::new(AtomicU64::new(0)),
            shards_split: manifest.shards_split,
            shards_merged: manifest.shards_merged,
            shards_restored: restored,
            tail_inserts_since_sweep: manifest.tail_inserts_since_sweep,
            hash_indexed: manifest.hash_indexed.clone(),
            ord_indexed: manifest.ord_indexed.clone(),
            pool: ShardPool::new(manifest.spec.workers),
            rng_root,
        })
    }

    /// One maintenance pass: compacts each shard's segments and drops
    /// sealed shards with no live tuples left (their ids become one gap,
    /// like rot drops, but flagged as maintenance).
    pub fn compact(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        let mut idx = 0usize;
        while idx < self.shards.len() {
            let dead_sealed = {
                let sh = self.shards[idx].get_mut();
                sh.is_sealed() && sh.store().live_count() == 0
            };
            if dead_sealed {
                let shard = self.shards.remove(idx).into_inner();
                report.segments_dropped += shard.store().segments().len();
                report.bytes_reclaimed += shard
                    .store()
                    .segments()
                    .iter()
                    .map(|s| s.slot_count() * std::mem::size_of::<Slot>())
                    .sum::<usize>();
                let evicted = self.drop_shard(shard, false);
                debug_assert!(evicted.is_empty(), "dead shard had live tuples");
                continue;
            }
            let sub = self.shards[idx].get_mut().store_mut().compact();
            report.segments_dropped += sub.segments_dropped;
            report.segments_compacted += sub.segments_compacted;
            report.bytes_reclaimed += sub.bytes_reclaimed;
            idx += 1;
        }
        report
    }

    /// Cures every infected tuple across shards.
    pub fn cure_all(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|l| l.get_mut().store_mut().cure_all())
            .sum()
    }

    /// Merged point-in-time statistics, one pass per shard.
    pub fn stats(&self, now: Tick) -> TableStats {
        let mut hist = FreshnessHistogram::default();
        let mut sum_fresh = 0.0;
        let mut min_fresh = f64::INFINITY;
        let mut sum_age = 0.0;
        let mut n = 0usize;
        for lock in &self.shards {
            let sh = lock.read();
            for t in sh.store().iter_live() {
                let f = t.meta.freshness.get();
                hist.observe(f);
                sum_fresh += f;
                min_fresh = min_fresh.min(f);
                sum_age += t.meta.age(now).as_f64();
                n += 1;
            }
        }
        TableStats {
            at: now,
            live_count: n,
            total_inserted: self.total_inserted(),
            approx_bytes: self.approx_bytes(),
            segment_count: self.segment_count(),
            infected_count: self.infected_count(),
            mean_freshness: if n == 0 { 1.0 } else { sum_fresh / n as f64 },
            min_freshness: if n == 0 { 1.0 } else { min_fresh },
            mean_age: if n == 0 { 0.0 } else { sum_age / n as f64 },
            freshness_histogram: hist,
            evicted_rotted: self.evicted_rotted(),
            evicted_consumed: self.evicted_consumed(),
            evicted_deleted: self.evicted_deleted(),
            rotted_unread: self.rotted_unread(),
        }
    }

    /// Merged rot-spot census. Runs are counted per shard (a run spanning
    /// a shard boundary counts once on each side — a diagnostic
    /// divergence from the monolithic census, documented here rather than
    /// paid for with a cross-shard merge); each rot-dropped range counts
    /// as one hole of its full width.
    pub fn census(&self) -> SpotCensus {
        let mut out = SpotCensus::default();
        for lock in &self.shards {
            let c = SpotCensus::collect(lock.read().store());
            out.infected_spots += c.infected_spots;
            out.largest_infected_spot = out.largest_infected_spot.max(c.largest_infected_spot);
            out.infected_total += c.infected_total;
            out.rot_holes += c.rot_holes;
            out.largest_rot_hole = out.largest_rot_hole.max(c.largest_rot_hole);
            out.rot_hole_total += c.rot_hole_total;
        }
        for d in &self.dropped {
            if d.rotted {
                let width = (d.end - d.base) as usize;
                out.rot_holes += 1;
                out.largest_rot_hole = out.largest_rot_hole.max(width);
                out.rot_hole_total += width;
            }
        }
        out
    }

    /// Builds an hash index on `column` across every shard (current and
    /// future).
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        self.ensure_tail()?;
        for lock in &mut self.shards {
            lock.get_mut().store_mut().create_index(column)?;
        }
        self.hash_indexed.push(column.to_string());
        Ok(())
    }

    /// Builds an ordered index on `column` across every shard (current
    /// and future).
    pub fn create_ord_index(&mut self, column: &str) -> Result<()> {
        self.ensure_tail()?;
        for lock in &mut self.shards {
            lock.get_mut().store_mut().create_ord_index(column)?;
        }
        self.ord_indexed.push(column.to_string());
        Ok(())
    }

    /// Flattens the extent into one monolithic [`TableStore`] with the
    /// same logical content: live tuples, tombstones, dropped ranges
    /// (re-materialised as tombstone runs), counters, and index
    /// definitions. Snapshots of sharded containers go through this, so
    /// the on-disk format is shard-agnostic.
    pub fn to_monolithic(&self) -> Result<TableStore> {
        let mut out = TableStore::new(self.schema.clone(), self.storage.clone())?;
        for col in &self.hash_indexed {
            out.create_index(col)?;
        }
        for col in &self.ord_indexed {
            out.create_ord_index(col)?;
        }
        let mut di = 0usize;
        let mut si = 0usize;
        loop {
            let next_drop = self.dropped.get(di);
            let take_drop = match (next_drop, si < self.shards.len()) {
                (Some(d), true) => d.base < self.shards[si].read().base(),
                (Some(_), false) => true,
                (None, true) => false,
                (None, false) => break,
            };
            if take_drop {
                let d = self.dropped[di];
                di += 1;
                let reason = if d.rotted {
                    TombstoneReason::Rotted
                } else {
                    TombstoneReason::Deleted
                };
                for _ in d.base..d.end {
                    out.tombstone_restored(reason)?;
                }
            } else {
                let sh = self.shards[si].read();
                si += 1;
                replay_store(&mut out, sh.store())?;
            }
        }
        debug_assert_eq!(out.next_id().get(), self.next_id);
        out.set_counters(
            self.evicted_rotted(),
            self.evicted_consumed(),
            self.evicted_deleted(),
            self.rotted_unread(),
        );
        Ok(out)
    }

    /// Re-shards a monolithic store under `spec`. The logical content is
    /// preserved exactly (live tuples, tombstones, counters, infection
    /// state, index definitions); shard summaries are recomputed.
    pub fn from_monolithic(
        store: &TableStore,
        spec: ShardSpec,
        rng: &DeterministicRng,
    ) -> Result<Self> {
        let mut ext =
            ShardedExtent::new(store.schema().clone(), store.config().clone(), spec, rng)?;
        let columns = store.schema().columns().to_vec();
        for ci in store.indexed_columns() {
            ext.create_index(&columns[ci].name)?;
        }
        for ci in store.ord_indexed_columns() {
            ext.create_ord_index(&columns[ci].name)?;
        }
        for seg in store.segments() {
            while ext.next_id < seg.base().get() {
                ext.restore_tombstone(TombstoneReason::Deleted)?;
            }
            let mut first_err = None;
            seg.for_each_slot(|_, slot| {
                if first_err.is_some() {
                    return;
                }
                let step = match slot {
                    Ok(t) => ext.restore_live(t.clone()),
                    Err(reason) => ext.restore_tombstone(reason),
                };
                if let Err(e) = step {
                    first_err = Some(e);
                }
            });
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        while ext.next_id < store.next_id().get() {
            ext.restore_tombstone(TombstoneReason::Deleted)?;
        }
        // Replay double-counts evictions (the source counters already
        // include them): zero the per-shard replicas and fold the exact
        // originals instead.
        for lock in &mut ext.shards {
            lock.get_mut().store_mut().set_counters(0, 0, 0, 0);
        }
        ext.folded_rotted = store.evicted_rotted();
        ext.folded_consumed = store.evicted_consumed();
        ext.folded_deleted = store.evicted_deleted();
        ext.folded_rotted_unread = store.rotted_unread();
        for lock in &mut ext.shards {
            lock.get_mut().recompute_bounds();
        }
        Ok(ext)
    }

    fn restore_live(&mut self, tuple: Tuple) -> Result<()> {
        self.ensure_tail()?;
        let sh = self.shards.last_mut().expect("tail exists").get_mut();
        sh.store_mut().insert_restored(tuple)?;
        self.next_id += 1;
        Ok(())
    }

    fn restore_tombstone(&mut self, reason: TombstoneReason) -> Result<()> {
        self.ensure_tail()?;
        let sh = self.shards.last_mut().expect("tail exists").get_mut();
        sh.store_mut().tombstone_restored(reason)?;
        self.next_id += 1;
        Ok(())
    }

    fn prev_live(&self, id: TupleId) -> Option<TupleId> {
        let pos = self.shards.partition_point(|l| l.read().base() < id.get());
        for j in (0..pos).rev() {
            let sh = self.shards[j].read();
            if sh.store().live_count() == 0 {
                continue;
            }
            if let Some(p) = sh.store().prev_live_below(id) {
                return Some(p);
            }
        }
        None
    }

    fn next_live(&self, id: TupleId) -> Option<TupleId> {
        let start = id.succ();
        let pos = self
            .shards
            .partition_point(|l| l.read().end() <= start.get());
        for lock in &self.shards[pos..] {
            let sh = lock.read();
            if sh.store().live_count() == 0 {
                continue;
            }
            if let Some(n) = sh.store().next_live_from(start) {
                return Some(n);
            }
        }
        None
    }
}

/// Replays `store`'s slots (live and tombstoned, in id order) onto the
/// tail of `out`, bridging id gaps from dropped segments with `Deleted`
/// tombstones — the same convention the snapshot codec uses.
fn replay_store(out: &mut TableStore, store: &TableStore) -> Result<()> {
    for seg in store.segments() {
        while out.next_id() < seg.base() {
            out.tombstone_restored(TombstoneReason::Deleted)?;
        }
        let mut first_err = None;
        seg.for_each_slot(|_, slot| {
            if first_err.is_some() {
                return;
            }
            let step = match slot {
                Ok(t) => out.insert_restored(t.clone()),
                Err(reason) => out.tombstone_restored(reason),
            };
            if let Err(e) = step {
                first_err = Some(e);
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    while out.next_id() < store.next_id() {
        out.tombstone_restored(TombstoneReason::Deleted)?;
    }
    Ok(())
}

impl DecaySurface for ShardedExtent {
    fn live_count(&self) -> usize {
        ShardedExtent::live_count(self)
    }

    fn for_each_live_meta(&self, f: &mut dyn FnMut(TupleId, &TupleMeta)) {
        for lock in &self.shards {
            let sh = lock.read();
            for t in sh.store().iter_live() {
                f(t.meta.id, &t.meta);
            }
        }
    }

    fn meta(&self, id: TupleId) -> Option<TupleMeta> {
        let i = self.locate(id)?;
        self.shards[i].read().store().get(id).map(|t| t.meta)
    }

    fn decay(&mut self, id: TupleId, amount: f64) -> Option<Freshness> {
        let i = self.locate(id)?;
        let sh = self.shards[i].get_mut();
        let f = sh.store_mut().decay(id, amount)?;
        sh.note_freshness(f.get());
        Some(f)
    }

    fn scale_freshness(&mut self, id: TupleId, factor: f64) -> Option<Freshness> {
        let i = self.locate(id)?;
        let sh = self.shards[i].get_mut();
        let f = sh.store_mut().scale_freshness(id, factor)?;
        sh.note_freshness(f.get());
        Some(f)
    }

    fn infect(&mut self, id: TupleId, now: Tick) -> bool {
        match self.locate(id) {
            Some(i) => {
                let sh = self.shards[i].get_mut();
                let hit = sh.store_mut().infect(id, now);
                if hit {
                    sh.mark_dirty();
                }
                hit
            }
            None => false,
        }
    }

    fn cure(&mut self, id: TupleId) -> bool {
        match self.locate(id) {
            Some(i) => self.shards[i].get_mut().store_mut().cure(id),
            None => false,
        }
    }

    fn infected_ids(&self) -> Vec<TupleId> {
        let mut out = Vec::new();
        for lock in &self.shards {
            out.extend(lock.read().store().infected_ids());
        }
        out
    }

    fn live_neighbors(&self, id: TupleId) -> (Option<TupleId>, Option<TupleId>) {
        (self.prev_live(id), self.next_live(id))
    }

    fn seed_candidates(&self, now: Tick) -> Vec<(TupleId, f64)> {
        // Gather per shard on the pool, merge in shard (= id) order: the
        // output is bit-identical to the default single-pass gather, so
        // EGI's draws are layout-independent.
        let per: Vec<Vec<(TupleId, f64)>> = self.pool.run(self.shards.len(), |i| {
            let sh = self.shards[i].read();
            sh.store()
                .iter_live()
                .filter(|t| !t.meta.infected)
                .map(|t| (t.meta.id, t.meta.age(now).as_f64()))
                .collect()
        });
        let mut out = Vec::with_capacity(per.iter().map(Vec::len).sum());
        for v in per {
            out.extend(v);
        }
        out
    }
}

impl QueryExtent for ShardedExtent {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome> {
        let per: Vec<Result<ShardScan>> = self.pool.run(self.shards.len(), |i| {
            let sh = self.shards[i].read();
            if sh.store().live_count() == 0 {
                return Ok(ShardScan::Empty);
            }
            if !plan.pruning.shard_may_match(&sh.ranges(), now) {
                return Ok(ShardScan::Pruned);
            }
            scan_store(sh.store(), plan, now).map(ShardScan::Done)
        });
        let mut out = ScanOutcome::default();
        for result in per {
            match result? {
                ShardScan::Empty => {}
                ShardScan::Pruned => out.pruned_shards += 1,
                ShardScan::Done(s) => {
                    out.matched.extend(s.matched);
                    out.scanned += s.scanned;
                    out.pruned_segments += s.pruned_segments;
                    out.used_index |= s.used_index;
                }
            }
        }
        self.shards_pruned
            .fetch_add(out.pruned_shards as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn tuple(&mut self, id: TupleId) -> Option<&Tuple> {
        let i = self.locate(id)?;
        self.shards[i].get_mut().store().get(id)
    }

    fn delete(&mut self, id: TupleId, reason: TombstoneReason) -> Option<Tuple> {
        let i = self.locate(id)?;
        self.shards[i].get_mut().store_mut().delete(id, reason)
    }

    fn touch(&mut self, id: TupleId, now: Tick) {
        if let Some(i) = self.locate(id) {
            self.shards[i].get_mut().store_mut().touch(id, now);
        }
    }

    fn insert(&mut self, values: Vec<Value>, now: Tick) -> Result<TupleId> {
        self.ensure_tail()?;
        let idx = self.shards.len() - 1;
        let sh = self.shards[idx].get_mut();
        let id = sh.store_mut().insert(values, now)?;
        sh.note_insert(now);
        self.next_id += 1;
        self.tail_inserts_since_sweep += 1;
        debug_assert_eq!(self.shards[idx].get_mut().end(), self.next_id);
        Ok(id)
    }

    fn live_ids(&self) -> Vec<TupleId> {
        let mut out = Vec::new();
        for lock in &self.shards {
            out.extend(lock.read().store().iter_live().map(|t| t.meta.id));
        }
        out
    }

    fn create_index(&mut self, column: &str) -> Result<()> {
        ShardedExtent::create_index(self, column)
    }

    fn create_ord_index(&mut self, column: &str) -> Result<()> {
        ShardedExtent::create_ord_index(self, column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_fungi::{EgiConfig, EgiFungus, Fungus, SeedBias};
    use fungus_query::execute_statement;
    use fungus_types::{DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[("v", DataType::Int), ("w", DataType::Float)]).unwrap()
    }

    fn sharded(rows_per_shard: u64) -> ShardedExtent {
        ShardedExtent::new(
            schema(),
            StorageConfig::for_tests(),
            ShardSpec::new(rows_per_shard).with_workers(1),
            &DeterministicRng::new(99),
        )
        .unwrap()
    }

    fn fill<E: QueryExtent>(ext: &mut E, n: i64) {
        for i in 0..n {
            ext.insert(vec![Value::Int(i), Value::Float(i as f64)], Tick(i as u64))
                .unwrap();
        }
    }

    #[test]
    fn inserts_split_into_dense_shards() {
        let mut ext = sharded(8);
        fill(&mut ext, 20);
        assert_eq!(ext.shard_count(), 3);
        assert_eq!(ext.live_count(), 20);
        assert_eq!(ext.total_inserted(), 20);
        assert_eq!(ext.next_id(), TupleId(20));
        for id in 0..20u64 {
            assert!(ext.meta(TupleId(id)).is_some(), "id {id} live");
        }
        assert!(ext.meta(TupleId(20)).is_none());
        // Id-ordered global walk.
        let ids: Vec<u64> = ext.live_ids().iter().map(|i| i.get()).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn queries_match_monolithic_answers() {
        let mut mono = TableStore::new(schema(), StorageConfig::for_tests()).unwrap();
        let mut ext = sharded(4);
        fill(&mut mono, 30);
        fill(&mut ext, 30);
        let statements = [
            "SELECT v, w FROM t WHERE v >= 5 AND v < 12",
            "SELECT COUNT(*), SUM(v) FROM t WHERE w > 3.0",
            "SELECT * FROM t WHERE $id >= 10 AND $id < 14 CONSUME",
            "SELECT v FROM t ORDER BY v DESC LIMIT 5",
            "SELECT COUNT(*) FROM t",
        ];
        for sql in statements {
            let a = execute_statement(sql, &mut mono, Tick(40)).unwrap();
            let b = execute_statement(sql, &mut ext, Tick(40)).unwrap();
            assert_eq!(a.rows, b.rows, "{sql}");
            assert_eq!(
                a.consumed.iter().map(|t| t.meta.id).collect::<Vec<_>>(),
                b.consumed.iter().map(|t| t.meta.id).collect::<Vec<_>>(),
                "{sql}"
            );
        }
        assert_eq!(mono.live_count(), ext.live_count());
        assert_eq!(mono.evicted_consumed(), ext.evicted_consumed());
    }

    #[test]
    fn meta_bounds_prune_whole_shards() {
        let mut ext = sharded(4);
        fill(&mut ext, 16); // inserted at ticks 0..=15, four sealed shards
        let rs = execute_statement("SELECT v FROM t WHERE $inserted_at < 4", &mut ext, Tick(20))
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.pruned_shards, 3, "three shards lie wholly past tick 4");
        assert_eq!(ext.shards_pruned(), 3);
        // Freshness bounds: decay the first shard, let an eviction pass
        // tighten the envelope (nothing is rotten yet), then ask for
        // fresh rows.
        for id in 0..4u64 {
            DecaySurface::decay(&mut ext, TupleId(id), 0.9).unwrap();
        }
        assert!(ext.evict_rotten().is_empty());
        let rs = execute_statement("SELECT v FROM t WHERE $freshness > 0.5", &mut ext, Tick(20))
            .unwrap();
        assert_eq!(rs.rows.len(), 12);
        assert_eq!(rs.pruned_shards, 1, "the decayed shard cannot match");
    }

    #[test]
    fn fully_rotted_shard_drops_in_one_piece() {
        let mut ext = sharded(4);
        fill(&mut ext, 8);
        for id in 0..4u64 {
            DecaySurface::decay(&mut ext, TupleId(id), 1.0).unwrap();
        }
        assert_eq!(ext.dirty_shard_count(), 1);
        let evicted = ext.evict_rotten();
        assert_eq!(
            evicted.iter().map(|t| t.meta.id.get()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(ext.shards_dropped(), 1);
        assert_eq!(ext.shard_count(), 1);
        assert_eq!(ext.live_count(), 4);
        assert_eq!(ext.evicted_rotted(), 4);
        assert_eq!(ext.rotted_unread(), 4);
        assert_eq!(ext.dirty_shard_count(), 0);
        // The census sees the dropped range as one rot hole.
        let census = ext.census();
        assert_eq!(census.rot_holes, 1);
        assert_eq!(census.largest_rot_hole, 4);
        // Neighbor search bridges the gap like a tombstone hole.
        assert_eq!(ext.live_neighbors(TupleId(2)), (None, Some(TupleId(4))));
        assert_eq!(ext.live_neighbors(TupleId(4)), (None, Some(TupleId(5))));
        // A second pass has nothing dirty left to do.
        assert!(ext.evict_rotten().is_empty());
    }

    #[test]
    fn partial_rot_evicts_tuple_by_tuple() {
        let mut ext = sharded(4);
        fill(&mut ext, 8);
        DecaySurface::decay(&mut ext, TupleId(1), 1.0).unwrap();
        DecaySurface::decay(&mut ext, TupleId(2), 0.4).unwrap();
        let evicted = ext.evict_rotten();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].meta.id, TupleId(1));
        assert_eq!(ext.shards_dropped(), 0);
        assert_eq!(ext.live_count(), 7);
        // Bounds were recomputed exactly on the dirty shard.
        let rs =
            execute_statement("SELECT v FROM t WHERE $freshness < 0.7", &mut ext, Tick(9)).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn compaction_drops_dead_sealed_shards() {
        let mut ext = sharded(4);
        fill(&mut ext, 12);
        for id in 0..4u64 {
            QueryExtent::delete(&mut ext, TupleId(id), TombstoneReason::Deleted).unwrap();
        }
        assert_eq!(ext.shard_count(), 3);
        let report = ext.compact();
        assert!(report.segments_dropped > 0);
        assert_eq!(ext.shard_count(), 2);
        assert_eq!(ext.shards_dropped(), 1);
        assert_eq!(ext.evicted_deleted(), 4);
        assert_eq!(ext.live_count(), 8);
    }

    #[test]
    fn indexes_cover_current_and_future_shards() {
        let mut ext = sharded(4);
        QueryExtent::create_index(&mut ext, "v").unwrap();
        fill(&mut ext, 20);
        let rs = execute_statement("SELECT w FROM t WHERE v = 17", &mut ext, Tick(30)).unwrap();
        assert!(rs.used_index);
        assert_eq!(rs.rows, vec![vec![Value::Float(17.0)]]);
        // Duplicate index creation is rejected, as on a monolithic store.
        assert!(QueryExtent::create_index(&mut ext, "v").is_err());
    }

    #[test]
    fn seed_candidate_override_matches_default_gather() {
        let mut ext = sharded(4);
        fill(&mut ext, 19);
        DecaySurface::infect(&mut ext, TupleId(3), Tick(20));
        DecaySurface::infect(&mut ext, TupleId(11), Tick(20));
        let fast = DecaySurface::seed_candidates(&ext, Tick(25));
        let mut slow = Vec::new();
        ext.for_each_live_meta(&mut |id, meta| {
            if !meta.infected {
                slow.push((id, meta.age(Tick(25)).as_f64()));
            }
        });
        assert_eq!(fast, slow);
    }

    #[test]
    fn monolithic_roundtrip_preserves_logical_state() {
        let mut ext = sharded(4);
        fill(&mut ext, 20);
        QueryExtent::create_ord_index(&mut ext, "v").unwrap();
        DecaySurface::infect(&mut ext, TupleId(9), Tick(21));
        for id in 0..4u64 {
            DecaySurface::decay(&mut ext, TupleId(id), 1.0).unwrap();
        }
        QueryExtent::delete(&mut ext, TupleId(6), TombstoneReason::Consumed).unwrap();
        ext.evict_rotten();
        assert_eq!(ext.shards_dropped(), 1);

        let mono = ext.to_monolithic().unwrap();
        assert_eq!(mono.live_count(), ext.live_count());
        assert_eq!(mono.total_inserted(), ext.total_inserted());
        assert_eq!(mono.evicted_rotted(), ext.evicted_rotted());
        assert_eq!(mono.evicted_consumed(), ext.evicted_consumed());
        assert_eq!(mono.rotted_unread(), ext.rotted_unread());
        assert_eq!(mono.infected_ids(), ext.infected_ids());
        let mono_live: Vec<Tuple> = mono.iter_live().cloned().collect();
        let mut ext_live = Vec::new();
        for id in ext.live_ids() {
            ext_live.push(QueryExtent::tuple(&mut ext, id).unwrap().clone());
        }
        assert_eq!(mono_live, ext_live);

        let back =
            ShardedExtent::from_monolithic(&mono, ShardSpec::new(7), &DeterministicRng::new(99))
                .unwrap();
        assert_eq!(back.live_count(), ext.live_count());
        assert_eq!(back.evicted_rotted(), ext.evicted_rotted());
        assert_eq!(back.infected_ids(), ext.infected_ids());
        assert_eq!(back.total_inserted(), ext.total_inserted());
        let mut back_mut = back;
        let mut back_live = Vec::new();
        for id in back_mut.live_ids() {
            back_live.push(QueryExtent::tuple(&mut back_mut, id).unwrap().clone());
        }
        assert_eq!(back_live, ext_live);
    }

    /// Drives one EGI fungus over an extent: bulk load, then tick + evict
    /// for a stretch of virtual time. Returns the exact eviction sequence
    /// and the final live decay state (freshness as raw bits).
    fn drive_egi<E: DecaySurface + QueryExtent>(
        ext: &mut E,
        evict: impl Fn(&mut E) -> Vec<Tuple>,
    ) -> (Vec<u64>, Vec<(u64, u64, bool)>) {
        for i in 0..200i64 {
            QueryExtent::insert(
                ext,
                vec![Value::Int(i), Value::Float(i as f64)],
                Tick(i as u64 / 10),
            )
            .unwrap();
        }
        let config = EgiConfig {
            seeds_per_tick: 2,
            seed_bias: SeedBias::AgePow(1.5),
            rot_rate: 0.34,
            spread_width: 2,
        };
        let mut egi = EgiFungus::new(config, &DeterministicRng::new(4242));
        let mut evicted_ids = Vec::new();
        for t in 21..90u64 {
            egi.tick(ext, Tick(t));
            evicted_ids.extend(evict(ext).into_iter().map(|t| t.meta.id.get()));
        }
        let mut live = Vec::new();
        ext.for_each_live_meta(&mut |id, meta| {
            live.push((id.get(), meta.freshness.get().to_bits(), meta.infected));
        });
        (evicted_ids, live)
    }

    #[test]
    fn egi_is_bit_identical_across_shard_counts() {
        let mut mono = TableStore::new(schema(), StorageConfig::for_tests()).unwrap();
        let baseline = drive_egi(&mut mono, |s| s.evict_rotten());
        assert!(!baseline.0.is_empty(), "workload must rot something");
        for rows_per_shard in [200, 50, 13] {
            let mut ext = sharded(rows_per_shard);
            let got = drive_egi(&mut ext, |e| e.evict_rotten());
            assert_eq!(got, baseline, "rows_per_shard {rows_per_shard}");
        }
    }

    fn adaptive(rows_per_shard: u64, low_water: f64) -> ShardedExtent {
        ShardedExtent::new(
            schema(),
            StorageConfig::for_tests(),
            ShardSpec::new(rows_per_shard)
                .with_workers(1)
                .with_adaptive()
                .with_low_water(low_water),
            &DeterministicRng::new(99),
        )
        .unwrap()
    }

    #[test]
    fn insert_pressure_seals_the_tail_early() {
        let mut ext = adaptive(8, 0.0);
        // 6 inserts between sweeps: another interval like it would overrun
        // the 8-row budget, so the sweep seals the tail at 6 rows.
        fill(&mut ext, 6);
        assert!(ext.evict_rotten().is_empty());
        assert_eq!(ext.shards_split(), 1);
        let s = ext.structure();
        assert_eq!(s.shards.len(), 1);
        assert!(s.shards[0].sealed);
        assert_eq!(s.shards[0].capacity, 6);
        assert_eq!(s.tail_inserts_since_sweep, 0);
        // The next insert opens a fresh shard at the sealed boundary.
        QueryExtent::insert(&mut ext, vec![Value::Int(6), Value::Float(6.0)], Tick(6)).unwrap();
        let s = ext.structure();
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[1].base, 6);
        // A calm interval leaves the new tail open.
        assert!(ext.evict_rotten().is_empty());
        assert_eq!(ext.shards_split(), 1);
        assert!(!ext.structure().shards[1].sealed);
    }

    #[test]
    fn hollowed_sealed_shards_merge_with_their_neighbor() {
        let mut ext = adaptive(4, 0.6);
        fill(&mut ext, 12); // three sealed shards of 4
        assert_eq!(ext.shard_count(), 3);
        // Hollow out the first two shards below low water (0.6 · 4 = 2.4
        // rows): one survivor each.
        for id in [0u64, 1, 2, 4, 5, 6] {
            QueryExtent::delete(&mut ext, TupleId(id), TombstoneReason::Deleted).unwrap();
        }
        assert!(ext.evict_rotten().is_empty());
        assert_eq!(ext.shards_merged(), 1);
        let s = ext.structure();
        assert_eq!(s.shards.len(), 2);
        assert_eq!((s.shards[0].base, s.shards[0].capacity), (0, 8));
        assert!(s.shards[0].sealed);
        assert_eq!(s.shards[0].live, 2);
        // Content is untouched: all live ids answer, in order.
        let ids: Vec<u64> = ext.live_ids().iter().map(|i| i.get()).collect();
        assert_eq!(ids, vec![3, 7, 8, 9, 10, 11]);
        assert_eq!(ext.evicted_deleted(), 6);
        // The merged shard keeps merging rightward once the third shard
        // hollows too (cascade: 8-wide + 4-wide still fits 4 + 1 live? no —
        // budget is 4 rows, 2 + 1 = 3 fits).
        for id in [8u64, 9, 10] {
            QueryExtent::delete(&mut ext, TupleId(id), TombstoneReason::Deleted).unwrap();
        }
        assert!(ext.evict_rotten().is_empty());
        assert_eq!(ext.shards_merged(), 2);
        assert_eq!(ext.shard_count(), 1);
        let s = ext.structure();
        assert_eq!((s.shards[0].base, s.shards[0].capacity), (0, 12));
        let ids: Vec<u64> = ext.live_ids().iter().map(|i| i.get()).collect();
        assert_eq!(ids, vec![3, 7, 11]);
    }

    #[test]
    fn merge_preserves_indexes_and_neighbor_walks() {
        let mut ext = adaptive(4, 0.6);
        QueryExtent::create_index(&mut ext, "v").unwrap();
        QueryExtent::create_ord_index(&mut ext, "w").unwrap();
        fill(&mut ext, 8);
        for id in [0u64, 1, 2, 4, 5, 6] {
            QueryExtent::delete(&mut ext, TupleId(id), TombstoneReason::Deleted).unwrap();
        }
        assert!(ext.evict_rotten().is_empty());
        assert_eq!(ext.shards_merged(), 1);
        let rs = execute_statement("SELECT w FROM t WHERE v = 7", &mut ext, Tick(9)).unwrap();
        assert!(rs.used_index);
        assert_eq!(rs.rows, vec![vec![Value::Float(7.0)]]);
        assert_eq!(
            ext.live_neighbors(TupleId(5)),
            (Some(TupleId(3)), Some(TupleId(7)))
        );
    }

    #[test]
    fn egi_is_bit_identical_with_adaptive_layouts() {
        let mut mono = TableStore::new(schema(), StorageConfig::for_tests()).unwrap();
        let baseline = drive_egi(&mut mono, |s| s.evict_rotten());
        for (rows_per_shard, low_water) in [(50, 0.6), (13, 0.3), (30, 0.0)] {
            let mut ext = adaptive(rows_per_shard, low_water);
            let got = drive_egi(&mut ext, |e| e.evict_rotten());
            assert_eq!(got, baseline, "rows {rows_per_shard} low {low_water}");
            assert!(
                ext.shards_split() + ext.shards_merged() > 0,
                "rows {rows_per_shard} low {low_water}: lifecycle never fired"
            );
        }
    }

    #[test]
    fn manifest_roundtrip_restores_structure_exactly() {
        let mut ext = adaptive(8, 0.5);
        QueryExtent::create_index(&mut ext, "v").unwrap();
        fill(&mut ext, 40);
        for id in 0..14u64 {
            DecaySurface::decay(&mut ext, TupleId(id), 1.0).unwrap();
        }
        ext.evict_rotten();
        for id in 20..23u64 {
            DecaySurface::decay(&mut ext, TupleId(id), 0.4).unwrap();
        }
        // Leave some shards dirty on purpose: the flag must round-trip.
        assert!(ext.dirty_shard_count() > 0);
        assert!(ext.shard_count() >= 2);

        let manifest = ext.manifest();
        let mut stores = Vec::new();
        ext.for_each_shard_store(|base, store| {
            let bytes = fungus_storage::encode_table(store);
            stores.push((base, fungus_storage::decode_table(bytes)?));
            Ok(())
        })
        .unwrap();
        let stores: Vec<TableStore> = stores.into_iter().map(|(_, s)| s).collect();
        let back = ShardedExtent::from_manifest(
            StorageConfig::for_tests(),
            &manifest,
            stores,
            &DeterministicRng::new(99),
        )
        .unwrap();
        assert_eq!(back.structure(), ext.structure());
        assert_eq!(back.shards_restored(), back.shard_count() as u64);
        // RNG streams re-derive identically.
        for (a, b) in ext.shards.iter().zip(back.shards.iter()) {
            assert_eq!(a.read().rng_seed(), b.read().rng_seed());
        }
        // And the restored extent behaves identically from here on.
        let mut back = back;
        let a = ext.evict_rotten();
        let b = back.evict_rotten();
        assert_eq!(
            a.iter().map(|t| t.meta.id).collect::<Vec<_>>(),
            b.iter().map(|t| t.meta.id).collect::<Vec<_>>()
        );
        assert_eq!(back.structure(), ext.structure());
    }

    #[test]
    fn from_manifest_rejects_mismatched_inputs() {
        let mut ext = adaptive(4, 0.0);
        fill(&mut ext, 10);
        let manifest = ext.manifest();
        // Too few stores.
        let err = ShardedExtent::from_manifest(
            StorageConfig::for_tests(),
            &manifest,
            Vec::new(),
            &DeterministicRng::new(99),
        );
        assert!(err.is_err());
        // Wrong-schema store.
        let other = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let stores: Vec<TableStore> = manifest
            .shards
            .iter()
            .map(|_| TableStore::new(other.clone(), StorageConfig::for_tests()).unwrap())
            .collect();
        let err = ShardedExtent::from_manifest(
            StorageConfig::for_tests(),
            &manifest,
            stores,
            &DeterministicRng::new(99),
        );
        assert!(err.is_err());
    }

    #[test]
    fn egi_rot_eventually_drops_whole_shards() {
        // Aggressive, age-focused rot on an old-heavy extent: the oldest
        // shard's tuples all rot while younger shards stay fresh, so the
        // O(1) drop path fires.
        let mut ext = sharded(10);
        for i in 0..100i64 {
            QueryExtent::insert(
                &mut ext,
                vec![Value::Int(i), Value::Float(0.0)],
                Tick(i as u64),
            )
            .unwrap();
        }
        let config = EgiConfig {
            seeds_per_tick: 4,
            seed_bias: SeedBias::AgePow(3.0),
            rot_rate: 0.5,
            spread_width: 3,
        };
        let mut egi = EgiFungus::new(config, &DeterministicRng::new(7));
        for t in 100..200u64 {
            egi.tick(&mut ext, Tick(t));
            ext.evict_rotten();
            if ext.shards_dropped() > 0 {
                break;
            }
        }
        assert!(ext.shards_dropped() > 0, "no whole-shard drop in 100 ticks");
    }
}
