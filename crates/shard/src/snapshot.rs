//! Sealed copy-on-write snapshots of a sharded extent.
//!
//! [`ExtentSnapshot`] is the read-only twin of [`ShardedExtent`]: the same
//! shard boundaries and summaries, but every store behind an `Arc` instead
//! of a lock. It implements [`ReadExtent`], so `execute_readonly` answers
//! `SELECT` (without `CONSUME`) against it with **no locks at all** —
//! readers holding a snapshot never contend with decay ticks or consumers
//! mutating the live extent.
//!
//! Determinism carries over unchanged: the snapshot's shards are visited
//! in id order and each scan is the same [`scan_store`] the live extent
//! runs, so a snapshot scan returns exactly the ids a locked scan of the
//! same logical state would. Whole-shard pruning uses the summary captured
//! at publish time (exactly the live summary of that moment), and pruned
//! shards feed the *shared* `shards_pruned` counter — snapshot reads and
//! locked reads accumulate into one gauge.
//!
//! [`ShardedExtent`]: crate::ShardedExtent

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fungus_query::{scan_store, LogicalPlan, MetaRanges, ReadExtent, ScanOutcome};
use fungus_storage::TableStore;
use fungus_types::{Result, Schema, Tick, Tuple, TupleId};

/// One shard's sealed state inside an [`ExtentSnapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotShard {
    /// The shard's store as of publish time (shared with the shard's
    /// copy-on-write cache until the live shard is next written).
    pub store: Arc<TableStore>,
    /// First id of the shard's range.
    pub base: u64,
    /// One past the highest id handed out at publish time.
    pub end: u64,
    /// The pruning summary as of publish time.
    pub ranges: MetaRanges,
}

/// A sealed, immutable view of a container extent at one epoch.
///
/// Cheap to clone (per-shard `Arc`s); dropping the last clone releases the
/// underlying stores unless the live shards' caches still hold them.
#[derive(Debug, Clone)]
pub struct ExtentSnapshot {
    schema: Schema,
    /// Snapshot shards in id order (`base` ascending, ranges disjoint).
    shards: Vec<SnapshotShard>,
    /// The owning extent's cumulative pruning gauge, shared so snapshot
    /// scans and locked scans count into the same diagnostic.
    pruned: Arc<AtomicU64>,
}

impl ExtentSnapshot {
    /// Assembles a snapshot from per-shard sealed states. `shards` must be
    /// in id order — the extent publishes them by walking its shard list.
    pub fn new(schema: Schema, shards: Vec<SnapshotShard>, pruned: Arc<AtomicU64>) -> Self {
        debug_assert!(shards.windows(2).all(|w| w[0].end <= w[1].base));
        ExtentSnapshot {
            schema,
            shards,
            pruned,
        }
    }

    /// A single-shard snapshot around one monolithic store (the container
    /// layouts without a [`ShardSpec`] publish through this).
    ///
    /// [`ShardSpec`]: crate::ShardSpec
    pub fn monolithic(schema: Schema, store: Arc<TableStore>) -> Self {
        let end = store.next_id().get();
        let shard = SnapshotShard {
            base: 0,
            end,
            // An envelope that cannot prune: monolithic extents have no
            // maintained summary, so the snapshot scans unconditionally
            // (matching the live mono scan, which has no shard pruning).
            ranges: MetaRanges {
                min_id: 0,
                max_id: end.saturating_sub(1),
                min_tick: 0,
                max_tick: u64::MAX,
                freshness_lo: 0.0,
                freshness_hi: 1.0,
            },
            store,
        };
        ExtentSnapshot {
            schema,
            shards: vec![shard],
            pruned: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Live tuples across the snapshot's shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(|s| s.store.live_count()).sum()
    }

    /// Number of shards captured at publish time.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The snapshot shard covering `id`, if any.
    fn locate(&self, id: TupleId) -> Option<&SnapshotShard> {
        let idx = self.shards.partition_point(|s| s.end <= id.get());
        let sh = self.shards.get(idx)?;
        (sh.base <= id.get()).then_some(sh)
    }
}

impl ReadExtent for ExtentSnapshot {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome> {
        let mut out = ScanOutcome::default();
        for sh in &self.shards {
            if sh.store.live_count() == 0 {
                continue;
            }
            if !plan.pruning.shard_may_match(&sh.ranges, now) {
                out.pruned_shards += 1;
                continue;
            }
            let s = scan_store(&sh.store, plan, now)?;
            out.matched.extend(s.matched);
            out.scanned += s.scanned;
            out.pruned_segments += s.pruned_segments;
            out.used_index |= s.used_index;
        }
        self.pruned
            .fetch_add(out.pruned_shards as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn peek(&self, id: TupleId) -> Option<&Tuple> {
        self.locate(id)?.store.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_storage::StorageConfig;
    use fungus_types::{DataType, Value};

    #[test]
    fn monolithic_snapshot_answers_point_reads() {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let mut store = TableStore::new(schema.clone(), StorageConfig::for_tests()).unwrap();
        for i in 0..5i64 {
            store.insert(vec![Value::Int(i)], Tick(i as u64)).unwrap();
        }
        let snap = ExtentSnapshot::monolithic(schema, Arc::new(store));
        assert_eq!(snap.live_count(), 5);
        assert_eq!(
            snap.peek(TupleId(3)).unwrap().values[0],
            Value::Int(3),
            "point read resolves through the single shard"
        );
        assert!(snap.peek(TupleId(5)).is_none());
    }
}
