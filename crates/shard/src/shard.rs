//! One time-range shard: a [`TableStore`] plus summary bounds.
//!
//! A shard owns a contiguous tuple-id range `[base, base + capacity)` —
//! ids are insertion-ordered, so this is a contiguous slice of the time
//! axis. Alongside the store it keeps the conservative summary the extent
//! prunes and schedules with: min/max insertion tick, a freshness
//! envelope, and a dirty flag set by any freshness mutation since the last
//! eviction pass.
//!
//! The freshness envelope is maintained *incrementally* and is only ever
//! loose, never wrong: inserts raise the upper bound to 1.0, every decay
//! result lowers the lower bound, and an eviction pass over a dirty shard
//! recomputes both exactly. Loose bounds cost pruning opportunities, not
//! correctness.

use std::sync::Arc;

use fungus_query::MetaRanges;
use fungus_storage::{StorageConfig, TableStore};
use fungus_types::{Result, Schema, Tick};

/// A single time-range shard of a container extent.
#[derive(Debug)]
pub struct Shard {
    store: TableStore,
    base: u64,
    capacity: u64,
    rng_seed: u64,
    dirty: bool,
    freshness_lo: f64,
    freshness_hi: f64,
    min_tick: u64,
    max_tick: u64,
    /// Copy-on-write cache for MVCC snapshot publication: a sealed copy of
    /// `store` as of the last publish, invalidated by any mutable store
    /// access. A clean shard re-publishes the same `Arc` for free; only
    /// shards written since the last epoch pay the clone.
    snap_cache: Option<Arc<TableStore>>,
}

impl Shard {
    /// An empty shard owning ids `[base, base + capacity)`.
    pub fn new(
        schema: Schema,
        config: StorageConfig,
        base: u64,
        capacity: u64,
        rng_seed: u64,
    ) -> Result<Shard> {
        let store = TableStore::with_base(schema, config, fungus_types::TupleId(base))?;
        Ok(Shard {
            store,
            base,
            capacity,
            rng_seed,
            dirty: false,
            freshness_lo: 1.0,
            freshness_hi: 0.0,
            min_tick: u64::MAX,
            max_tick: 0,
            snap_cache: None,
        })
    }

    /// Read access to the backing store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// Mutable access to the backing store. Invalidates the snapshot
    /// cache: the next publish will clone the mutated store.
    pub fn store_mut(&mut self) -> &mut TableStore {
        self.snap_cache = None;
        &mut self.store
    }

    /// The shard's sealed snapshot store for MVCC publication: a clone of
    /// the backing store as of now, cached until the next mutable access
    /// so consecutive publishes of a clean shard share one copy.
    pub fn snapshot_store(&mut self) -> Arc<TableStore> {
        self.snap_cache
            .get_or_insert_with(|| Arc::new(self.store.clone()))
            .clone()
    }

    /// Consumes the shard, yielding the backing store (whole-shard drop).
    pub fn into_store(self) -> TableStore {
        self.store
    }

    /// Rebuilds a shard from previously saved parts: a restored store plus
    /// the exact summary state (dirty flag, freshness envelope, tick range)
    /// recorded when the shard was saved. The fields are installed
    /// verbatim — no normalisation — so a restored shard is structurally
    /// identical to the one that was checkpointed. Also used by the merge
    /// path, which unions two exact envelopes (still exact: min/max of
    /// per-shard minima/maxima over a disjoint union).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        store: TableStore,
        base: u64,
        capacity: u64,
        rng_seed: u64,
        dirty: bool,
        freshness_lo: f64,
        freshness_hi: f64,
        min_tick: u64,
        max_tick: u64,
    ) -> Result<Shard> {
        let next = store.next_id().get();
        if next < base || next - base > capacity {
            return Err(fungus_types::FungusError::CorruptSnapshot(format!(
                "shard store ids [{base}, {next}) do not fit capacity {capacity}"
            )));
        }
        Ok(Shard {
            store,
            base,
            capacity,
            rng_seed,
            dirty,
            freshness_lo,
            freshness_hi,
            min_tick,
            max_tick,
            snap_cache: None,
        })
    }

    /// First id of this shard's range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Width of the shard's id range (the shard seals once it has handed
    /// out this many ids).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// One past the highest id handed out so far.
    pub fn end(&self) -> u64 {
        self.store.next_id().get()
    }

    /// Ids allocated so far (live + tombstoned).
    pub fn allocated(&self) -> u64 {
        self.end() - self.base
    }

    /// Whether the shard has handed out its full id range; sealed shards
    /// never receive another insert.
    pub fn is_sealed(&self) -> bool {
        self.allocated() >= self.capacity
    }

    /// Seals the shard at its current allocation (the adaptive split: the
    /// tail stops growing here and the next insert opens a fresh shard).
    /// The shard must have allocated at least one id — a zero-width shard
    /// would alias its successor's base.
    pub fn seal_now(&mut self) {
        debug_assert!(self.allocated() > 0, "cannot seal an empty shard");
        self.capacity = self.allocated();
    }

    /// The seed of this shard's RNG stream, split from the container RNG
    /// by shard base — stable across runs and across shard drops, so any
    /// shard-local randomness (e.g. maintenance jitter) is reproducible
    /// regardless of how many shards exist around it. The equivalence-
    /// critical draws (EGI seeding) deliberately do *not* use it; they
    /// stay on the container's single stream.
    pub fn rng_seed(&self) -> u64 {
        self.rng_seed
    }

    /// Whether any freshness has changed since the last eviction pass.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the shard dirty (some tuple's decay state changed).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Records an insert at `now`: fresh tuple, so the freshness upper
    /// bound snaps to 1.0 and the tick range widens to include `now`.
    pub fn note_insert(&mut self, now: Tick) {
        self.freshness_hi = 1.0;
        if self.freshness_lo > 1.0 {
            self.freshness_lo = 1.0;
        }
        self.min_tick = self.min_tick.min(now.get());
        self.max_tick = self.max_tick.max(now.get());
    }

    /// Records a decay/scale result: the lower freshness bound can only
    /// move down between recomputes.
    pub fn note_freshness(&mut self, freshness: f64) {
        self.freshness_lo = self.freshness_lo.min(freshness);
        self.dirty = true;
    }

    /// Recomputes the exact summary from live tuples and clears the dirty
    /// flag. Called at the end of an eviction pass, when the shard has
    /// just been scanned anyway.
    pub fn recompute_bounds(&mut self) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut min_tick = u64::MAX;
        let mut max_tick = 0u64;
        for t in self.store.iter_live() {
            let f = t.meta.freshness.get();
            lo = lo.min(f);
            hi = hi.max(f);
            min_tick = min_tick.min(t.meta.inserted_at.get());
            max_tick = max_tick.max(t.meta.inserted_at.get());
        }
        if lo.is_finite() {
            self.freshness_lo = lo;
            self.freshness_hi = hi;
        } else {
            // Empty shard: an inverted envelope that cannot satisfy any
            // bound; scans skip empty shards before consulting it.
            self.freshness_lo = 1.0;
            self.freshness_hi = 0.0;
        }
        self.min_tick = min_tick;
        self.max_tick = max_tick;
        self.dirty = false;
    }

    /// Installs an exact summary computed by the caller (the eviction pass
    /// folds this into its detection sweep so a dirty shard is scanned
    /// once, not twice) and clears the dirty flag. Callers pass the
    /// accumulator identities (`lo = ∞`, `hi = −∞`) for an emptied shard;
    /// the envelope then inverts exactly as [`recompute_bounds`] would.
    ///
    /// [`recompute_bounds`]: Self::recompute_bounds
    pub fn set_bounds(&mut self, lo: f64, hi: f64, min_tick: u64, max_tick: u64) {
        if lo.is_finite() {
            self.freshness_lo = lo;
            self.freshness_hi = hi;
        } else {
            self.freshness_lo = 1.0;
            self.freshness_hi = 0.0;
        }
        self.min_tick = min_tick;
        self.max_tick = max_tick;
        self.dirty = false;
    }

    /// The conservative summary used for whole-shard pruning.
    pub fn ranges(&self) -> MetaRanges {
        MetaRanges {
            min_id: self.base,
            max_id: self.end().saturating_sub(1),
            min_tick: self.min_tick,
            max_tick: self.max_tick,
            freshness_lo: self.freshness_lo,
            freshness_hi: self.freshness_hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_types::{DataType, TupleId, Value};

    fn shard() -> Shard {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        Shard::new(schema, StorageConfig::for_tests(), 100, 16, 7).unwrap()
    }

    #[test]
    fn ids_start_at_base_and_seal_at_capacity() {
        let mut s = shard();
        assert_eq!(s.allocated(), 0);
        assert!(!s.is_sealed());
        for i in 0..16i64 {
            let id = s
                .store_mut()
                .insert(vec![Value::Int(i)], Tick(i as u64))
                .unwrap();
            s.note_insert(Tick(i as u64));
            assert_eq!(id, TupleId(100 + i as u64));
        }
        assert!(s.is_sealed());
        assert_eq!(s.end(), 116);
        let r = s.ranges();
        assert_eq!((r.min_id, r.max_id), (100, 115));
        assert_eq!((r.min_tick, r.max_tick), (0, 15));
    }

    #[test]
    fn freshness_envelope_stays_conservative() {
        let mut s = shard();
        for i in 0..4i64 {
            s.store_mut().insert(vec![Value::Int(i)], Tick(1)).unwrap();
            s.note_insert(Tick(1));
        }
        assert!(!s.dirty());
        let f = s.store_mut().decay(TupleId(101), 0.7).unwrap();
        s.note_freshness(f.get());
        assert!(s.dirty());
        let r = s.ranges();
        assert!(r.freshness_lo <= 0.3 + 1e-12);
        assert_eq!(r.freshness_hi, 1.0);

        s.recompute_bounds();
        assert!(!s.dirty());
        let r = s.ranges();
        assert!((r.freshness_lo - 0.3).abs() < 1e-12);
        assert_eq!(r.freshness_hi, 1.0);
    }

    #[test]
    fn recompute_on_empty_shard_inverts_envelope() {
        let mut s = shard();
        s.recompute_bounds();
        let r = s.ranges();
        assert!(r.freshness_lo > r.freshness_hi);
    }
}
