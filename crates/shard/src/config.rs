//! Shard layout configuration.

use serde::{Deserialize, Serialize};

use fungus_types::{FungusError, Result};

/// How a container's extent is split into time-range shards.
///
/// Shards are cut along the insertion (time) axis: the first
/// `rows_per_shard` tuple ids land in shard 0, the next in shard 1, and so
/// on. A shard that has handed out its full id range is *sealed*; only the
/// tail shard accepts inserts. The split is a function of ids alone, so
/// the same workload produces the same shard boundaries on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Tuple ids per shard (the time-range width of one shard).
    pub rows_per_shard: u64,
    /// Worker threads for fan-out (decay ticks, parallel scans).
    /// `None` picks the machine's available parallelism; `Some(1)` runs
    /// every fan-out inline on the calling thread.
    #[serde(default)]
    pub workers: Option<usize>,
}

impl ShardSpec {
    /// A spec splitting every `rows_per_shard` inserted rows.
    pub fn new(rows_per_shard: u64) -> Self {
        ShardSpec {
            rows_per_shard,
            workers: None,
        }
    }

    /// Sets an explicit fan-out worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<()> {
        if self.rows_per_shard == 0 {
            return Err(FungusError::InvalidConfig(
                "rows_per_shard must be at least 1".into(),
            ));
        }
        if self.workers == Some(0) {
            return Err(FungusError::InvalidConfig(
                "shard workers must be at least 1 when set".into(),
            ));
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            rows_per_shard: 4096,
            workers: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(ShardSpec::new(0).validate().is_err());
        assert!(ShardSpec::new(16).with_workers(0).validate().is_err());
        assert!(ShardSpec::new(16).validate().is_ok());
        assert!(ShardSpec::default().validate().is_ok());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ShardSpec::new(128).with_workers(4);
        let json = fungus_types::json::to_string(&spec).unwrap();
        let back: ShardSpec = fungus_types::json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // `workers` is optional on the wire.
        let bare: ShardSpec = fungus_types::json::from_str(r#"{"rows_per_shard":7}"#).unwrap();
        assert_eq!(bare, ShardSpec::new(7));
    }
}
