//! Shard layout configuration.

use serde::{Deserialize, Serialize};

use fungus_types::{FungusError, Result};

fn default_low_water() -> f64 {
    0.25
}

/// How a container's extent is split into time-range shards.
///
/// Shards are cut along the insertion (time) axis: the first
/// `rows_per_shard` tuple ids land in shard 0, the next in shard 1, and so
/// on. A shard that has handed out its full id range is *sealed*; only the
/// tail shard accepts inserts. The split is a function of ids alone, so
/// the same workload produces the same shard boundaries on every run.
///
/// With `adaptive` enabled the boundaries follow live-count drift instead
/// of staying fixed: each eviction sweep seals the tail early when the
/// observed insert rate would blow past the `rows_per_shard` row budget
/// before the next sweep, and merges a sealed shard whose live count fell
/// below `low_water · rows_per_shard` into its time-adjacent neighbor.
/// Boundaries remain a pure function of the operation history (inserts
/// and sweep timing), so adaptive runs are exactly as reproducible as
/// fixed ones — and observationally identical to a monolithic store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Tuple ids per shard (the time-range width of one shard). Under
    /// `adaptive` this is the high-water row budget a tail shard may not
    /// outgrow between eviction sweeps.
    pub rows_per_shard: u64,
    /// Worker threads for fan-out (decay ticks, parallel scans).
    /// `None` picks the machine's available parallelism; `Some(1)` runs
    /// every fan-out inline on the calling thread.
    #[serde(default)]
    pub workers: Option<usize>,
    /// Enables the adaptive shard lifecycle (early tail seals under insert
    /// pressure, low-water merges of hollowed-out sealed shards).
    #[serde(default)]
    pub adaptive: bool,
    /// Live fraction of `rows_per_shard` below which a sealed shard is
    /// merge-eligible. Only consulted when `adaptive` is on.
    #[serde(default = "default_low_water")]
    pub low_water: f64,
}

impl ShardSpec {
    /// A spec splitting every `rows_per_shard` inserted rows.
    pub fn new(rows_per_shard: u64) -> Self {
        ShardSpec {
            rows_per_shard,
            workers: None,
            adaptive: false,
            low_water: default_low_water(),
        }
    }

    /// Sets an explicit fan-out worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Turns on the adaptive shard lifecycle (split/merge on live-count
    /// drift, driven by the eviction sweep).
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Sets the low-water merge fraction (and implies nothing else:
    /// combine with [`with_adaptive`](Self::with_adaptive) to activate
    /// merging).
    pub fn with_low_water(mut self, low_water: f64) -> Self {
        self.low_water = low_water;
        self
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<()> {
        if self.rows_per_shard == 0 {
            return Err(FungusError::InvalidConfig(
                "rows_per_shard must be at least 1".into(),
            ));
        }
        if self.workers == Some(0) {
            return Err(FungusError::InvalidConfig(
                "shard workers must be at least 1 when set".into(),
            ));
        }
        if !self.low_water.is_finite() || self.low_water < 0.0 || self.low_water >= 1.0 {
            return Err(FungusError::InvalidConfig(format!(
                "shard low_water must be in [0, 1), got {}",
                self.low_water
            )));
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            rows_per_shard: 4096,
            workers: None,
            adaptive: false,
            low_water: default_low_water(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(ShardSpec::new(0).validate().is_err());
        assert!(ShardSpec::new(16).with_workers(0).validate().is_err());
        assert!(ShardSpec::new(16).with_low_water(1.0).validate().is_err());
        assert!(ShardSpec::new(16).with_low_water(-0.1).validate().is_err());
        assert!(ShardSpec::new(16)
            .with_low_water(f64::NAN)
            .validate()
            .is_err());
        assert!(ShardSpec::new(16).validate().is_ok());
        assert!(ShardSpec::new(16)
            .with_adaptive()
            .with_low_water(0.5)
            .validate()
            .is_ok());
        assert!(ShardSpec::default().validate().is_ok());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ShardSpec::new(128).with_workers(4);
        let json = fungus_types::json::to_string(&spec).unwrap();
        let back: ShardSpec = fungus_types::json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        let spec = ShardSpec::new(64).with_adaptive().with_low_water(0.4);
        let json = fungus_types::json::to_string(&spec).unwrap();
        let back: ShardSpec = fungus_types::json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // `workers` and the adaptive knobs are optional on the wire, so
        // pre-adaptive policies parse unchanged.
        let bare: ShardSpec = fungus_types::json::from_str(r#"{"rows_per_shard":7}"#).unwrap();
        assert_eq!(bare, ShardSpec::new(7));
        assert!(!bare.adaptive);
        assert_eq!(bare.low_water, 0.25);
    }
}
