//! # fungus-shard
//!
//! Time-range sharded container extents. A relation's extent becomes an
//! ordered set of **shards** — contiguous slices of the insertion-time
//! axis — each behind its own lock with its own freshness/zone summary:
//!
//! - **Pruning:** scans skip whole shards via per-shard min/max tick, id,
//!   and freshness bounds before touching tuples (segment zone maps still
//!   apply inside surviving shards).
//! - **Decay fan-out:** eviction detection and candidate gathers run one
//!   task per shard on a work-stealing [`ShardPool`]; clean shards are
//!   skipped outright via per-shard dirty flags.
//! - **O(1) rot drops:** a shard whose live tuples have all rotted is
//!   detached whole — one id-range gap — instead of being tombstoned
//!   tuple by tuple and compacted later.
//! - **Adaptive lifecycle:** with [`ShardSpec::adaptive`] on, each
//!   eviction sweep seals the tail early under insert pressure and merges
//!   hollowed-out sealed neighbors below a low-water live fraction —
//!   boundaries follow live-count drift while staying a pure function of
//!   the operation history.
//! - **Determinism:** EGI seed selection stays globally age-weighted on
//!   the container's single RNG stream over the id-ordered candidate
//!   list, and spread stays local along the time axis, so a sharded
//!   extent is bit-for-bit equivalent to a monolithic one under the same
//!   seed — for *any* shard count. Per-shard RNG streams are split from
//!   the container RNG by shard base and reserved for shard-local
//!   randomness that must not depend on layout history.
//!
//! See [`ShardedExtent`] for the equivalence contract and the cost-model
//! differences (which are the point of sharding).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod extent;
pub mod pool;
pub mod shard;
pub mod snapshot;

pub use config::ShardSpec;
pub use extent::{
    DroppedRangeManifest, ShardLayoutManifest, ShardManifest, ShardRecord, ShardStructure,
    ShardedExtent,
};
pub use pool::ShardPool;
pub use shard::Shard;
pub use snapshot::{ExtentSnapshot, SnapshotShard};
