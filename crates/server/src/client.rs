//! A blocking client for the wire protocol.
//!
//! One [`Client`] is one TCP connection and therefore one server-side
//! session. Requests are strictly pipelined one at a time: send a frame,
//! block for the response frame. That keeps the client trivially correct
//! under threading (each load-generator thread owns its own client) and
//! matches the server's one-connection-per-worker model.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use fungus_types::FungusError;

use crate::frame::{self, FrameError};
use crate::protocol::{Request, Response};

/// Client-side failures, keeping transport and protocol errors apart.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Socket/framing failure — the connection is dead.
    Frame(FrameError),
    /// The payload did not decode as a [`Response`].
    Protocol(String),
    /// The server hung up where a response was due.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<FungusError> for ClientError {
    fn from(e: FungusError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A blocking connection to a fungus server.
pub struct Client {
    stream: TcpStream,
    requests: u64,
}

impl Client {
    /// Connects with default timeouts (10 s connect, 30 s response).
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(10), Duration::from_secs(30))
    }

    /// Connects with explicit connect and response timeouts.
    pub fn connect_with(
        addr: SocketAddr,
        connect_timeout: Duration,
        response_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)
            .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
        stream
            .set_read_timeout(Some(response_timeout))
            .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
        stream
            .set_write_timeout(Some(response_timeout))
            .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            requests: 0,
        })
    }

    /// Requests sent on this connection.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        frame::write_frame(&mut self.stream, &payload)?;
        self.requests += 1;
        match frame::read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Runs one SQL statement.
    pub fn sql(&mut self, text: impl Into<String>) -> Result<Response, ClientError> {
        self.request(&Request::Sql { text: text.into() })
    }

    /// Runs one dot command (`.tick`, `.health`, …).
    pub fn dot(&mut self, line: impl Into<String>) -> Result<Response, ClientError> {
        self.request(&Request::Dot { line: line.into() })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Closes the connection (half-close; the server sees EOF and ends
    /// the session). Dropping the client does the same implicitly.
    pub fn close(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
