//! A blocking client for the wire protocol, with an optional retry
//! policy for surviving faulty networks.
//!
//! One [`Client`] is one TCP connection and therefore one server-side
//! session. Requests are strictly pipelined one at a time: send a frame,
//! block for the response frame. That keeps the client trivially correct
//! under threading (each load-generator thread owns its own client) and
//! matches the server's one-connection-per-worker model.
//!
//! # Retry semantics
//!
//! With a [`RetryPolicy`] installed, a transport failure (torn frame,
//! reset, timeout, server hangup) is retried by reconnecting and
//! resending — but **only for idempotent requests**
//! ([`Request::is_idempotent`]). The dangerous case is the ambiguous
//! failure: the connection died *after* the request was sent but
//! *before* the response arrived, so the client cannot know whether the
//! server executed it. Replaying a `SELECT` there is harmless; replaying
//! a `CONSUME` query could destroy a second batch of tuples, and
//! replaying an `INSERT` could double-write. Those requests fail fast
//! with the transport error, the connection is marked broken, and the
//! *next* request starts by reconnecting (reconnection itself is always
//! safe — nothing is in flight).
//!
//! Backoff is bounded exponential with seeded jitter: delays are
//! monotone non-decreasing up to the cap, the attempt budget is hard,
//! and the same seed replays the same delays — so a chaos run is as
//! reproducible on the client side as the server's fault plan makes the
//! other side.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fungus_types::FungusError;

use crate::frame::{self, FrameError};
use crate::protocol::{Request, Response};

/// Client-side failures, keeping transport and protocol errors apart.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Socket/framing failure — the connection is dead.
    Frame(FrameError),
    /// The payload did not decode as a [`Response`].
    Protocol(String),
    /// The server hung up where a response was due.
    Disconnected,
    /// Every attempt the retry budget allowed failed; the last transport
    /// error is inside.
    RetriesExhausted {
        /// Attempts made (the first try included).
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-request"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<FungusError> for ClientError {
    fn from(e: FungusError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

impl ClientError {
    /// True for failures of the *transport* (dead socket, torn frame,
    /// hangup) — the class a retry can help with. Protocol errors mean
    /// both ends disagree about the bytes and retrying cannot fix that.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Frame(_) | ClientError::Disconnected)
    }
}

/// Bounded exponential backoff with seeded jitter.
///
/// Delay `i` (0-based, between attempt `i+1` and `i+2`) is
/// `min(cap, base·2^i + jitter_i)` with `jitter_i` drawn uniformly from
/// `[0, base)` by a `SmallRng` seeded from `seed`. Because
/// `base·2^(i+1) ≥ base·2^i + base > base·2^i + jitter_i`, the raw
/// sequence strictly increases, and clamping to the cap preserves
/// monotonicity — properties the retry property test pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    seed: u64,
    max_attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
}

impl RetryPolicy {
    /// A policy with the default budget: 4 attempts, 5 ms base delay,
    /// 80 ms cap, jitter seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            seed,
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
        }
    }

    /// Total attempt budget, first try included (min 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// First-retry delay (also the jitter magnitude).
    #[must_use]
    pub fn with_base_delay(mut self, base: Duration) -> Self {
        self.base_delay = base;
        self
    }

    /// Upper bound every delay is clamped to.
    #[must_use]
    pub fn with_max_delay(mut self, cap: Duration) -> Self {
        self.max_delay = cap;
        self
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The attempt budget.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The full jittered backoff schedule: one delay per retry, so
    /// `max_attempts - 1` entries. Deterministic in `seed`.
    pub fn backoff_delays(&self) -> Vec<Duration> {
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ 0xC1A0_5C1A_0FAE_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let base = self.base_delay.as_nanos() as u64;
        let cap = self.max_delay.as_nanos() as u64;
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let jitter = if base > 0 { rng.gen_range(0..base) } else { 0 };
                let raw = base.saturating_mul(1u64.checked_shl(i).unwrap_or(u64::MAX));
                Duration::from_nanos(raw.saturating_add(jitter).min(cap))
            })
            .collect()
    }
}

/// Counters a [`Client`] keeps about its own fight with the transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests issued by the caller (not counting retries).
    pub requests: u64,
    /// Transport errors observed (before any retry verdict).
    pub transport_errors: u64,
    /// Resends of an idempotent request after a transport error.
    pub retries: u64,
    /// Fresh TCP connections established after the first.
    pub reconnects: u64,
    /// Transport failures surfaced unretried because the request was not
    /// idempotent (the ambiguous-failure guard firing).
    pub not_retried: u64,
}

/// A blocking connection to a fungus server.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    connect_timeout: Duration,
    response_timeout: Duration,
    policy: Option<RetryPolicy>,
    broken: bool,
    stats: ClientStats,
}

impl Client {
    /// Connects with default timeouts (10 s connect, 30 s response).
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(10), Duration::from_secs(30))
    }

    /// Connects with explicit connect and response timeouts.
    pub fn connect_with(
        addr: SocketAddr,
        connect_timeout: Duration,
        response_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = open_stream(addr, connect_timeout, response_timeout)?;
        Ok(Client {
            stream,
            addr,
            connect_timeout,
            response_timeout,
            policy: None,
            broken: false,
            stats: ClientStats::default(),
        })
    }

    /// Connects with default timeouts and the given retry policy.
    pub fn connect_with_retry(
        addr: SocketAddr,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        Ok(Client::connect(addr)?.with_retry(policy))
    }

    /// Installs (or replaces) the retry policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Requests issued on this connection (retries not counted).
    pub fn requests(&self) -> u64 {
        self.stats.requests
    }

    /// The client's transport-fight counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Sends one request and blocks for its response, applying the retry
    /// policy (if any) to idempotent requests.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.stats.requests += 1;
        // A previous request broke the connection: re-establish before
        // sending. Always safe — nothing of ours is in flight.
        if self.broken {
            self.reconnect()?;
        }
        match self.send_and_receive(request) {
            Ok(resp) => Ok(resp),
            Err(err) if err.is_transport() => {
                self.stats.transport_errors += 1;
                self.broken = true;
                match self.policy {
                    Some(policy) if request.is_idempotent() => {
                        self.retry_loop(request, policy, err)
                    }
                    Some(_) | None => {
                        if self.policy.is_some() {
                            self.stats.not_retried += 1;
                        }
                        Err(err)
                    }
                }
            }
            Err(err) => Err(err),
        }
    }

    fn retry_loop(
        &mut self,
        request: &Request,
        policy: RetryPolicy,
        first_error: ClientError,
    ) -> Result<Response, ClientError> {
        let mut last = first_error;
        let mut attempts = 1u32;
        for delay in policy.backoff_delays() {
            std::thread::sleep(delay);
            attempts += 1;
            self.stats.retries += 1;
            if let Err(e) = self.reconnect() {
                last = e;
                continue;
            }
            match self.send_and_receive(request) {
                Ok(resp) => {
                    self.broken = false;
                    return Ok(resp);
                }
                Err(err) if err.is_transport() => {
                    self.stats.transport_errors += 1;
                    self.broken = true;
                    last = err;
                }
                Err(err) => return Err(err),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        })
    }

    fn send_and_receive(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        frame::write_frame(&mut self.stream, &payload)?;
        match frame::read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = open_stream(self.addr, self.connect_timeout, self.response_timeout)?;
        self.stream = stream;
        self.broken = false;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Runs one SQL statement.
    pub fn sql(&mut self, text: impl Into<String>) -> Result<Response, ClientError> {
        self.request(&Request::Sql { text: text.into() })
    }

    /// Runs one dot command (`.tick`, `.health`, `.stats`, …).
    pub fn dot(&mut self, line: impl Into<String>) -> Result<Response, ClientError> {
        self.request(&Request::Dot { line: line.into() })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Closes the connection (half-close; the server sees EOF and ends
    /// the session). Dropping the client does the same implicitly.
    pub fn close(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

fn open_stream(
    addr: SocketAddr,
    connect_timeout: Duration,
    response_timeout: Duration,
) -> Result<TcpStream, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
    stream
        .set_read_timeout(Some(response_timeout))
        .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
    stream
        .set_write_timeout(Some(response_timeout))
        .map_err(|e| ClientError::Frame(FrameError::Io(e.to_string())))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_bounded_and_reproducible() {
        let policy = RetryPolicy::new(11)
            .with_max_attempts(7)
            .with_base_delay(Duration::from_millis(2))
            .with_max_delay(Duration::from_millis(20));
        let delays = policy.backoff_delays();
        assert_eq!(delays.len(), 6);
        for pair in delays.windows(2) {
            assert!(pair[0] <= pair[1], "{delays:?} not monotone");
        }
        assert!(delays.iter().all(|d| *d <= Duration::from_millis(20)));
        assert_eq!(delays, policy.backoff_delays(), "same seed, same delays");
        let other = RetryPolicy::new(12)
            .with_max_attempts(7)
            .with_base_delay(Duration::from_millis(2))
            .with_max_delay(Duration::from_millis(20));
        assert_ne!(delays, other.backoff_delays(), "seed changes jitter");
    }

    #[test]
    fn single_attempt_budget_means_no_delays() {
        assert!(RetryPolicy::new(1)
            .with_max_attempts(1)
            .backoff_delays()
            .is_empty());
        // with_max_attempts clamps zero to one.
        assert_eq!(RetryPolicy::new(1).with_max_attempts(0).max_attempts(), 1);
    }

    #[test]
    fn transport_classification() {
        assert!(ClientError::Disconnected.is_transport());
        assert!(ClientError::Frame(FrameError::Io("reset".into())).is_transport());
        assert!(!ClientError::Protocol("bad json".into()).is_transport());
        assert!(!ClientError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ClientError::Disconnected),
        }
        .is_transport());
    }
}
