//! Deterministic fault injection for the server stack.
//!
//! The paper's Law 1 says decay proceeds on its periodic clock no matter
//! what clients do — which is only worth claiming if the maintenance path
//! demonstrably survives the faults real deployments throw at it:
//! half-written frames, connections torn down mid-request, readers that
//! stall, workers that die. This module makes those faults *injectable,
//! seeded, and reproducible*, so the chaos suite can assert the exact
//! same failure schedule on every run:
//!
//! * [`FaultPlan`] — the seeded recipe: per-operation probabilities for
//!   each fault class plus a scheduled worker panic. A plan is pure
//!   configuration; it derives one independent, deterministic
//!   [`FaultSchedule`] per connection id (same plan + same id ⇒ the same
//!   faults at the same byte offsets, regardless of what other
//!   connections do).
//! * [`FaultSchedule`] — the per-connection stream of fault decisions,
//!   drawn from a `SmallRng` seeded by `splitmix(plan seed, conn id)`.
//! * [`Faulty`] — a `Read + Write` wrapper that consults the schedule on
//!   every I/O call and injects: transient `WouldBlock`/`Interrupted`
//!   errors, read delays, torn writes (a prefix of the buffer is written,
//!   then the stream dies), and mid-frame disconnects. Once a schedule
//!   kills a stream it stays dead — exactly like a real socket.
//!
//! The wrapper composes with anything: the server wraps accepted
//! `TcpStream`s when a plan is configured, and the property tests wrap
//! in-memory cursors to drive the frame decoder through millions of
//! fault interleavings without a socket in sight. When no plan is
//! configured the server does not wrap at all, so the fault layer costs
//! nothing in the fast path.

use std::io::{self, Read, Write};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One injected fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Write only a prefix of the buffer, then kill the stream: the peer
    /// sees a frame cut off mid-payload.
    TornWrite,
    /// Kill the stream now: reads see EOF, writes see `BrokenPipe`.
    Disconnect,
    /// Stall a read briefly before serving it (slow network).
    Delay,
    /// Return `ErrorKind::WouldBlock` once (spurious poll wake-up /
    /// socket timeout slice).
    WouldBlock,
    /// Return `ErrorKind::Interrupted` once (signal during a syscall).
    Interrupted,
}

/// The seeded fault recipe installed on a server (or a test harness).
///
/// All knobs are per-I/O-call probabilities in `[0, 1]`. The default plan
/// injects nothing; [`FaultPlan::chaos`] is the standard chaos-suite
/// recipe (5% torn writes, 2% disconnects, transient errors, one worker
/// panic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    torn_write: f64,
    disconnect: f64,
    delay: f64,
    max_delay: Duration,
    transient: f64,
    panic_conns: Vec<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_write: 0.0,
            disconnect: 0.0,
            delay: 0.0,
            max_delay: Duration::from_millis(2),
            transient: 0.0,
            panic_conns: Vec::new(),
        }
    }

    /// The standard chaos recipe the integration suite and `serve
    /// --fault-seed` run: 5% torn writes, 2% mid-frame disconnects, 5%
    /// transient `WouldBlock`/`Interrupted`, 2% short read delays, and a
    /// worker panic while handling connection 3.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::new(seed)
            .with_torn_writes(0.05)
            .with_disconnects(0.02)
            .with_transients(0.05)
            .with_read_delays(0.02, Duration::from_millis(2))
            .with_worker_panic_on(3)
    }

    /// The plan's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability that a write call tears (prefix written, stream dies).
    #[must_use]
    pub fn with_torn_writes(mut self, p: f64) -> Self {
        self.torn_write = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that an I/O call kills the stream outright.
    #[must_use]
    pub fn with_disconnects(mut self, p: f64) -> Self {
        self.disconnect = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a read stalls, and the longest stall injected.
    #[must_use]
    pub fn with_read_delays(mut self, p: f64, max_delay: Duration) -> Self {
        self.delay = p.clamp(0.0, 1.0);
        self.max_delay = max_delay;
        self
    }

    /// Probability of a transient error (`WouldBlock` or `Interrupted`,
    /// split evenly) per I/O call.
    #[must_use]
    pub fn with_transients(mut self, p: f64) -> Self {
        self.transient = p.clamp(0.0, 1.0);
        self
    }

    /// Panics the worker thread that picks up connection `conn` (1-based
    /// session id). May be called repeatedly to doom several connections.
    #[must_use]
    pub fn with_worker_panic_on(mut self, conn: u64) -> Self {
        self.panic_conns.push(conn);
        self
    }

    /// True when the plan can inject any stream fault at all (a plan that
    /// only schedules worker panics does not need stream wrapping).
    pub fn wraps_streams(&self) -> bool {
        self.torn_write > 0.0 || self.disconnect > 0.0 || self.delay > 0.0 || self.transient > 0.0
    }

    /// The deterministic schedule for one connection. Independent of
    /// every other connection: the schedule's RNG is seeded from
    /// `splitmix(plan seed ⊕ conn id)`.
    pub fn schedule_for(&self, conn: u64) -> FaultSchedule {
        // splitmix64 over seed ⊕ rotated id: decorrelates neighbouring
        // connection ids without correlating across plans.
        let mut z = self
            .seed
            .wrapping_add(conn.rotate_left(32))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultSchedule {
            rng: SmallRng::seed_from_u64(z ^ (z >> 31)),
            plan: self.clone(),
            panic_worker: self.panic_conns.contains(&conn),
            injected: 0,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// The per-connection fault stream drawn from a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultSchedule {
    rng: SmallRng,
    plan: FaultPlan,
    panic_worker: bool,
    injected: u64,
}

impl FaultSchedule {
    /// A schedule that never injects anything (for tests that want the
    /// wrapper in place but quiet).
    pub fn quiet() -> Self {
        FaultPlan::new(0).schedule_for(0)
    }

    /// Whether the worker handling this connection is scheduled to die.
    pub fn panics_worker(&self) -> bool {
        self.panic_worker
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Draws the fault (if any) for the next read call.
    pub fn next_read_fault(&mut self) -> Option<Fault> {
        if self.roll(self.plan.disconnect) {
            return self.record(Fault::Disconnect);
        }
        if self.roll(self.plan.transient) {
            let f = if self.rng.gen::<bool>() {
                Fault::WouldBlock
            } else {
                Fault::Interrupted
            };
            return self.record(f);
        }
        if self.roll(self.plan.delay) {
            return self.record(Fault::Delay);
        }
        None
    }

    /// Draws the fault (if any) for the next write call.
    pub fn next_write_fault(&mut self) -> Option<Fault> {
        if self.roll(self.plan.torn_write) {
            return self.record(Fault::TornWrite);
        }
        if self.roll(self.plan.disconnect) {
            return self.record(Fault::Disconnect);
        }
        if self.roll(self.plan.transient) {
            let f = if self.rng.gen::<bool>() {
                Fault::WouldBlock
            } else {
                Fault::Interrupted
            };
            return self.record(f);
        }
        None
    }

    /// A delay duration in `(0, max_delay]` for [`Fault::Delay`].
    pub fn delay_duration(&mut self) -> Duration {
        let max = self.plan.max_delay.as_micros().max(1) as u64;
        Duration::from_micros(self.rng.gen_range(1..=max))
    }

    /// How many bytes of an `n`-byte write a torn write lets through
    /// (always fewer than `n`, possibly zero).
    pub fn torn_keep(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    fn record(&mut self, f: Fault) -> Option<Fault> {
        self.injected += 1;
        Some(f)
    }
}

/// A `Read + Write` stream that injects the faults its schedule dictates.
///
/// Fault semantics (all modelled on what a real socket does):
///
/// * **Transients** surface as `ErrorKind::WouldBlock` /
///   `ErrorKind::Interrupted` without consuming the schedule's stream
///   position — retrying callers proceed normally.
/// * **Delays** sleep briefly, then serve the read.
/// * **Torn writes** hand a *prefix* of the buffer to the inner stream
///   and kill the connection; the peer sees a frame cut mid-payload.
/// * **Disconnects** kill the connection immediately.
/// * A dead stream stays dead: reads return `Ok(0)` (EOF), writes return
///   `ErrorKind::BrokenPipe` — matching a closed TCP socket.
#[derive(Debug)]
pub struct Faulty<S> {
    inner: S,
    schedule: FaultSchedule,
    dead: bool,
}

impl<S> Faulty<S> {
    /// Wraps a stream under the given fault schedule.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        Faulty {
            inner,
            schedule,
            dead: false,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Faults injected on this stream so far.
    pub fn injected(&self) -> u64 {
        self.schedule.injected()
    }

    /// Whether an injected fault has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unwraps, returning the inner stream and the schedule.
    pub fn into_inner(self) -> (S, FaultSchedule) {
        (self.inner, self.schedule)
    }
}

impl<S: Read> Read for Faulty<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Ok(0); // EOF, like a closed socket.
        }
        match self.schedule.next_read_fault() {
            Some(Fault::Disconnect) => {
                self.dead = true;
                Ok(0)
            }
            Some(Fault::WouldBlock) => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injected WouldBlock",
            )),
            Some(Fault::Interrupted) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected Interrupted",
            )),
            Some(Fault::Delay) => {
                // lint: allow(reactor_blocking, "injected chaos fault: the delay is the stall under test, bounded by delay_duration and active only under a FaultPlan")
                std::thread::sleep(self.schedule.delay_duration());
                self.inner.read(buf)
            }
            Some(Fault::TornWrite) | None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for Faulty<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "stream killed by injected fault",
            ));
        }
        match self.schedule.next_write_fault() {
            Some(Fault::TornWrite) => {
                let keep = self.schedule.torn_keep(buf.len());
                if keep > 0 {
                    let _ = self.inner.write(&buf[..keep]);
                    let _ = self.inner.flush();
                }
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected torn write",
                ))
            }
            Some(Fault::Disconnect) => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect",
                ))
            }
            Some(Fault::WouldBlock) => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injected WouldBlock",
            )),
            Some(Fault::Interrupted) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected Interrupted",
            )),
            Some(Fault::Delay) | None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "stream killed by injected fault",
            ));
        }
        self.inner.flush()
    }
}

/// Pulls every decodable frame out of a (possibly faulty) stream,
/// retrying transient errors and stopping at EOF or the first hard
/// failure. Returns the frames plus the terminal error, if any.
///
/// This is the reference pump the property suite uses to state the core
/// fault-tolerance theorem: under any fault schedule, the frames that
/// *do* come out are exactly a prefix of the fault-free decode — faults
/// can truncate the conversation but never corrupt it.
pub fn drain_frames(r: &mut impl Read) -> (Vec<Vec<u8>>, Option<crate::frame::FrameError>) {
    use crate::frame::{FramePump, PumpStep};
    let mut pump = FramePump::new();
    let mut frames = Vec::new();
    loop {
        match pump.pump(r) {
            PumpStep::Eof => {
                // EOF: anything left in the buffer is a truncated frame.
                return (frames, pump.truncation());
            }
            PumpStep::Fed(_) => loop {
                match pump.next_frame() {
                    Ok(Some(frame)) => frames.push(frame.to_vec()),
                    Ok(None) => break,
                    Err(e) => return (frames, Some(e)),
                }
            },
            // The blocking reference drain owns the simplest retry
            // policy: spin until the stream yields or dies.
            PumpStep::Blocked => continue,
            PumpStep::Failed(e) => return (frames, Some(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    #[test]
    fn schedules_are_deterministic_per_connection() {
        let plan = FaultPlan::chaos(42);
        let draw = |conn: u64| -> Vec<Option<Fault>> {
            let mut s = plan.schedule_for(conn);
            (0..64)
                .map(|i| {
                    if i % 2 == 0 {
                        s.next_read_fault()
                    } else {
                        s.next_write_fault()
                    }
                })
                .collect()
        };
        assert_eq!(draw(1), draw(1), "same conn id replays the same faults");
        assert_ne!(draw(1), draw(2), "different conns get independent faults");
        assert_ne!(
            draw(1),
            {
                let plan = FaultPlan::chaos(43);
                let mut s = plan.schedule_for(1);
                (0..64)
                    .map(|i| {
                        if i % 2 == 0 {
                            s.next_read_fault()
                        } else {
                            s.next_write_fault()
                        }
                    })
                    .collect::<Vec<_>>()
            },
            "different seeds give different schedules"
        );
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let data = {
            let mut v = Vec::new();
            v.extend_from_slice(&encode_frame(b"alpha").unwrap());
            v.extend_from_slice(&encode_frame(b"beta").unwrap());
            v
        };
        let mut faulty = Faulty::new(data.as_slice(), FaultSchedule::quiet());
        let (frames, err) = drain_frames(&mut faulty);
        assert_eq!(frames, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(err, None);
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn torn_write_cuts_a_frame_then_kills_the_stream() {
        let plan = FaultPlan::new(7).with_torn_writes(1.0);
        let mut out = Vec::new();
        {
            let mut w = Faulty::new(&mut out, plan.schedule_for(1));
            let frame = encode_frame(b"this will tear").unwrap();
            let err = std::io::Write::write_all(&mut w, &frame).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            assert!(w.is_dead());
            // Dead stream stays dead.
            let err = std::io::Write::write_all(&mut w, b"x").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
        let frame = encode_frame(b"this will tear").unwrap();
        assert!(out.len() < frame.len(), "the whole frame got through");
        assert_eq!(out, frame[..out.len()], "prefix property violated");
    }

    #[test]
    fn transient_errors_do_not_lose_bytes() {
        let data = encode_frame(b"survives transients").unwrap();
        let plan = FaultPlan::new(3).with_transients(0.5);
        let mut faulty = Faulty::new(data.as_slice(), plan.schedule_for(9));
        let (frames, err) = drain_frames(&mut faulty);
        assert_eq!(frames, vec![b"survives transients".to_vec()]);
        assert_eq!(err, None);
    }

    #[test]
    fn disconnect_reads_are_clean_eof() {
        let data = encode_frame(b"never arrives").unwrap();
        let plan = FaultPlan::new(1).with_disconnects(1.0);
        let mut faulty = Faulty::new(data.as_slice(), plan.schedule_for(2));
        let mut buf = [0u8; 16];
        assert_eq!(faulty.read(&mut buf).unwrap(), 0);
        assert!(faulty.is_dead());
    }

    #[test]
    fn chaos_plan_marks_connection_three_for_panic() {
        let plan = FaultPlan::chaos(1234);
        assert!(!plan.schedule_for(1).panics_worker());
        assert!(plan.schedule_for(3).panics_worker());
        assert!(plan.wraps_streams());
        assert!(!FaultPlan::new(5).wraps_streams());
        assert!(!FaultPlan::new(5).with_worker_panic_on(2).wraps_streams());
    }
}
