//! Length-prefixed framing for the wire protocol.
//!
//! Every message on a connection — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+-------------------+
//! | length: u32 BE | payload bytes ... |
//! +----------------+-------------------+
//! ```
//!
//! The length counts only the payload and is capped at [`MAX_FRAME`];
//! anything larger is a protocol violation and yields a typed
//! [`FrameError::Oversized`] *before* any allocation of the claimed size,
//! so a hostile peer cannot make the server reserve gigabytes with four
//! bytes. Decoding is incremental: [`decode_frame`] consumes complete
//! frames from a [`BytesMut`] accumulation buffer and returns `None`
//! while bytes are still missing, which makes it directly drivable from
//! both a blocking socket loop and a property test feeding arbitrary
//! splits.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Frame header size in bytes (one big-endian `u32` length).
pub const HEADER_LEN: usize = 4;

/// Largest accepted payload (1 MiB). Generous for SQL text and JSON
/// result sets, small enough that a malicious length prefix cannot cause
/// a giant allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed framing failures. Every decode error is deterministic and
/// non-panicking; I/O errors are captured by message (mirroring
/// `FungusError::Io`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The length the header claimed.
        claimed: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended mid-frame (header or payload cut short).
    Truncated {
        /// Bytes that were available.
        have: usize,
        /// Bytes the frame needed.
        need: usize,
    },
    /// An underlying socket/file error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { have, need } => {
                write!(f, "stream ended mid-frame: have {have} of {need} bytes")
            }
            FrameError::Io(msg) => write!(f, "frame i/o: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// Encodes one payload as a frame. Fails (typed, no panic) when the
/// payload exceeds [`MAX_FRAME`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed: payload.len(),
            max: MAX_FRAME,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_slice(payload);
    Ok(out)
}

/// Consumes one complete frame from the front of `buf`.
///
/// * `Ok(Some(payload))` — a full frame was present; its bytes (header
///   included) have been removed from `buf`.
/// * `Ok(None)` — not enough bytes yet; `buf` is untouched.
/// * `Err(Oversized)` — the header announces an illegal length; the
///   connection should be dropped (the stream can no longer be framed).
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Bytes>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let claimed = {
        // lint: allow(panic, "guarded: buf.len() >= HEADER_LEN checked three lines up")
        let mut header = &buf.as_slice()[..HEADER_LEN];
        header.get_u32() as usize
    };
    if claimed > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed,
            max: MAX_FRAME,
        });
    }
    if buf.len() < HEADER_LEN + claimed {
        return Ok(None);
    }
    let mut frame = buf.split_to(HEADER_LEN + claimed);
    let header = frame.split_to(HEADER_LEN);
    debug_assert_eq!(header.len(), HEADER_LEN);
    Ok(Some(frame.freeze()))
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF *between* frames);
/// EOF in the middle of a frame is a [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => {
            return Err(FrameError::Truncated {
                have: n,
                need: HEADER_LEN,
            })
        }
        _ => {}
    }
    let claimed = u32::from_be_bytes(header) as usize;
    if claimed > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; claimed];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got < claimed {
        return Err(FrameError::Truncated {
            have: got,
            need: claimed,
        });
    }
    Ok(Some(payload))
}

/// Writes one frame to a blocking stream and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Fills `buf` from `r`, tolerating EOF: returns how many bytes were
/// actually read (0 = immediate EOF, `buf.len()` = filled).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        // lint: allow(panic, "guarded: loop condition keeps filled < buf.len()")
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buffer() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(b"hello").unwrap());
        buf.extend_from_slice(&encode_frame(b"").unwrap());
        buf.extend_from_slice(&encode_frame(b"world!").unwrap());
        assert_eq!(
            decode_frame(&mut buf).unwrap().unwrap().as_slice(),
            b"hello"
        );
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap().as_slice(), b"");
        assert_eq!(
            decode_frame(&mut buf).unwrap().unwrap().as_slice(),
            b"world!"
        );
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode_frame(b"abcdef").unwrap();
        let mut buf = BytesMut::new();
        for (i, b) in frame.iter().enumerate() {
            buf.extend_from_slice(&[*b]);
            let decoded = decode_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert_eq!(decoded, None, "frame complete too early at byte {i}");
            } else {
                assert_eq!(decoded.unwrap().as_slice(), b"abcdef");
            }
        }
    }

    #[test]
    fn oversized_header_is_a_typed_error() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        buf.extend_from_slice(b"xx");
        match decode_frame(&mut buf) {
            Err(FrameError::Oversized { claimed, max }) => {
                assert_eq!(claimed, MAX_FRAME + 1);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(encode_frame(&vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn stream_reader_handles_eof_shapes() {
        // Clean EOF between frames.
        let mut empty: &[u8] = b"";
        assert_eq!(read_frame(&mut empty).unwrap(), None);
        // EOF mid-header.
        let mut cut: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated { have: 2, need: 4 })
        ));
        // EOF mid-payload.
        let full = encode_frame(b"abcd").unwrap();
        let mut cut = &full[..full.len() - 1];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated { have: 3, need: 4 })
        ));
        // Full frame.
        let mut ok = full.as_slice();
        assert_eq!(read_frame(&mut ok).unwrap().unwrap(), b"abcd");
    }
}
