//! Length-prefixed framing for the wire protocol.
//!
//! Every message on a connection — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+-------------------+
//! | length: u32 BE | payload bytes ... |
//! +----------------+-------------------+
//! ```
//!
//! The length counts only the payload and is capped at [`MAX_FRAME`];
//! anything larger is a protocol violation and yields a typed
//! [`FrameError::Oversized`] *before* any allocation of the claimed size,
//! so a hostile peer cannot make the server reserve gigabytes with four
//! bytes. Decoding is incremental: [`decode_frame`] consumes complete
//! frames from a [`BytesMut`] accumulation buffer and returns `None`
//! while bytes are still missing, which makes it directly drivable from
//! both a blocking socket loop and a property test feeding arbitrary
//! splits.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Frame header size in bytes (one big-endian `u32` length).
pub const HEADER_LEN: usize = 4;

/// Largest accepted payload (1 MiB). Generous for SQL text and JSON
/// result sets, small enough that a malicious length prefix cannot cause
/// a giant allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed framing failures. Every decode error is deterministic and
/// non-panicking; I/O errors are captured by message (mirroring
/// `FungusError::Io`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The length the header claimed.
        claimed: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended mid-frame (header or payload cut short).
    Truncated {
        /// Bytes that were available.
        have: usize,
        /// Bytes the frame needed.
        need: usize,
    },
    /// An underlying socket/file error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { have, need } => {
                write!(f, "stream ended mid-frame: have {have} of {need} bytes")
            }
            FrameError::Io(msg) => write!(f, "frame i/o: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// Encodes one payload as a frame. Fails (typed, no panic) when the
/// payload exceeds [`MAX_FRAME`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed: payload.len(),
            max: MAX_FRAME,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_slice(payload);
    Ok(out)
}

/// Consumes one complete frame from the front of `buf`.
///
/// * `Ok(Some(payload))` — a full frame was present; its bytes (header
///   included) have been removed from `buf`.
/// * `Ok(None)` — not enough bytes yet; `buf` is untouched.
/// * `Err(Oversized)` — the header announces an illegal length; the
///   connection should be dropped (the stream can no longer be framed).
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Bytes>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let claimed = {
        // lint: allow(panic, "guarded: buf.len() >= HEADER_LEN checked three lines up")
        let mut header = &buf.as_slice()[..HEADER_LEN];
        header.get_u32() as usize
    };
    if claimed > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed,
            max: MAX_FRAME,
        });
    }
    if buf.len() < HEADER_LEN + claimed {
        return Ok(None);
    }
    let mut frame = buf.split_to(HEADER_LEN + claimed);
    let header = frame.split_to(HEADER_LEN);
    debug_assert_eq!(header.len(), HEADER_LEN);
    Ok(Some(frame.freeze()))
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF *between* frames);
/// EOF in the middle of a frame is a [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => {
            return Err(FrameError::Truncated {
                have: n,
                need: HEADER_LEN,
            })
        }
        _ => {}
    }
    let claimed = u32::from_be_bytes(header) as usize;
    if claimed > MAX_FRAME {
        return Err(FrameError::Oversized {
            claimed,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; claimed];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got < claimed {
        return Err(FrameError::Truncated {
            have: got,
            need: claimed,
        });
    }
    Ok(Some(payload))
}

/// Writes one frame to a blocking stream and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// One step of [`FramePump::pump`]: what the underlying stream produced.
#[derive(Debug)]
pub enum PumpStep {
    /// Fresh bytes entered the accumulation buffer; complete frames may
    /// now be available via [`FramePump::next_frame`].
    Fed(usize),
    /// Clean end-of-stream. Anything still buffered is a truncated frame
    /// ([`FramePump::truncation`]).
    Eof,
    /// The stream has nothing right now (`WouldBlock` / `Interrupted` /
    /// `TimedOut`). A blocking caller retries after its poll slice; a
    /// readiness caller parks the connection until the poller reports it
    /// readable again.
    Blocked,
    /// Hard I/O failure; the stream can no longer be framed.
    Failed(FrameError),
}

/// Incremental frame pump: one read step plus the accumulation buffer,
/// shared by every consumer of the wire format. The blocking worker
/// loop, the readiness reactor, and the fault-injection reference drain
/// ([`crate::fault::drain_frames`]) all advance connections through this
/// same type, so the prefix-truncation property and the chaos suite
/// exercise the exact code both I/O models run in production.
#[derive(Debug, Default)]
pub struct FramePump {
    buf: BytesMut,
}

impl FramePump {
    /// An empty pump (no buffered bytes).
    pub fn new() -> Self {
        FramePump {
            buf: BytesMut::new(),
        }
    }

    /// Appends raw bytes to the accumulation buffer without touching any
    /// stream — the entry point for property tests feeding arbitrary
    /// splits and for readiness loops that read elsewhere.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// Mirrors [`decode_frame`]: `Ok(None)` while bytes are missing,
    /// `Err(Oversized)` when the header announces an illegal length.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        decode_frame(&mut self.buf)
    }

    /// Performs one bounded read from `r` into the buffer. Never blocks
    /// longer than the underlying `read` does and never loops: callers
    /// own the retry policy (that is the whole point of the pump).
    pub fn pump(&mut self, r: &mut impl Read) -> PumpStep {
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => PumpStep::Eof,
            Ok(n) => {
                // lint: allow(panic, "guarded: n <= chunk.len() per Read contract")
                self.buf.extend_from_slice(&chunk[..n]);
                PumpStep::Fed(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                PumpStep::Blocked
            }
            Err(e) => PumpStep::Failed(FrameError::Io(e.to_string())),
        }
    }

    /// Bytes currently buffered (0 when parked cleanly between frames).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer holds the start of an undecoded frame.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Total bytes — header included — the partially buffered frame
    /// needs before it can decode.
    pub fn needed(&self) -> usize {
        match self.buf.as_slice().get(..HEADER_LEN) {
            None => HEADER_LEN,
            Some(h) => {
                let mut header = [0u8; HEADER_LEN];
                header.copy_from_slice(h);
                HEADER_LEN + u32::from_be_bytes(header) as usize
            }
        }
    }

    /// The typed truncation error for an EOF *right now*: `Some` when a
    /// partial frame is stranded in the buffer, `None` on a clean
    /// between-frames boundary. Guarantees `have < need`.
    pub fn truncation(&self) -> Option<FrameError> {
        if self.buf.is_empty() {
            return None;
        }
        Some(FrameError::Truncated {
            have: self.buf.len(),
            need: self.needed(),
        })
    }
}

/// Fills `buf` from `r`, tolerating EOF: returns how many bytes were
/// actually read (0 = immediate EOF, `buf.len()` = filled).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        // lint: allow(panic, "guarded: loop condition keeps filled < buf.len()")
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buffer() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(b"hello").unwrap());
        buf.extend_from_slice(&encode_frame(b"").unwrap());
        buf.extend_from_slice(&encode_frame(b"world!").unwrap());
        assert_eq!(
            decode_frame(&mut buf).unwrap().unwrap().as_slice(),
            b"hello"
        );
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap().as_slice(), b"");
        assert_eq!(
            decode_frame(&mut buf).unwrap().unwrap().as_slice(),
            b"world!"
        );
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode_frame(b"abcdef").unwrap();
        let mut buf = BytesMut::new();
        for (i, b) in frame.iter().enumerate() {
            buf.extend_from_slice(&[*b]);
            let decoded = decode_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert_eq!(decoded, None, "frame complete too early at byte {i}");
            } else {
                assert_eq!(decoded.unwrap().as_slice(), b"abcdef");
            }
        }
    }

    #[test]
    fn oversized_header_is_a_typed_error() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        buf.extend_from_slice(b"xx");
        match decode_frame(&mut buf) {
            Err(FrameError::Oversized { claimed, max }) => {
                assert_eq!(claimed, MAX_FRAME + 1);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(encode_frame(&vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn pump_feeds_byte_at_a_time_without_corruption() {
        let mut pump = FramePump::new();
        let stream: Vec<u8> = [
            encode_frame(b"alpha").unwrap(),
            encode_frame(b"").unwrap(),
            encode_frame(b"omega").unwrap(),
        ]
        .concat();
        let mut decoded = Vec::new();
        for b in &stream {
            pump.feed(&[*b]);
            while let Some(frame) = pump.next_frame().unwrap() {
                decoded.push(frame.to_vec());
            }
        }
        assert_eq!(
            decoded,
            vec![b"alpha".to_vec(), Vec::new(), b"omega".to_vec()]
        );
        assert!(!pump.mid_frame());
        assert_eq!(pump.truncation(), None);
    }

    #[test]
    fn pump_reports_truncation_with_have_below_need() {
        let mut pump = FramePump::new();
        // Mid-header: two of four length bytes.
        pump.feed(&[0, 0]);
        assert_eq!(
            pump.truncation(),
            Some(FrameError::Truncated { have: 2, need: 4 })
        );
        // Complete header claiming 6 payload bytes, one delivered.
        let mut pump = FramePump::new();
        let frame = encode_frame(b"abcdef").unwrap();
        pump.feed(&frame[..HEADER_LEN + 1]);
        assert_eq!(pump.next_frame().unwrap(), None);
        match pump.truncation() {
            Some(FrameError::Truncated { have, need }) => {
                assert_eq!(have, HEADER_LEN + 1);
                assert_eq!(need, HEADER_LEN + 6);
                assert!(have < need);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn pump_steps_classify_stream_conditions() {
        struct Script(Vec<std::io::Result<Vec<u8>>>);
        impl Read for Script {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop() {
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(e)) => Err(e),
                    None => Ok(0),
                }
            }
        }
        let frame = encode_frame(b"ok").unwrap();
        let mut src = Script(vec![
            Ok(frame.clone()),
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "wb")),
        ]);
        let mut pump = FramePump::new();
        assert!(matches!(pump.pump(&mut src), PumpStep::Blocked));
        assert!(matches!(pump.pump(&mut src), PumpStep::Fed(n) if n == frame.len()));
        assert_eq!(pump.next_frame().unwrap().unwrap().as_slice(), b"ok");
        assert!(matches!(pump.pump(&mut src), PumpStep::Eof));

        let mut broken = Script(vec![Err(std::io::Error::other("boom"))]);
        assert!(matches!(
            pump.pump(&mut broken),
            PumpStep::Failed(FrameError::Io(_))
        ));
    }

    #[test]
    fn stream_reader_handles_eof_shapes() {
        // Clean EOF between frames.
        let mut empty: &[u8] = b"";
        assert_eq!(read_frame(&mut empty).unwrap(), None);
        // EOF mid-header.
        let mut cut: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated { have: 2, need: 4 })
        ));
        // EOF mid-payload.
        let full = encode_frame(b"abcd").unwrap();
        let mut cut = &full[..full.len() - 1];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated { have: 3, need: 4 })
        ));
        // Full frame.
        let mut ok = full.as_slice();
        assert_eq!(read_frame(&mut ok).unwrap().unwrap(), b"abcd");
    }
}
