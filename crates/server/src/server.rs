//! The concurrent TCP front-end.
//!
//! Two I/O models share one front door, one worker pool, one supervisor,
//! and one frame codec ([`ServerConfig::io_model`] picks):
//!
//! ```text
//!             accept thread                worker pool (N threads)
//!   TcpListener ──────────► crossbeam ──────────► Session per connection
//!        │    nonblocking,   bounded(cap)          blocking frame loop
//!        │    cap-checked                          read → dispatch → write
//!        │         (threaded model: 1 connection per worker)
//!        │
//!        ├──────► reactor threads ◄──── completions + self-pipe wake
//!        │         (reactor model: sessions as state machines over
//!        │          poll/epoll; decoded requests batch onto the same
//!        │          worker pool — see [`crate::reactor`])
//!        │
//!   supervisor thread: joins dead workers, counts the panic, and spawns
//!        │    a replacement — one connection's crash never shrinks the pool.
//!        │
//!   decay driver thread (optional): ticks the shared scheduler on a
//!   wall-clock period while queries run — the paper's "periodic clock
//!   of T seconds" under live traffic. The driver panic-isolates its
//!   tasks and shares no fate with the workers, so decay stays on
//!   schedule through worker deaths (Law 1 under chaos).
//! ```
//!
//! Under the threaded model each worker owns one connection at a time
//! from accept to hangup, so the pool size bounds concurrent connections;
//! the accept thread rejects the overflow with a typed
//! [`Response::Error`] instead of letting them queue invisibly. Sockets
//! carry read/write timeouts, and the read path polls in short slices so
//! an idle connection notices shutdown quickly. Under the reactor model
//! the session count is bounded by [`ServerConfig::max_sessions`]
//! instead, and the worker pool bounds *in-flight requests* rather than
//! connections.
//!
//! **Fault injection:** installing a [`FaultPlan`] in [`ServerConfig`]
//! wraps every accepted socket in a [`Faulty`] stream whose seeded
//! schedule injects torn writes, mid-frame disconnects, read delays, and
//! transient errors — and can mark a connection's worker for death, which
//! exercises the supervisor's respawn path. With no plan configured the
//! socket is served unwrapped; the fast path pays nothing.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]): stop accepting, let
//! every in-flight request finish and its response flush, join the pool,
//! stop the decay driver, and (when configured) flush a checkpoint of
//! every container before returning the final counters.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use fungus_lint_rt::{hierarchy, OrderedMutex};

use fungus_clock::scheduler::DriverHandle;
use fungus_core::SharedDatabase;
use fungus_types::{FungusError, Result};

use crate::fault::{FaultPlan, Faulty};
use crate::frame::{self, FrameError, FramePump, PumpStep};
use crate::protocol::{ErrorCode, Request, Response};
use crate::session::Session;
use crate::stats::{MetricsSnapshot, ServerStats};

/// How often blocked reads (and reactor poll waits) wake up to check the
/// shutdown flag.
pub(crate) const POLL_SLICE: Duration = Duration::from_millis(50);

/// Which connection I/O model the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One blocking worker thread owns each live connection — the
    /// reference baseline. Concurrency is bounded by the pool size.
    #[default]
    Threaded,
    /// Event-driven: sessions are state machines multiplexed over a
    /// poll/epoll reactor; decoded requests batch onto the worker pool.
    /// Unix-only ([`serve`] fails with a typed error elsewhere).
    Reactor,
}

/// Which readiness backend a reactor thread uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// The platform's best backend: `epoll` on Linux, `poll(2)` elsewhere.
    #[default]
    System,
    /// Force the portable `poll(2)` backend (tests use this to cover the
    /// fallback on platforms that would never pick it).
    Poll,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Worker threads. Under [`IoModel::Threaded`] this is also the
    /// concurrent-connection bound; under [`IoModel::Reactor`] it bounds
    /// in-flight requests.
    pub workers: usize,
    /// Threaded model: connections admitted beyond the busy workers
    /// (queued, waiting for a worker). Anything above `workers + backlog`
    /// is rejected.
    pub backlog: usize,
    /// A connection stalling mid-frame longer than this is dropped.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// When set, a decay driver thread ticks the virtual clock on this
    /// wall-clock period for the server's lifetime.
    pub tick_period: Option<Duration>,
    /// When set, shutdown flushes a full checkpoint here after draining.
    pub checkpoint_dir: Option<PathBuf>,
    /// When set, every accepted connection is served through a seeded
    /// [`Faulty`] stream (and scheduled worker panics fire). `None`
    /// serves sockets unwrapped — zero overhead.
    pub fault_plan: Option<FaultPlan>,
    /// Connection I/O model: blocking worker-per-connection, or the
    /// poll/epoll reactor.
    pub io_model: IoModel,
    /// Reactor model: how many reactor threads multiplex the sessions.
    pub reactor_threads: usize,
    /// Reactor model: the admission cap on concurrently open sessions
    /// (the reactor's analogue of `workers + backlog`).
    pub max_sessions: usize,
    /// Reactor model: depth of the bounded request queue into the worker
    /// pool. A full queue is the backpressure signal — the reactor stops
    /// polling saturating sockets and `.health` probes fail fast.
    pub dispatch_depth: usize,
    /// Reactor model: readiness backend selection.
    pub poller: PollerKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 8,
            backlog: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            tick_period: None,
            checkpoint_dir: None,
            fault_plan: None,
            io_model: IoModel::Threaded,
            reactor_threads: 2,
            max_sessions: 1024,
            dispatch_depth: 64,
            poller: PollerKind::System,
        }
    }
}

/// Final accounting returned by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Counter state at the instant the server finished draining.
    pub metrics: MetricsSnapshot,
    /// Whether a checkpoint was flushed.
    pub checkpointed: bool,
}

/// What a worker thread pulls from: whole connections (threaded model)
/// or decoded requests (reactor model). One pool, one supervisor, two
/// feeds.
#[derive(Clone)]
enum ConnSource {
    /// Threaded model: each received socket is owned until hangup.
    Streams(Receiver<TcpStream>),
    /// Reactor model: each received job is one decoded request.
    #[cfg(unix)]
    Jobs(Receiver<crate::reactor::Job>),
}

/// Everything a worker thread (or its respawned replacement) needs.
#[derive(Clone)]
struct WorkerCtx {
    source: ConnSource,
    db: SharedDatabase,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    active: Arc<AtomicUsize>,
    sessions: Arc<AtomicU64>,
    config: ServerConfig,
}

/// The worker pool as the supervisor sees it: slot index + live handle.
struct WorkerSlot {
    index: usize,
    handle: JoinHandle<()>,
}

type WorkerSet = Arc<OrderedMutex<Vec<WorkerSlot>>>;

/// A running server; dropping it shuts the server down (best effort).
pub struct ServerHandle {
    addr: SocketAddr,
    db: SharedDatabase,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: WorkerSet,
    supervisor: Option<JoinHandle<()>>,
    driver: Option<DriverHandle>,
    stats: Arc<ServerStats>,
    checkpoint_dir: Option<PathBuf>,
    #[cfg(unix)]
    reactors: Vec<(Arc<crate::reactor::ReactorShared>, JoinHandle<()>)>,
}

/// Starts a server over `db` and returns its handle.
///
/// The listener is bound and the pool is running when this returns — a
/// client may connect immediately. All threads are named for debuggers.
pub fn serve(db: SharedDatabase, config: ServerConfig) -> Result<ServerHandle> {
    match config.io_model {
        IoModel::Threaded => serve_threaded(db, config),
        IoModel::Reactor => serve_reactor(db, config),
    }
}

/// The bind + shared-state boilerplate both I/O models start from.
struct ServerBase {
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    active: Arc<AtomicUsize>,
    sessions: Arc<AtomicU64>,
}

fn bind_base(db: &SharedDatabase, config: &ServerConfig) -> Result<ServerBase> {
    let listener = TcpListener::bind(config.addr).map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let stats = Arc::new(ServerStats::default());
    stats.link_shards(db.clone());
    Ok(ServerBase {
        listener,
        addr,
        shutdown: Arc::new(AtomicBool::new(false)),
        stats,
        active: Arc::new(AtomicUsize::new(0)),
        sessions: Arc::new(AtomicU64::new(0)),
    })
}

/// Spawns the worker pool and its supervisor (shared by both models —
/// the supervisor's respawn discipline applies to job workers too).
fn spawn_pool(workers: usize, ctx: &WorkerCtx) -> Result<(WorkerSet, JoinHandle<()>)> {
    let mut pool = Vec::with_capacity(workers);
    for w in 0..workers {
        pool.push(WorkerSlot {
            index: w,
            handle: spawn_worker(w, 0, ctx.clone())?,
        });
    }
    let pool: WorkerSet = Arc::new(OrderedMutex::new(&hierarchy::WORKERS, pool));
    let supervisor = {
        let set = Arc::clone(&pool);
        let ctx = ctx.clone();
        std::thread::Builder::new()
            .name("fungus-supervisor".into())
            .spawn(move || supervisor_loop(set, ctx))
            .map_err(io_err)?
    };
    Ok((pool, supervisor))
}

fn spawn_accept(
    base: &ServerBase,
    sink: AcceptSink,
    capacity: usize,
    config: &ServerConfig,
) -> Result<JoinHandle<()>> {
    let listener = base.listener.try_clone().map_err(io_err)?;
    let shutdown = Arc::clone(&base.shutdown);
    let stats = Arc::clone(&base.stats);
    let active = Arc::clone(&base.active);
    let config = config.clone();
    std::thread::Builder::new()
        .name("fungus-accept".into())
        .spawn(move || accept_loop(listener, sink, shutdown, stats, active, capacity, config))
        .map_err(io_err)
}

fn serve_threaded(db: SharedDatabase, config: ServerConfig) -> Result<ServerHandle> {
    let base = bind_base(&db, &config)?;
    let workers = config.workers.max(1);
    let (conn_tx, conn_rx) = bounded::<TcpStream>(config.backlog.max(1));

    let ctx = WorkerCtx {
        source: ConnSource::Streams(conn_rx),
        db: db.clone(),
        shutdown: Arc::clone(&base.shutdown),
        stats: Arc::clone(&base.stats),
        active: Arc::clone(&base.active),
        sessions: Arc::clone(&base.sessions),
        config: config.clone(),
    };
    let (pool, supervisor) = spawn_pool(workers, &ctx)?;

    let driver = config.tick_period.map(|p| db.spawn_decay_driver(p));
    if let Some(driver) = &driver {
        base.stats.link_driver(driver.tick_counter());
    }

    let capacity = workers + config.backlog;
    let accept = spawn_accept(&base, AcceptSink::Pool(conn_tx), capacity, &config)?;

    Ok(ServerHandle {
        addr: base.addr,
        db,
        shutdown: base.shutdown,
        accept: Some(accept),
        workers: pool,
        supervisor: Some(supervisor),
        driver,
        stats: base.stats,
        checkpoint_dir: config.checkpoint_dir,
        #[cfg(unix)]
        reactors: Vec::new(),
    })
}

/// Starts the reactor-model server: N reactor threads multiplexing the
/// sessions, the shared worker pool draining decoded requests.
#[cfg(unix)]
fn serve_reactor(db: SharedDatabase, config: ServerConfig) -> Result<ServerHandle> {
    use crate::reactor::{self, Job, ReactorCtx, ReactorShared};

    let base = bind_base(&db, &config)?;
    let workers = config.workers.max(1);
    let (job_tx, job_rx) = bounded::<Job>(config.dispatch_depth.max(1));

    let force_poll = config.poller == PollerKind::Poll;
    let mut reactors = Vec::new();
    let mut shareds = Vec::new();
    for r in 0..config.reactor_threads.max(1) {
        let (shared, wake_rx) = ReactorShared::new().map_err(io_err)?;
        let poller = reactor::poller::new_poller(force_poll).map_err(io_err)?;
        let ctx = ReactorCtx {
            shared: Arc::clone(&shared),
            wake_rx,
            poller,
            db: db.clone(),
            stats: Arc::clone(&base.stats),
            shutdown: Arc::clone(&base.shutdown),
            active: Arc::clone(&base.active),
            jobs: job_tx.clone(),
            config: config.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("fungus-reactor-{r}"))
            .spawn(move || reactor::reactor_loop(ctx))
            .map_err(io_err)?;
        shareds.push(Arc::clone(&shared));
        reactors.push((shared, handle));
    }
    // Reactors hold the only senders now: when the last reactor thread
    // exits, the job channel disconnects and idle workers drain out.
    drop(job_tx);

    let ctx = WorkerCtx {
        source: ConnSource::Jobs(job_rx),
        db: db.clone(),
        shutdown: Arc::clone(&base.shutdown),
        stats: Arc::clone(&base.stats),
        active: Arc::clone(&base.active),
        sessions: Arc::clone(&base.sessions),
        config: config.clone(),
    };
    let (pool, supervisor) = spawn_pool(workers, &ctx)?;

    let driver = config.tick_period.map(|p| db.spawn_decay_driver(p));
    if let Some(driver) = &driver {
        base.stats.link_driver(driver.tick_counter());
    }

    let sink = AcceptSink::Reactors {
        shareds,
        sessions: Arc::clone(&base.sessions),
        next: 0,
    };
    let accept = spawn_accept(&base, sink, config.max_sessions.max(1), &config)?;

    Ok(ServerHandle {
        addr: base.addr,
        db,
        shutdown: base.shutdown,
        accept: Some(accept),
        workers: pool,
        supervisor: Some(supervisor),
        driver,
        stats: base.stats,
        checkpoint_dir: config.checkpoint_dir,
        reactors,
    })
}

#[cfg(not(unix))]
fn serve_reactor(_db: SharedDatabase, _config: ServerConfig) -> Result<ServerHandle> {
    Err(FungusError::Io(
        "io_model = Reactor requires a unix host (poll/epoll)".into(),
    ))
}

fn spawn_worker(index: usize, generation: u64, ctx: WorkerCtx) -> Result<JoinHandle<()>> {
    let name = if generation == 0 {
        format!("fungus-worker-{index}")
    } else {
        format!("fungus-worker-{index}-g{generation}")
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(ctx))
        .map_err(io_err)
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog behind the server.
    pub fn db(&self) -> &SharedDatabase {
        &self.db
    }

    /// Current counter values.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.stats.snapshot()
    }

    /// The live counter set (shared with every session).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Completed decay-driver ticks (0 without a driver).
    pub fn driver_ticks(&self) -> u64 {
        self.driver.as_ref().map(|d| d.ticks()).unwrap_or(0)
    }

    /// Drains and stops the server: no new connections, in-flight
    /// requests finish and flush, the pool joins, the decay driver stops,
    /// and a checkpoint is written when configured.
    pub fn shutdown(mut self) -> Result<ShutdownReport> {
        self.stop_threads();
        if let Some(driver) = self.driver.take() {
            driver.stop();
        }
        let mut checkpointed = false;
        if let Some(dir) = self.checkpoint_dir.take() {
            self.db.checkpoint(dir)?;
            checkpointed = true;
        }
        Ok(ShutdownReport {
            metrics: self.stats.snapshot(),
            checkpointed,
        })
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Reactors drain before the pool joins: their in-flight jobs need
        // live workers to complete, and their exit is what disconnects
        // the job channel and releases idle workers.
        #[cfg(unix)]
        for (shared, handle) in self.reactors.drain(..) {
            shared.wake();
            let _ = handle.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        for slot in self.workers.lock().drain(..) {
            let _ = slot.handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Where the accept loop hands admitted sockets.
enum AcceptSink {
    /// Threaded model: the worker pool's connection queue.
    Pool(Sender<TcpStream>),
    /// Reactor model: enroll round-robin across the reactor threads,
    /// assigning the session id at admission.
    #[cfg(unix)]
    Reactors {
        shareds: Vec<Arc<crate::reactor::ReactorShared>>,
        sessions: Arc<AtomicU64>,
        next: usize,
    },
}

/// Configures an accepted socket for its I/O model — the single place
/// socket modes are decided. The threaded path needs a *blocking* socket
/// with a sliced read timeout (accepted fds may inherit the listener's
/// nonblocking flag on some platforms); the reactor needs it nonblocking
/// with no timeouts (the poller is the timeout).
fn prepare_stream(stream: &TcpStream, config: &ServerConfig) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    match config.io_model {
        IoModel::Threaded => {
            stream.set_nonblocking(false)?;
            stream.set_read_timeout(Some(POLL_SLICE))?;
            stream.set_write_timeout(Some(config.write_timeout))?;
        }
        IoModel::Reactor => {
            stream.set_nonblocking(true)?;
        }
    }
    Ok(())
}

fn accept_loop(
    listener: TcpListener,
    mut sink: AcceptSink,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    active: Arc<AtomicUsize>,
    capacity: usize,
    config: ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= capacity {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    reject(stream);
                    continue;
                }
                if prepare_stream(&stream, &config).is_err() {
                    // The socket died between accept and setup.
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                match &mut sink {
                    AcceptSink::Pool(tx) => {
                        if tx.send(stream).is_err() {
                            // Pool already gone (shutdown raced us).
                            active.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                    #[cfg(unix)]
                    AcceptSink::Reactors {
                        shareds,
                        sessions,
                        next,
                    } => {
                        // lint: allow(atomics, "id allocator: only RMW atomicity is needed, ids are unique under any ordering")
                        let id = sessions.fetch_add(1, Ordering::Relaxed) + 1;
                        shareds[*next].enroll(stream, id);
                        *next = (*next + 1) % shareds.len();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping the sink closes the threaded model's channel; workers exit
    // after their current connection drains. (Reactor enrolment queues
    // are drained and refused by the reactors' own shutdown path.)
}

/// Tells an over-capacity client why it is being turned away. The socket
/// has not been through [`prepare_stream`] — force it blocking so the
/// one-shot write works under either I/O model.
fn reject(mut stream: TcpStream) {
    let resp = Response::Error {
        code: ErrorCode::Unavailable,
        message: "server at connection capacity".into(),
    };
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    if let Ok(payload) = resp.encode() {
        let _ = frame::write_frame(&mut stream, &payload);
    }
}

/// Joins workers that died, counts their panics, and spawns replacements
/// so the pool never shrinks. A worker that *returns* (clean exit during
/// shutdown, or channel closed) is not replaced — only panics are.
fn supervisor_loop(workers: WorkerSet, ctx: WorkerCtx) {
    let mut generation = 0u64;
    while !ctx.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL_SLICE);
        let mut set = workers.lock();
        let mut i = 0;
        while i < set.len() {
            if !set[i].handle.is_finished() {
                i += 1;
                continue;
            }
            let slot = set.remove(i);
            let panicked = slot.handle.join().is_err();
            if !panicked {
                // Clean exit: shutdown (or a closed channel) is draining
                // the pool; nothing to replace.
                continue;
            }
            ctx.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if ctx.shutdown.load(Ordering::SeqCst) {
                continue;
            }
            generation += 1;
            if let Ok(handle) = spawn_worker(slot.index, generation, ctx.clone()) {
                ctx.stats.workers_respawned.fetch_add(1, Ordering::Relaxed);
                set.push(WorkerSlot {
                    index: slot.index,
                    handle,
                });
            }
        }
    }
}

/// Decrements the active-connection count when the connection ends — by
/// any exit, including a panic unwinding the worker, so a killed worker
/// never leaks capacity.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(ctx: WorkerCtx) {
    match ctx.source.clone() {
        ConnSource::Streams(rx) => stream_loop(&rx, &ctx),
        #[cfg(unix)]
        ConnSource::Jobs(rx) => crate::reactor::job_loop(&rx, &ctx.shutdown),
    }
}

fn stream_loop(rx: &Receiver<TcpStream>, ctx: &WorkerCtx) {
    loop {
        match rx.recv_timeout(POLL_SLICE) {
            Ok(stream) => {
                let _guard = ActiveGuard(Arc::clone(&ctx.active));
                // lint: allow(atomics, "id allocator: only RMW atomicity is needed, ids are unique under any ordering")
                let id = ctx.sessions.fetch_add(1, Ordering::Relaxed) + 1;
                let session = Session::new(id, ctx.db.clone()).with_stats(Arc::clone(&ctx.stats));
                handle_connection(stream, id, session, ctx);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if ctx.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Applies the fault plan and serves the frame loop (the socket was
/// configured by [`prepare_stream`] at accept time). An injected worker
/// panic deliberately escapes this function — the supervisor's respawn
/// path is part of what the chaos suite tests.
fn handle_connection(stream: TcpStream, id: u64, session: Session, ctx: &WorkerCtx) {
    match &ctx.config.fault_plan {
        Some(plan) => {
            let schedule = plan.schedule_for(id);
            if schedule.panics_worker() {
                // The unwind drops the stream (client sees a reset) and
                // the ActiveGuard (capacity restored); the supervisor
                // counts the corpse and respawns the worker.
                // lint: allow(panic, "injected fault: the supervisor's respawn path is under test")
                panic!(
                    "injected worker panic on connection {id} (fault seed {})",
                    plan.seed()
                );
            }
            if plan.wraps_streams() {
                let mut faulty = Faulty::new(stream, schedule);
                serve_connection(&mut faulty, session, &ctx.shutdown, &ctx.stats, &ctx.config);
                ctx.stats.add_faults(faulty.injected());
            } else {
                let mut stream = stream;
                serve_connection(&mut stream, session, &ctx.shutdown, &ctx.stats, &ctx.config);
            }
        }
        None => {
            let mut stream = stream;
            serve_connection(&mut stream, session, &ctx.shutdown, &ctx.stats, &ctx.config);
        }
    }
}

/// Outcome of trying to read one frame within a poll slice.
enum ReadStep {
    Frame(Vec<u8>),
    Eof,
    Idle,
    Failed(FrameError),
}

fn serve_connection<S: Read + Write>(
    stream: &mut S,
    mut session: Session,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    config: &ServerConfig,
) {
    let mut pump = FramePump::new();
    loop {
        match read_step(stream, &mut pump, config.read_timeout) {
            ReadStep::Idle => {
                // Between frames: an idle client is fine, but shutdown
                // means we stop waiting for it.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            ReadStep::Eof => return,
            ReadStep::Failed(err) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                // Best effort: the stream may no longer be writable, and
                // after a framing error it is not re-usable anyway.
                if let Ok(payload) = Response::from_frame_error(&err).encode() {
                    let _ = frame::write_frame(stream, &payload);
                }
                return;
            }
            ReadStep::Frame(payload) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = match Request::decode(&payload) {
                    Ok(request) => session.handle(request),
                    Err(err) => Response::from_error(&err),
                };
                if response.is_error() {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                let fallback = Response::Error {
                    code: ErrorCode::Execution,
                    message: "response serialisation failed".into(),
                };
                let payload = match response.encode().or_else(|_| fallback.encode()) {
                    Ok(p) => p,
                    // Even the static fallback failed to encode: the
                    // connection is unanswerable; close it rather than
                    // crash the worker.
                    Err(_) => return,
                };
                if frame::write_frame(stream, &payload).is_err() {
                    return;
                }
                stats.responses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Reads one frame through the shared incremental [`FramePump`] — the
/// same pump the reactor's state machines and the chaos reference drain
/// run — waking every [`POLL_SLICE`] while idle.
///
/// Waiting between frames returns [`ReadStep::Idle`] each slice so the
/// caller can check the shutdown flag — an idle session may sit for
/// hours. Once a frame has started, the rest must follow within
/// `read_timeout` (slow-loris defence) or the stranded bytes become a
/// typed truncation. The pump persists across calls, so a read that
/// straddles frame boundaries loses nothing.
fn read_step<S: Read>(stream: &mut S, pump: &mut FramePump, read_timeout: Duration) -> ReadStep {
    // A whole frame may already be buffered from the previous slice.
    match pump.next_frame() {
        Ok(Some(frame)) => return ReadStep::Frame(frame.to_vec()),
        Ok(None) => {}
        Err(e) => return ReadStep::Failed(e),
    }
    // lint: allow(determinism, "socket timeout deadlines are wall-clock by definition")
    let started = Instant::now();
    loop {
        match pump.pump(stream) {
            PumpStep::Fed(_) => match pump.next_frame() {
                Ok(Some(frame)) => return ReadStep::Frame(frame.to_vec()),
                Ok(None) => {
                    if started.elapsed() >= read_timeout {
                        return match pump.truncation() {
                            Some(e) => ReadStep::Failed(e),
                            None => ReadStep::Idle,
                        };
                    }
                }
                Err(e) => return ReadStep::Failed(e),
            },
            PumpStep::Eof => {
                return match pump.truncation() {
                    Some(e) => ReadStep::Failed(e),
                    None => ReadStep::Eof,
                }
            }
            PumpStep::Blocked => {
                // The socket read timeout fires about every POLL_SLICE;
                // injected WouldBlocks from a fault schedule land here too.
                if !pump.mid_frame() {
                    return ReadStep::Idle;
                }
                if started.elapsed() >= read_timeout {
                    return match pump.truncation() {
                        Some(e) => ReadStep::Failed(e),
                        None => ReadStep::Idle,
                    };
                }
            }
            PumpStep::Failed(e) => return ReadStep::Failed(e),
        }
    }
}

fn io_err(e: std::io::Error) -> FungusError {
    FungusError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError, RetryPolicy};
    use crate::protocol::{ErrorCode, Response};
    use fungus_core::Database;

    fn test_db() -> SharedDatabase {
        let db = SharedDatabase::new(Database::new(5));
        db.execute_ddl("CREATE CONTAINER r (v INT) WITH FUNGUS ttl(100)")
            .unwrap();
        db
    }

    #[test]
    fn end_to_end_sql_over_loopback() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        let r = client.sql("INSERT INTO r VALUES (1), (2), (3)").unwrap();
        assert!(!r.is_error(), "{r:?}");
        let r = client.sql("SELECT * FROM r WHERE v >= 2 CONSUME").unwrap();
        assert_eq!(r.row_count(), Some(2));
        let r = client.dot(".containers").unwrap();
        assert_eq!(r.row_count(), Some(1));
        client.close();
        let report = handle.shutdown().unwrap();
        assert_eq!(report.metrics.requests, report.metrics.responses);
        assert_eq!(report.metrics.requests, 4);
        assert_eq!(report.metrics.errors, 0);
    }

    #[test]
    fn sessions_are_isolated_but_share_the_catalog() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        a.sql("INSERT INTO r VALUES (7)").unwrap();
        let r = b.sql("SELECT COUNT(*) FROM r").unwrap();
        match r {
            Response::Rows { rows, .. } => {
                assert_eq!(rows[0][0], fungus_types::Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
        // Distinct sessions: each has its own id in `.session`.
        let ra = a.dot(".session").unwrap();
        let rb = b.dot(".session").unwrap();
        assert_ne!(ra, rb);
        a.close();
        b.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn capacity_overflow_is_rejected_with_a_typed_error() {
        let config = ServerConfig {
            workers: 1,
            backlog: 1,
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        // Fill the single worker and the single backlog slot.
        let c1 = Client::connect(handle.addr()).unwrap();
        let c2 = Client::connect(handle.addr()).unwrap();
        // Give the accept loop time to hand off both.
        std::thread::sleep(Duration::from_millis(100));
        let mut c3 = Client::connect(handle.addr()).unwrap();
        match c3.ping() {
            Err(ClientError::Protocol(_)) | Err(ClientError::Disconnected) => {}
            Ok(()) => panic!("third connection should have been rejected"),
            Err(ClientError::Frame(_)) => {} // reset before the reply arrived
            Err(ClientError::RetriesExhausted { .. }) => {}
        }
        drop(c3);
        c1.close();
        c2.close();
        let report = handle.shutdown().unwrap();
        assert!(report.metrics.rejected >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn malformed_frames_get_a_protocol_error_not_a_crash() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        // A raw socket speaking garbage: oversized length prefix.
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        raw.flush().unwrap();
        // The server answers with a typed protocol error, then hangs up.
        // (Acceptable alternate: connection reset before we read.)
        if let Ok(Some(payload)) = frame::read_frame(&mut raw) {
            let resp = Response::decode(&payload).unwrap();
            assert!(matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Protocol,
                    ..
                }
            ));
        }
        drop(raw);
        // The server is still healthy for well-formed clients.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        client.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn decay_driver_ticks_under_the_server() {
        let config = ServerConfig {
            tick_period: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.sql("INSERT INTO r VALUES (1)").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let now = handle.db().now();
        assert!(now.get() >= 10, "decay clock stuck at {now:?}");
        assert!(handle.driver_ticks() >= 10, "driver tick counter stuck");
        client.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_flushes_a_checkpoint() {
        let dir = std::env::temp_dir().join(format!("fungus-srv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.sql("INSERT INTO r VALUES (1), (2)").unwrap();
        client.close();
        let report = handle.shutdown().unwrap();
        assert!(report.checkpointed);
        assert!(dir.join("MANIFEST").exists());
        assert!(dir.join("r.snap").exists());

        // The checkpoint restores into a fresh database.
        let mut restored = Database::new(5);
        restored.restore_checkpoint(&dir).unwrap();
        assert_eq!(restored.container("r").unwrap().read().live_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A worker scheduled to die takes only its own connection with it:
    /// the supervisor respawns the worker, the counters record the death,
    /// and the very next connection is served normally.
    #[test]
    fn worker_panic_is_isolated_and_respawned() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        let config = ServerConfig {
            workers: 2,
            // Doom the worker handling connection 1; no stream faults.
            fault_plan: Some(FaultPlan::new(77).with_worker_panic_on(1)),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();

        // Connection 1: its worker dies; the client sees a dead socket,
        // not a valid response.
        let mut doomed = Client::connect(handle.addr()).unwrap();
        assert!(doomed.ping().is_err(), "doomed connection answered");
        drop(doomed);

        // Wait for the supervisor to notice and respawn.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.metrics().workers_respawned < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::panic::set_hook(prev);
        let m = handle.metrics();
        assert_eq!(m.worker_panics, 1, "{m:?}");
        assert_eq!(m.workers_respawned, 1, "{m:?}");

        // The pool is whole again: two fresh connections both work.
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        a.ping().unwrap();
        b.ping().unwrap();
        a.close();
        b.close();
        handle.shutdown().unwrap();
    }

    /// Stream faults tear frames and drop connections, but a retrying
    /// client gets every idempotent request through, and the server's
    /// protocol handling never corrupts a response.
    #[test]
    fn faulty_streams_are_survivable_with_retry() {
        let config = ServerConfig {
            fault_plan: Some(
                FaultPlan::new(21)
                    .with_torn_writes(0.10)
                    .with_disconnects(0.05)
                    .with_transients(0.10),
            ),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        let mut client = Client::connect_with_retry(
            handle.addr(),
            RetryPolicy::new(99)
                .with_max_attempts(8)
                .with_base_delay(Duration::from_millis(1)),
        )
        .unwrap();

        let mut ok = 0u32;
        for _ in 0..50 {
            // Idempotent probes: every one must eventually succeed.
            let resp = client.dot(".containers").expect("retry exhausted");
            assert_eq!(resp.row_count(), Some(1), "corrupted response");
            ok += 1;
        }
        assert_eq!(ok, 50);
        let stats = client.stats();
        client.close();
        let report = handle.shutdown().unwrap();
        assert!(
            report.metrics.faults_injected > 0,
            "plan injected nothing: {:?}",
            report.metrics
        );
        // The client felt the faults (retries happened) but hid them.
        assert!(stats.retries > 0, "suspiciously clean run: {stats:?}");
    }
}
