//! The concurrent TCP front-end.
//!
//! Threading model (deliberately boring — no async runtime):
//!
//! ```text
//!             accept thread                worker pool (N threads)
//!   TcpListener ──────────► crossbeam ──────────► Session per connection
//!        │    nonblocking,   bounded(cap)          blocking frame loop
//!        │    cap-checked                          read → dispatch → write
//!        │
//!   decay driver thread (optional): ticks the shared scheduler on a
//!   wall-clock period while queries run — the paper's "periodic clock
//!   of T seconds" under live traffic.
//! ```
//!
//! Each worker owns one connection at a time from accept to hangup, so
//! the pool size bounds concurrent connections; the accept thread rejects
//! the overflow with a typed [`Response::Error`] instead of letting them
//! queue invisibly. Sockets carry read/write timeouts, and the read path
//! polls in short slices so an idle connection notices shutdown quickly.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]): stop accepting, let
//! every in-flight request finish and its response flush, join the pool,
//! stop the decay driver, and (when configured) flush a checkpoint of
//! every container before returning the final counters.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use fungus_clock::scheduler::DriverHandle;
use fungus_core::SharedDatabase;
use fungus_types::{FungusError, Result};

use crate::frame::{self, FrameError, HEADER_LEN, MAX_FRAME};
use crate::protocol::{ErrorCode, Request, Response};
use crate::session::Session;

/// How often blocked reads wake up to check the shutdown flag.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Worker threads — also the concurrent-connection bound.
    pub workers: usize,
    /// Connections admitted beyond the busy workers (queued, waiting for
    /// a worker). Anything above `workers + backlog` is rejected.
    pub backlog: usize,
    /// A connection stalling mid-frame longer than this is dropped.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// When set, a decay driver thread ticks the virtual clock on this
    /// wall-clock period for the server's lifetime.
    pub tick_period: Option<Duration>,
    /// When set, shutdown flushes a full checkpoint here after draining.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("loopback addr"),
            workers: 8,
            backlog: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            tick_period: None,
            checkpoint_dir: None,
        }
    }
}

/// Monotone counters shared by every server thread.
#[derive(Debug, Default)]
struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections refused at capacity.
    pub rejected: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Responses written back (every decoded request gets exactly one).
    pub responses: u64,
    /// Error responses among them (protocol + engine failures).
    pub errors: u64,
}

/// Final accounting returned by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Counter state at the instant the server finished draining.
    pub metrics: MetricsSnapshot,
    /// Whether a checkpoint was flushed.
    pub checkpointed: bool,
}

/// A running server; dropping it shuts the server down (best effort).
pub struct ServerHandle {
    addr: SocketAddr,
    db: SharedDatabase,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    driver: Option<DriverHandle>,
    metrics: Arc<Metrics>,
    checkpoint_dir: Option<PathBuf>,
}

/// Starts a server over `db` and returns its handle.
///
/// The listener is bound and the pool is running when this returns — a
/// client may connect immediately. All threads are named for debuggers.
pub fn serve(db: SharedDatabase, config: ServerConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr).map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(Metrics::default());
    let active = Arc::new(AtomicUsize::new(0));
    let sessions = Arc::new(AtomicU64::new(0));
    let workers = config.workers.max(1);
    let (conn_tx, conn_rx) = bounded::<TcpStream>(config.backlog.max(1));

    let mut pool = Vec::with_capacity(workers);
    for w in 0..workers {
        let rx: Receiver<TcpStream> = conn_rx.clone();
        let db = db.clone();
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let active = Arc::clone(&active);
        let sessions = Arc::clone(&sessions);
        let cfg = config.clone();
        pool.push(
            std::thread::Builder::new()
                .name(format!("fungus-worker-{w}"))
                .spawn(move || worker_loop(rx, db, shutdown, metrics, active, sessions, cfg))
                .map_err(io_err)?,
        );
    }

    let driver = config.tick_period.map(|p| db.spawn_decay_driver(p));

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let active = Arc::clone(&active);
        let tx: Sender<TcpStream> = conn_tx;
        let capacity = workers + config.backlog;
        std::thread::Builder::new()
            .name("fungus-accept".into())
            .spawn(move || accept_loop(listener, tx, shutdown, metrics, active, capacity))
            .map_err(io_err)?
    };

    Ok(ServerHandle {
        addr,
        db,
        shutdown,
        accept: Some(accept),
        workers: pool,
        driver,
        metrics,
        checkpoint_dir: config.checkpoint_dir,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog behind the server.
    pub fn db(&self) -> &SharedDatabase {
        &self.db
    }

    /// Current counter values.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drains and stops the server: no new connections, in-flight
    /// requests finish and flush, the pool joins, the decay driver stops,
    /// and a checkpoint is written when configured.
    pub fn shutdown(mut self) -> Result<ShutdownReport> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(driver) = self.driver.take() {
            driver.stop();
        }
        let mut checkpointed = false;
        if let Some(dir) = self.checkpoint_dir.take() {
            self.db.checkpoint(dir)?;
            checkpointed = true;
        }
        Ok(ShutdownReport {
            metrics: self.metrics.snapshot(),
            checkpointed,
        })
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Metrics {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    active: Arc<AtomicUsize>,
    capacity: usize,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                if active.load(Ordering::SeqCst) >= capacity {
                    metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    reject(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                metrics.accepted.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    // Pool already gone (shutdown raced us).
                    active.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping `tx` closes the channel; workers exit after their current
    // connection drains.
}

/// Tells an over-capacity client why it is being turned away.
fn reject(mut stream: TcpStream) {
    let resp = Response::Error {
        code: ErrorCode::Unavailable,
        message: "server at connection capacity".into(),
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    if let Ok(payload) = resp.encode() {
        let _ = frame::write_frame(&mut stream, &payload);
    }
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    db: SharedDatabase,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    active: Arc<AtomicUsize>,
    sessions: Arc<AtomicU64>,
    config: ServerConfig,
) {
    loop {
        match rx.recv_timeout(POLL_SLICE) {
            Ok(stream) => {
                let id = sessions.fetch_add(1, Ordering::Relaxed) + 1;
                let session = Session::new(id, db.clone());
                serve_connection(stream, session, &shutdown, &metrics, &config);
                active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Outcome of trying to read one frame within a poll slice.
enum ReadStep {
    Frame(Vec<u8>),
    Eof,
    Idle,
    Failed(FrameError),
}

fn serve_connection(
    mut stream: TcpStream,
    mut session: Session,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    loop {
        match read_step(&mut stream, config.read_timeout) {
            ReadStep::Idle => {
                // Between frames: an idle client is fine, but shutdown
                // means we stop waiting for it.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            ReadStep::Eof => return,
            ReadStep::Failed(err) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                // Best effort: the stream may no longer be writable, and
                // after a framing error it is not re-usable anyway.
                if let Ok(payload) = Response::from_frame_error(&err).encode() {
                    let _ = frame::write_frame(&mut stream, &payload);
                }
                return;
            }
            ReadStep::Frame(payload) => {
                metrics.requests.fetch_add(1, Ordering::Relaxed);
                let response = match Request::decode(&payload) {
                    Ok(request) => session.handle(request),
                    Err(err) => Response::from_error(&err),
                };
                if response.is_error() {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
                let payload = match response.encode() {
                    Ok(p) => p,
                    Err(_) => Response::Error {
                        code: ErrorCode::Execution,
                        message: "response serialisation failed".into(),
                    }
                    .encode()
                    .expect("static error response encodes"),
                };
                if frame::write_frame(&mut stream, &payload).is_err() {
                    return;
                }
                metrics.responses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Reads one frame, waking every [`POLL_SLICE`] while idle.
///
/// Waiting for the *start* of a frame returns [`ReadStep::Idle`] each
/// slice so the caller can check the shutdown flag — an idle session may
/// sit for hours. Once the first header byte has arrived the rest of the
/// frame must follow within `read_timeout` (slow-loris defence).
fn read_step(stream: &mut TcpStream, read_timeout: Duration) -> ReadStep {
    let mut header = [0u8; HEADER_LEN];
    match read_full(stream, &mut header, read_timeout, true) {
        Fill::Done => {}
        Fill::Empty => return ReadStep::Eof,
        Fill::Idle => return ReadStep::Idle,
        Fill::TimedOut(have) | Fill::Short(have) => {
            return ReadStep::Failed(FrameError::Truncated {
                have,
                need: HEADER_LEN,
            })
        }
        Fill::Err(e) => return ReadStep::Failed(e),
    }
    let claimed = u32::from_be_bytes(header) as usize;
    if claimed > MAX_FRAME {
        return ReadStep::Failed(FrameError::Oversized {
            claimed,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; claimed];
    match read_full(stream, &mut payload, read_timeout, false) {
        Fill::Done => ReadStep::Frame(payload),
        Fill::Empty => ReadStep::Failed(FrameError::Truncated {
            have: 0,
            need: claimed,
        }),
        Fill::Idle | Fill::TimedOut(0) => ReadStep::Failed(FrameError::Truncated {
            have: 0,
            need: claimed,
        }),
        Fill::TimedOut(have) | Fill::Short(have) => ReadStep::Failed(FrameError::Truncated {
            have,
            need: claimed,
        }),
        Fill::Err(e) => ReadStep::Failed(e),
    }
}

enum Fill {
    /// Buffer filled.
    Done,
    /// EOF before the first byte.
    Empty,
    /// No byte arrived within one poll slice (only when `allow_idle`).
    Idle,
    /// Deadline passed with this many bytes read.
    TimedOut(usize),
    /// EOF after this many bytes.
    Short(usize),
    /// Hard I/O failure.
    Err(FrameError),
}

/// Fills `buf` from a socket whose read timeout is [`POLL_SLICE`].
///
/// With `allow_idle`, a slice that delivers no first byte returns
/// [`Fill::Idle`] (caller decides whether to keep waiting). After the
/// first byte, timeouts keep polling until `deadline` has elapsed.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Duration, allow_idle: bool) -> Fill {
    if buf.is_empty() {
        return Fill::Done;
    }
    let started = Instant::now();
    let mut filled = 0;
    loop {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Fill::Empty
                } else {
                    Fill::Short(filled)
                }
            }
            Ok(n) => {
                filled += n;
                if filled == buf.len() {
                    return Fill::Done;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && allow_idle {
                    return Fill::Idle;
                }
                if started.elapsed() >= deadline {
                    return Fill::TimedOut(filled);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Fill::Err(FrameError::Io(e.to_string())),
        }
    }
}

fn io_err(e: std::io::Error) -> FungusError {
    FungusError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError};
    use crate::protocol::{ErrorCode, Response};
    use fungus_core::Database;
    use std::io::Write;

    fn test_db() -> SharedDatabase {
        let db = SharedDatabase::new(Database::new(5));
        db.execute_ddl("CREATE CONTAINER r (v INT) WITH FUNGUS ttl(100)")
            .unwrap();
        db
    }

    #[test]
    fn end_to_end_sql_over_loopback() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        let r = client.sql("INSERT INTO r VALUES (1), (2), (3)").unwrap();
        assert!(!r.is_error(), "{r:?}");
        let r = client.sql("SELECT * FROM r WHERE v >= 2 CONSUME").unwrap();
        assert_eq!(r.row_count(), Some(2));
        let r = client.dot(".containers").unwrap();
        assert_eq!(r.row_count(), Some(1));
        client.close();
        let report = handle.shutdown().unwrap();
        assert_eq!(report.metrics.requests, report.metrics.responses);
        assert_eq!(report.metrics.requests, 4);
        assert_eq!(report.metrics.errors, 0);
    }

    #[test]
    fn sessions_are_isolated_but_share_the_catalog() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        a.sql("INSERT INTO r VALUES (7)").unwrap();
        let r = b.sql("SELECT COUNT(*) FROM r").unwrap();
        match r {
            Response::Rows { rows, .. } => {
                assert_eq!(rows[0][0], fungus_types::Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
        // Distinct sessions: each has its own id in `.session`.
        let ra = a.dot(".session").unwrap();
        let rb = b.dot(".session").unwrap();
        assert_ne!(ra, rb);
        a.close();
        b.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn capacity_overflow_is_rejected_with_a_typed_error() {
        let config = ServerConfig {
            workers: 1,
            backlog: 1,
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        // Fill the single worker and the single backlog slot.
        let c1 = Client::connect(handle.addr()).unwrap();
        let c2 = Client::connect(handle.addr()).unwrap();
        // Give the accept loop time to hand off both.
        std::thread::sleep(Duration::from_millis(100));
        let mut c3 = Client::connect(handle.addr()).unwrap();
        match c3.ping() {
            Err(ClientError::Protocol(_)) | Err(ClientError::Disconnected) => {}
            Ok(()) => panic!("third connection should have been rejected"),
            Err(ClientError::Frame(_)) => {} // reset before the reply arrived
        }
        drop(c3);
        c1.close();
        c2.close();
        let report = handle.shutdown().unwrap();
        assert!(report.metrics.rejected >= 1, "{:?}", report.metrics);
    }

    #[test]
    fn malformed_frames_get_a_protocol_error_not_a_crash() {
        let handle = serve(test_db(), ServerConfig::default()).unwrap();
        // A raw socket speaking garbage: oversized length prefix.
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        raw.flush().unwrap();
        // The server answers with a typed protocol error, then hangs up.
        // (Acceptable alternate: connection reset before we read.)
        if let Ok(Some(payload)) = frame::read_frame(&mut raw) {
            let resp = Response::decode(&payload).unwrap();
            assert!(matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Protocol,
                    ..
                }
            ));
        }
        drop(raw);
        // The server is still healthy for well-formed clients.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        client.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn decay_driver_ticks_under_the_server() {
        let config = ServerConfig {
            tick_period: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.sql("INSERT INTO r VALUES (1)").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let now = handle.db().now();
        assert!(now.get() >= 10, "decay clock stuck at {now:?}");
        client.close();
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_flushes_a_checkpoint() {
        let dir = std::env::temp_dir().join(format!("fungus-srv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let handle = serve(test_db(), config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.sql("INSERT INTO r VALUES (1), (2)").unwrap();
        client.close();
        let report = handle.shutdown().unwrap();
        assert!(report.checkpointed);
        assert!(dir.join("MANIFEST").exists());
        assert!(dir.join("r.snap").exists());

        // The checkpoint restores into a fresh database.
        let mut restored = Database::new(5);
        restored.restore_checkpoint(&dir).unwrap();
        assert_eq!(restored.container("r").unwrap().read().live_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
