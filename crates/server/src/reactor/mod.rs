//! `fungus-reactor`: the event-driven connection layer.
//!
//! Sessions as state machines over a readiness reactor — the second
//! I/O model behind [`ServerConfig::io_model`], built for live-session
//! counts far beyond the worker-thread bound of the threaded baseline:
//!
//! ```text
//!  accept thread ──enroll──► ReactorShared.registry ─┐   (self-pipe wake)
//!                                                    ▼
//!                 ┌───────────────── reactor thread ────────────────┐
//!                 │  Poller (epoll / poll) ◄── Waker self-pipe      │
//!                 │  slot table: SessionConn state machines         │
//!                 │  readable → FramePump → pending requests        │
//!                 │  writable → drain out buffers                   │
//!                 └──────┬──────────────────────────────▲───────────┘
//!                        │ Job (bounded try_send;       │ Completion
//!                        │ Full ⇒ backpressure)         │ (+ wake)
//!                        ▼                              │
//!                   crossbeam worker pool ──────────────┘
//!                   (same supervised pool as the threaded model)
//! ```
//!
//! **Backpressure contract:** the dispatch queue is bounded. When
//! `try_send` reports it full, the reactor parks the request back on
//! its connection, *drops read interest* for that socket (level-
//! triggered pollers make this lossless), and counts a stall tick;
//! `.health` probes are answered inline with a typed `Unavailable`
//! error instead of queueing, so monitoring stays responsive while the
//! pool is saturated.
//!
//! **Wakeup protocol:** workers finish jobs onto a per-reactor
//! completion queue and write one byte into the reactor's self-pipe;
//! the accept thread does the same after enrolling a socket. The pipe
//! is nonblocking on both ends — a full pipe means a wake is already
//! pending, which is all a wake must guarantee. The reactor drains the
//! pipe once per tick and counts the coalesced bytes.
//!
//! The frame codec and the fault layer survive unchanged: every
//! connection advances through the same [`FramePump`] the blocking
//! model and the chaos reference drain use, and `FaultPlan`-wrapped
//! streams inject the same seeded schedule.
//!
//! [`ServerConfig::io_model`]: crate::server::ServerConfig
//! [`FramePump`]: crate::frame::FramePump

pub mod conn;
pub mod poller;

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};
use fungus_core::SharedDatabase;
use fungus_lint_rt::{hierarchy, OrderedMutex};

use crate::fault::Faulty;
use crate::protocol::{ErrorCode, Request, Response};
use crate::server::{ServerConfig, POLL_SLICE};
use crate::session::Session;
use crate::stats::ServerStats;
use conn::{ConnState, SessionConn};
use poller::{Event, Interest, Poller, WakeReader, Waker};

/// Reserved poller token for the self-pipe wake reader; connection
/// tokens are `slot index + 1`.
const WAKER_TOKEN: usize = 0;

/// Poll slices a graceful drain waits for in-flight jobs before
/// force-closing what remains (≈ 5 s at the 50 ms slice).
const DRAIN_TICKS: u32 = 100;

/// A connection's transport under the reactor: bare socket, or the
/// seeded fault layer around it.
pub(crate) enum ConnStream {
    /// No fault plan: zero-overhead passthrough.
    Plain(TcpStream),
    /// Wrapped by a seeded [`Faulty`] schedule.
    Faulted(Box<Faulty<TcpStream>>),
}

impl ConnStream {
    fn raw_fd(&self) -> RawFd {
        match self {
            ConnStream::Plain(s) => s.as_raw_fd(),
            ConnStream::Faulted(f) => f.get_ref().as_raw_fd(),
        }
    }

    fn injected(&self) -> u64 {
        match self {
            ConnStream::Plain(_) => 0,
            ConnStream::Faulted(f) => f.injected(),
        }
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.read(buf),
            ConnStream::Faulted(f) => f.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.write(buf),
            ConnStream::Faulted(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Plain(s) => s.flush(),
            ConnStream::Faulted(f) => f.flush(),
        }
    }
}

/// One decoded request travelling to the worker pool. The session rides
/// along (it is single-threaded state) and comes home in the
/// [`Completion`].
pub(crate) struct Job {
    shared: Arc<ReactorShared>,
    token: usize,
    conn_id: u64,
    doomed: bool,
    fault_seed: u64,
    session: Session,
    payload: Vec<u8>,
}

enum CompletionOutcome {
    /// The worker produced a response; the session comes home. Boxed so
    /// the queued completion stays pointer-sized next to `Poisoned`.
    Done(Box<(Session, Response)>),
    /// The worker died mid-request (injected or organic panic): the
    /// session is gone, the connection must drop.
    Poisoned,
}

/// A finished job on its way back to the reactor.
pub(crate) struct Completion {
    token: usize,
    outcome: CompletionOutcome,
}

/// The rendezvous between one reactor thread and everyone who needs to
/// reach it: the accept thread (enrolment), the workers (completions),
/// and shutdown (wake). Both queues are leaf locks — nothing else is
/// ever held while they are, on either side.
pub(crate) struct ReactorShared {
    registry: OrderedMutex<Vec<(TcpStream, u64)>>,
    completions: OrderedMutex<Vec<Completion>>,
    waker: Waker,
}

impl ReactorShared {
    /// Builds the shared cell plus the wake-pipe read half the reactor
    /// thread registers with its poller.
    pub(crate) fn new() -> io::Result<(Arc<ReactorShared>, WakeReader)> {
        let (waker, reader) = poller::waker_pair()?;
        let shared = ReactorShared {
            registry: OrderedMutex::new(&hierarchy::REACTOR_REGISTRY, Vec::new()),
            completions: OrderedMutex::new(&hierarchy::REACTOR_COMPLETIONS, Vec::new()),
            waker,
        };
        Ok((Arc::new(shared), reader))
    }

    /// Hands a freshly accepted (already nonblocking) socket to this
    /// reactor. Called from the accept thread.
    pub(crate) fn enroll(&self, stream: TcpStream, conn_id: u64) {
        self.registry.lock().push((stream, conn_id));
        self.waker.wake();
    }

    /// Parks a finished job for pickup and nudges the reactor.
    fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
        self.waker.wake();
    }

    /// Interrupts the reactor's poll wait (shutdown path).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// Delivers a `Poisoned` completion if the job never finishes — armed
/// across the request so a panicking worker (the chaos suite injects
/// them) still hands the connection's corpse back to the reactor
/// instead of leaking the slot in `Queued` forever.
struct PoisonGuard {
    shared: Option<Arc<ReactorShared>>,
    token: usize,
}

impl PoisonGuard {
    fn finish(&mut self, session: Session, response: Response) {
        if let Some(shared) = self.shared.take() {
            shared.complete(Completion {
                token: self.token,
                outcome: CompletionOutcome::Done(Box::new((session, response))),
            });
        }
    }
}

impl Drop for PoisonGuard {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            shared.complete(Completion {
                token: self.token,
                outcome: CompletionOutcome::Poisoned,
            });
        }
    }
}

/// The worker-pool loop for the reactor model: pull jobs, run them
/// through the session, send completions home. Mirrors the threaded
/// `worker_loop`'s shutdown discipline (drain the queue, then exit).
pub(crate) fn job_loop(rx: &Receiver<Job>, shutdown: &AtomicBool) {
    loop {
        match rx.recv_timeout(POLL_SLICE) {
            Ok(job) => run_job(job),
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn run_job(job: Job) {
    let Job {
        shared,
        token,
        conn_id,
        doomed,
        fault_seed,
        mut session,
        payload,
    } = job;
    let mut guard = PoisonGuard {
        shared: Some(shared),
        token,
    };
    if doomed {
        // The unwind delivers a Poisoned completion through the guard
        // (the reactor drops the connection) and kills this worker; the
        // supervisor counts the corpse and respawns it.
        // lint: allow(panic, "injected fault: the supervisor's respawn path is under test")
        panic!("injected worker panic on connection {conn_id} (fault seed {fault_seed})");
    }
    let response = match Request::decode(&payload) {
        Ok(request) => session.handle(request),
        Err(err) => Response::from_error(&err),
    };
    guard.finish(session, response);
}

/// True when `payload` is a `.health` probe — the one request the
/// overloaded fail-fast path answers inline instead of queueing.
fn is_health_probe(payload: &[u8]) -> bool {
    matches!(Request::decode(payload), Ok(Request::Dot { ref line }) if line.trim() == ".health")
}

/// Everything one reactor thread owns.
pub(crate) struct ReactorCtx {
    /// Rendezvous cell shared with accept/workers/shutdown.
    pub shared: Arc<ReactorShared>,
    /// Read half of the self-pipe.
    pub wake_rx: WakeReader,
    /// The readiness backend (built in `serve` so bind-time errors
    /// surface to the caller).
    pub poller: Box<dyn Poller>,
    /// Catalog handle for building sessions.
    pub db: SharedDatabase,
    /// Shared counters.
    pub stats: Arc<ServerStats>,
    /// Server-wide shutdown flag.
    pub shutdown: Arc<AtomicBool>,
    /// Server-wide live-connection count (the accept loop's admission
    /// gauge); the reactor decrements it on close.
    pub active: Arc<AtomicUsize>,
    /// Bounded dispatch queue into the worker pool.
    pub jobs: Sender<Job>,
    /// Server tuning knobs (timeouts, fault plan).
    pub config: ServerConfig,
}

struct Slot {
    conn: SessionConn<ConnStream>,
    id: u64,
    armed: Interest,
    /// First dispatched request must panic its worker (injected fault).
    doomed: bool,
    /// Dispatch is parked on a full queue; read interest is dropped
    /// until the queue drains.
    stalled: bool,
}

/// Duration → whole poll slices, rounded up, at least one.
fn ticks_for(d: Duration) -> u32 {
    let slice = POLL_SLICE.as_millis().max(1);
    (d.as_millis().div_ceil(slice)).clamp(1, u32::MAX as u128) as u32
}

/// The reactor thread: poll readiness, advance session state machines,
/// dispatch decoded requests, absorb completions, reconcile interest.
pub(crate) fn reactor_loop(mut ctx: ReactorCtx) {
    let mut slots: Vec<Option<Slot>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    if ctx
        .poller
        .register(ctx.wake_rx.fd(), WAKER_TOKEN, Interest::READ)
        .is_err()
    {
        // Without a wake pipe the reactor cannot be reached; it must
        // not run (serve() verified the poller, so this is unreachable
        // in practice).
        return;
    }

    let read_limit = ticks_for(ctx.config.read_timeout);
    let write_limit = ticks_for(ctx.config.write_timeout);
    let stall_limit = read_limit.max(write_limit);

    // lint: allow(determinism, "socket timeout deadlines are wall-clock by definition")
    let mut last_sweep = Instant::now();
    let mut drain_ticks = 0u32;

    loop {
        let shutting_down = ctx.shutdown.load(Ordering::SeqCst);

        // New enrolments from the accept thread. The guard is dropped
        // before any session work: the registry is a leaf lock.
        let incoming: Vec<(TcpStream, u64)> = std::mem::take(&mut *ctx.shared.registry.lock());
        for (stream, id) in incoming {
            if shutting_down {
                // Draining: late arrivals are turned away silently (the
                // accept loop already stopped; this is a race remnant).
                ctx.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            enroll(&mut ctx, &mut slots, &mut free, stream, id);
        }

        if ctx.poller.wait(&mut events, POLL_SLICE).is_err() {
            // The poller itself failed (not EINTR — that reports empty).
            // Nothing can make progress again: release everything.
            for idx in 0..slots.len() {
                release(&mut ctx, &mut slots, &mut free, idx);
            }
            return;
        }

        // Readiness events → state machine steps.
        let mut ready_events = 0u64;
        let mut wake_bytes = 0u64;
        for &ev in events.iter() {
            if ev.token == WAKER_TOKEN {
                wake_bytes += ctx.wake_rx.drain();
                continue;
            }
            ready_events += 1;
            let idx = ev.token - 1;
            let Some(slot) = slots.get_mut(idx).and_then(|s| s.as_mut()) else {
                continue;
            };
            if ev.readable {
                let out = slot.conn.on_readable();
                bump(&ctx.stats.requests, out.decoded as u64);
                if out.framing_error {
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            if ev.writable {
                let out = slot.conn.on_writable();
                bump(&ctx.stats.responses, out.responses as u64);
            }
        }
        bump(&ctx.stats.reactor_ready_events, ready_events);
        bump(&ctx.stats.reactor_wakeups, wake_bytes);

        // Completions home from the worker pool.
        let finished: Vec<Completion> = std::mem::take(&mut *ctx.shared.completions.lock());
        for c in finished {
            let idx = c.token - 1;
            let Some(slot) = slots.get_mut(idx).and_then(|s| s.as_mut()) else {
                continue;
            };
            match c.outcome {
                CompletionOutcome::Done(done) => {
                    let (session, response) = *done;
                    if slot.conn.complete(session, &response) {
                        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    ctx.stats
                        .reactor_write_hwm
                        .fetch_max(slot.conn.out_len() as u64, Ordering::Relaxed);
                    // Optimistic flush: most responses fit the socket
                    // buffer, saving a poll round-trip.
                    let out = slot.conn.on_writable();
                    bump(&ctx.stats.responses, out.responses as u64);
                    // The dispatch freed pipeline capacity: decode what
                    // the pump already buffered (the poller will not
                    // re-fire for bytes we already hold).
                    let d = slot.conn.decode_buffered();
                    bump(&ctx.stats.requests, d.decoded as u64);
                    if d.framing_error {
                        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                CompletionOutcome::Poisoned => slot.conn.poison(),
            }
        }

        // Dispatch decoded requests onto the bounded worker queue.
        if !shutting_down {
            let fault_seed = ctx
                .config
                .fault_plan
                .as_ref()
                .map(|p| p.seed())
                .unwrap_or(0);
            for (idx, entry) in slots.iter_mut().enumerate() {
                let Some(slot) = entry.as_mut() else {
                    continue;
                };
                let Some((session, payload)) = slot.conn.next_dispatch() else {
                    continue;
                };
                let job = Job {
                    shared: Arc::clone(&ctx.shared),
                    token: idx + 1,
                    conn_id: slot.id,
                    doomed: slot.doomed,
                    fault_seed,
                    session,
                    payload,
                };
                match ctx.jobs.try_send(job) {
                    Ok(()) => {
                        slot.doomed = false;
                        slot.stalled = false;
                    }
                    Err(TrySendError::Full(job)) => {
                        // Backpressure: count the stall, park the
                        // request, stop polling this socket readable.
                        // Health probes fail fast instead of queueing.
                        ctx.stats.reactor_stalls.fetch_add(1, Ordering::Relaxed);
                        let Job {
                            session, payload, ..
                        } = job;
                        if is_health_probe(&payload) {
                            let resp = Response::Error {
                                code: ErrorCode::Unavailable,
                                message: "server overloaded: dispatch queue full".into(),
                            };
                            slot.conn.complete(session, &resp);
                            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                            let out = slot.conn.on_writable();
                            bump(&ctx.stats.responses, out.responses as u64);
                        } else {
                            slot.conn.requeue(session, payload);
                            slot.stalled = true;
                        }
                    }
                    Err(TrySendError::Disconnected(job)) => {
                        // Pool gone: shutdown raced us; park the request
                        // and let the drain below close the connection.
                        let Job {
                            session, payload, ..
                        } = job;
                        slot.conn.requeue(session, payload);
                    }
                }
            }
        }

        // Stall clock: at most once per wall poll slice, so a busy
        // reactor (wait returning instantly) does not age connections
        // thousands of times a second.
        // lint: allow(determinism, "socket timeout deadlines are wall-clock by definition")
        let now = Instant::now();
        let sweep_stalls = now.duration_since(last_sweep) >= POLL_SLICE;
        if sweep_stalls {
            last_sweep = now;
            if shutting_down {
                drain_ticks = drain_ticks.saturating_add(1);
            }
        }

        // Close + interest reconciliation sweep.
        for idx in 0..slots.len() {
            let close = {
                let Some(slot) = slots[idx].as_mut() else {
                    continue;
                };
                let timed_out = sweep_stalls && slot.conn.tick_stall() > stall_limit;
                let drained_out = shutting_down
                    && slot.conn.state() != ConnState::Queued
                    && !slot.conn.wants_write();
                slot.conn.should_close() || timed_out || drained_out
            };
            if close {
                release(&mut ctx, &mut slots, &mut free, idx);
                continue;
            }
            let Some(slot) = slots[idx].as_mut() else {
                continue;
            };
            let desired = Interest {
                readable: !shutting_down && !slot.stalled && slot.conn.wants_read(),
                writable: slot.conn.wants_write(),
            };
            if desired != slot.armed {
                let fd = slot.conn.stream().raw_fd();
                if ctx.poller.reregister(fd, idx + 1, desired).is_ok() {
                    slot.armed = desired;
                }
            }
        }

        if shutting_down {
            // Idle and fully-flushed connections were released by the
            // sweep above; what remains is waiting on a worker completion
            // or a slow peer's socket buffer. Give those a bounded drain,
            // then force the stragglers closed.
            let open = slots.iter().filter(|s| s.is_some()).count();
            if open == 0 {
                return;
            }
            if drain_ticks > DRAIN_TICKS {
                for idx in 0..slots.len() {
                    release(&mut ctx, &mut slots, &mut free, idx);
                }
                return;
            }
        }
    }
}

/// Relaxed add, skipping the RMW when there is nothing to add.
fn bump(counter: &std::sync::atomic::AtomicU64, n: u64) {
    if n > 0 {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Builds the session + state machine for an accepted socket and
/// registers it with the poller.
fn enroll(
    ctx: &mut ReactorCtx,
    slots: &mut Vec<Option<Slot>>,
    free: &mut Vec<usize>,
    stream: TcpStream,
    id: u64,
) {
    let fd = stream.as_raw_fd();
    let session = Session::new(id, ctx.db.clone()).with_stats(Arc::clone(&ctx.stats));
    let (transport, doomed) = match &ctx.config.fault_plan {
        Some(plan) => {
            let schedule = plan.schedule_for(id);
            let doomed = schedule.panics_worker();
            if plan.wraps_streams() {
                (
                    ConnStream::Faulted(Box::new(Faulty::new(stream, schedule))),
                    doomed,
                )
            } else {
                (ConnStream::Plain(stream), doomed)
            }
        }
        None => (ConnStream::Plain(stream), false),
    };
    let idx = free.pop().unwrap_or_else(|| {
        slots.push(None);
        slots.len() - 1
    });
    match ctx.poller.register(fd, idx + 1, Interest::READ) {
        Ok(()) => {
            slots[idx] = Some(Slot {
                conn: SessionConn::new(transport, session),
                id,
                armed: Interest::READ,
                doomed,
                stalled: false,
            });
            ctx.stats.reactor_sessions.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            // Registration failed (fd limit, dead socket): drop it and
            // give the admission gauge its slot back.
            free.push(idx);
            ctx.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Tears a connection down: deregister, fault accounting, gauges.
fn release(ctx: &mut ReactorCtx, slots: &mut [Option<Slot>], free: &mut Vec<usize>, idx: usize) {
    let Some(slot) = slots[idx].take() else {
        return;
    };
    let stream = slot.conn.into_stream();
    let _ = ctx.poller.deregister(stream.raw_fd());
    ctx.stats.add_faults(stream.injected());
    ctx.stats.reactor_sessions.fetch_sub(1, Ordering::Relaxed);
    ctx.active.fetch_sub(1, Ordering::SeqCst);
    free.push(idx);
}
