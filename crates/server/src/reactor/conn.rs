//! The per-connection session state machine.
//!
//! Under the reactor, a connection is not a thread — it is an explicit
//! state machine advanced by readiness events:
//!
//! ```text
//!            readable event                 dispatch (bounded queue)
//!   Reading ────────────────► frames decoded ─────────────► Queued
//!      ▲                      (FramePump, shared                │
//!      │                       with the blocking path)          │ completion
//!      │ out buffer drained                                     ▼
//!      └──────────────────────── Writing ◄──────────── response encoded
//!                                   │
//!                                   │ fatal frame error / poisoned worker
//!                                   ▼
//!                                Closing (flush best-effort, then drop)
//! ```
//!
//! The machine is generic over its stream so the property suite can
//! drive it byte-at-a-time over in-memory and [`Faulty`] streams with
//! no sockets involved — the exact code the reactor runs in production.
//!
//! [`Faulty`]: crate::fault::Faulty

use std::collections::VecDeque;
use std::io::{Read, Write};

use bytes::{Buf, BytesMut};

use crate::frame::{encode_frame, FramePump, PumpStep};
use crate::protocol::{ErrorCode, Response};
use crate::session::Session;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Pumping request bytes; the session is resident.
    Reading,
    /// A decoded request is on the worker queue — the session travelled
    /// with it, so nothing else dispatches until the completion returns.
    Queued,
    /// Encoded responses are buffered and draining to the socket.
    Writing,
    /// Flush what remains (best effort), then close: a fatal framing
    /// error, a poisoned worker, or the peer is done.
    Closing,
}

/// Cap on decoded-but-undispatched pipelined requests per connection:
/// past this the reactor stops pumping the socket, so one client
/// pipelining faster than the pool drains cannot buffer unbounded
/// requests server-side.
pub const PIPELINE_MAX: usize = 32;

/// Cap on pump steps per readable event so a firehose connection cannot
/// starve the rest of the reactor's tick (level-triggered pollers
/// re-report whatever is left).
const READS_PER_EVENT: usize = 16;

/// What a readable event produced.
#[derive(Debug, Default, Clone, Copy)]
pub struct PumpOutcome {
    /// Fresh request frames decoded into the pending queue.
    pub decoded: usize,
    /// A framing error was converted into a typed error response; the
    /// connection closes once the response flushes.
    pub framing_error: bool,
    /// The transport is gone (hard I/O error): close now, skip flushing.
    pub dead: bool,
}

/// What a writable event produced.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlushOutcome {
    /// Complete response frames that finished flushing to the socket.
    pub responses: usize,
    /// The transport is gone: close now.
    pub dead: bool,
}

/// One connection multiplexed on a reactor thread: socket, incremental
/// frame pump, pipelined-request queue, and the write-side buffer.
pub struct SessionConn<S> {
    stream: S,
    pump: FramePump,
    /// Decoded request payloads not yet dispatched, in arrival order.
    pending: VecDeque<Vec<u8>>,
    /// Encoded response bytes awaiting the socket.
    out: BytesMut,
    /// Length of each response frame inside `out`, in order — the
    /// committed-response accounting the flush path pops from.
    out_frames: VecDeque<usize>,
    state: ConnState,
    /// Resident except while a request is [`ConnState::Queued`] (it
    /// travels to the worker inside the job and back in the completion).
    session: Option<Session>,
    /// The peer half-closed; serve what was pipelined, then close.
    peer_eof: bool,
    /// Consecutive ticks without progress while mid-frame or mid-flush
    /// (the reactor's slow-loris / dead-peer defence).
    stalled_ticks: u32,
}

impl<S: Read + Write> SessionConn<S> {
    /// A fresh connection in [`ConnState::Reading`].
    pub fn new(stream: S, session: Session) -> SessionConn<S> {
        SessionConn {
            stream,
            pump: FramePump::new(),
            pending: VecDeque::new(),
            out: BytesMut::new(),
            out_frames: VecDeque::new(),
            state: ConnState::Reading,
            session: Some(session),
            peer_eof: false,
            stalled_ticks: 0,
        }
    }

    /// Current phase.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// The underlying stream (for fd extraction / fault accounting).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// True while the reactor should subscribe to readable events:
    /// the peer is still sending, the machine is not closing, and the
    /// pipelined backlog is under its cap.
    pub fn wants_read(&self) -> bool {
        !self.peer_eof && self.state != ConnState::Closing && self.pending.len() < PIPELINE_MAX
    }

    /// True while bytes are buffered for the socket.
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Bytes currently buffered on the write side (high-water telemetry).
    pub fn out_len(&self) -> usize {
        self.out.len()
    }

    /// Decoded requests waiting for dispatch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Decodes complete frames out of the pump into the pending queue,
    /// stopping at the pipeline cap. Returns `false` when the stream
    /// can no longer be framed (oversized header, or EOF stranded a
    /// partial frame) — a typed error response has been queued and the
    /// machine is [`ConnState::Closing`].
    fn drain_decoded(&mut self, outcome: &mut PumpOutcome) -> bool {
        while self.pending.len() < PIPELINE_MAX {
            match self.pump.next_frame() {
                Ok(Some(frame)) => {
                    self.pending.push_back(frame.to_vec());
                    outcome.decoded += 1;
                }
                Ok(None) => {
                    // No complete frame left. If the peer already hung
                    // up, whatever remains buffered can never complete:
                    // typed truncation, then close — same contract as
                    // the threaded model.
                    if self.peer_eof {
                        if let Some(trunc) = self.pump.truncation() {
                            self.enqueue_response(&Response::from_frame_error(&trunc));
                            outcome.framing_error = true;
                            self.state = ConnState::Closing;
                            return false;
                        }
                    }
                    return true;
                }
                Err(e) => {
                    // Oversized/garbled header: the stream can no longer
                    // be framed. Answer typed, then close.
                    self.enqueue_response(&Response::from_frame_error(&e));
                    outcome.framing_error = true;
                    self.state = ConnState::Closing;
                    return false;
                }
            }
        }
        true
    }

    /// A readable event: pump the socket through the shared
    /// [`FramePump`], decoding complete frames into the pending queue.
    /// Bounded to `READS_PER_EVENT` reads and stops early when the
    /// pipeline cap is hit — level-triggered pollers re-report the rest.
    pub fn on_readable(&mut self) -> PumpOutcome {
        let mut outcome = PumpOutcome::default();
        if self.state == ConnState::Closing {
            return outcome;
        }
        // Frames may already be buffered from a cap-limited earlier
        // event; surface them before touching the socket.
        if !self.drain_decoded(&mut outcome) {
            return outcome;
        }
        if self.peer_eof {
            return outcome;
        }
        for _ in 0..READS_PER_EVENT {
            if self.pending.len() >= PIPELINE_MAX {
                break;
            }
            match self.pump.pump(&mut self.stream) {
                PumpStep::Fed(_) => {
                    self.stalled_ticks = 0;
                    if !self.drain_decoded(&mut outcome) {
                        return outcome;
                    }
                }
                PumpStep::Blocked => break,
                PumpStep::Eof => {
                    self.peer_eof = true;
                    // Re-run the drain so a stranded partial frame is
                    // reported now (or later, once the cap frees).
                    self.drain_decoded(&mut outcome);
                    break;
                }
                PumpStep::Failed(_) => {
                    outcome.dead = true;
                    self.transport_dead();
                    break;
                }
            }
        }
        outcome
    }

    /// Decodes frames already buffered in the pump once dispatch frees
    /// pipeline capacity. Needed because a level-triggered poller never
    /// re-fires for bytes the reactor has already read off the socket.
    pub fn decode_buffered(&mut self) -> PumpOutcome {
        let mut outcome = PumpOutcome::default();
        if self.state != ConnState::Closing {
            self.drain_decoded(&mut outcome);
        }
        outcome
    }

    /// Takes the next request for the worker pool, moving the machine to
    /// [`ConnState::Queued`]. `None` while a request is already in
    /// flight, nothing is pending, or the connection is closing.
    pub fn next_dispatch(&mut self) -> Option<(Session, Vec<u8>)> {
        if self.state == ConnState::Closing || self.state == ConnState::Queued {
            return None;
        }
        if self.session.is_none() || self.pending.is_empty() {
            return None;
        }
        let payload = self.pending.pop_front()?;
        let session = self.session.take()?;
        self.state = ConnState::Queued;
        self.stalled_ticks = 0;
        Some((session, payload))
    }

    /// Puts a dispatched request back (the dispatch queue was full):
    /// the machine returns to [`ConnState::Reading`] and the request to
    /// the front of the pending queue, preserving order.
    pub fn requeue(&mut self, session: Session, payload: Vec<u8>) {
        self.pending.push_front(payload);
        self.session = Some(session);
        if self.state == ConnState::Queued {
            self.state = ConnState::Reading;
        }
    }

    /// A completion from the worker pool: the session comes home and the
    /// encoded response joins the write buffer. Returns whether the
    /// response was an error (for the `errors` counter).
    pub fn complete(&mut self, session: Session, response: &Response) -> bool {
        self.session = Some(session);
        if self.state == ConnState::Queued {
            self.state = ConnState::Writing;
        }
        self.stalled_ticks = 0;
        self.enqueue_response(response)
    }

    /// The worker processing this connection's request died: the session
    /// is gone with it. Drop the connection like the threaded model does
    /// (the client sees a reset, the chaos suite counts the corpse).
    pub fn poison(&mut self) {
        self.session = None;
        self.out.clear();
        self.out_frames.clear();
        self.pending.clear();
        self.state = ConnState::Closing;
    }

    /// The transport is gone (hard I/O error or reset): nothing buffered
    /// can ever be delivered and nothing pending can ever be answered.
    /// Drop it all so [`SessionConn::should_close`] turns true at once —
    /// a dead socket reports error-readiness to a level-triggered poller
    /// unconditionally, so leaving it half-open would spin the reactor.
    fn transport_dead(&mut self) {
        self.out.clear();
        self.out_frames.clear();
        self.pending.clear();
        self.state = ConnState::Closing;
    }

    /// Encodes `response` onto the write buffer (with the same fallback
    /// chain as the threaded model). Returns whether it was an error
    /// response. Used by completions and by the reactor's fail-fast
    /// overload path.
    pub fn enqueue_response(&mut self, response: &Response) -> bool {
        let is_error = response.is_error();
        let fallback = Response::Error {
            code: ErrorCode::Execution,
            message: "response serialisation failed".into(),
        };
        let payload = match response.encode().or_else(|_| fallback.encode()) {
            Ok(p) => p,
            // Even the static fallback failed to encode: the connection
            // is unanswerable; close it rather than crash the reactor.
            Err(_) => {
                self.state = ConnState::Closing;
                return is_error;
            }
        };
        match encode_frame(&payload) {
            Ok(frame) => {
                self.out_frames.push_back(frame.len());
                self.out.extend_from_slice(&frame);
                if self.state == ConnState::Reading {
                    self.state = ConnState::Writing;
                }
            }
            Err(_) => self.state = ConnState::Closing,
        }
        is_error
    }

    /// A writable event (or an optimistic flush after a completion):
    /// drains the write buffer until the socket blocks or it empties.
    pub fn on_writable(&mut self) -> FlushOutcome {
        let mut outcome = FlushOutcome::default();
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => {
                    outcome.dead = true;
                    self.transport_dead();
                    return outcome;
                }
                Ok(n) => {
                    self.stalled_ticks = 0;
                    self.out.advance(n);
                    let mut written = n;
                    while written > 0 {
                        match self.out_frames.front_mut() {
                            Some(rem) if *rem > written => {
                                *rem -= written;
                                written = 0;
                            }
                            Some(rem) => {
                                written -= *rem;
                                self.out_frames.pop_front();
                                outcome.responses += 1;
                            }
                            None => break,
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return outcome;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    outcome.dead = true;
                    self.transport_dead();
                    return outcome;
                }
            }
        }
        // Flush also pushes the kernel to send what it buffered; errors
        // here surface on the next write.
        let _ = self.stream.flush();
        if self.state == ConnState::Writing {
            self.state = ConnState::Reading;
        }
        outcome
    }

    /// Whether the connection is finished and should be dropped: closing
    /// with nothing left to flush, or the peer is done and every
    /// pipelined request has been served.
    pub fn should_close(&self) -> bool {
        match self.state {
            ConnState::Closing => self.out.is_empty(),
            ConnState::Queued => false,
            _ => self.peer_eof && self.pending.is_empty() && self.out.is_empty(),
        }
    }

    /// One reactor tick for the stall clock: counts ticks while the
    /// connection is mid-frame or mid-flush without progress (idle
    /// between frames does not count — idle sessions may sit for hours).
    /// Returns the consecutive stalled tick count.
    pub fn tick_stall(&mut self) -> u32 {
        let stalled =
            (self.pump.mid_frame() || !self.out.is_empty()) && self.state != ConnState::Queued;
        if stalled {
            self.stalled_ticks = self.stalled_ticks.saturating_add(1);
        } else {
            self.stalled_ticks = 0;
        }
        self.stalled_ticks
    }

    /// Tears the machine apart for fault accounting at close.
    pub fn into_stream(self) -> S {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use fungus_core::{Database, SharedDatabase};
    use std::io;

    /// An in-memory duplex: reads from a scripted input (with optional
    /// WouldBlock interleavings), writes into a capture buffer with a
    /// bounded per-call budget to exercise partial writes.
    struct MemStream {
        input: Vec<u8>,
        pos: usize,
        chunk: usize,
        block_every: usize,
        reads: usize,
        wrote: Vec<u8>,
        write_budget: usize,
        die_on_write: bool,
    }

    impl MemStream {
        fn new(input: Vec<u8>, chunk: usize) -> MemStream {
            MemStream {
                input,
                pos: 0,
                chunk: chunk.max(1),
                block_every: 0,
                reads: 0,
                wrote: Vec::new(),
                write_budget: usize::MAX,
                die_on_write: false,
            }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reads += 1;
            if self.block_every > 0 && self.reads % self.block_every == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted"));
            }
            if self.pos >= self.input.len() {
                return Ok(0);
            }
            let n = self.chunk.min(buf.len()).min(self.input.len() - self.pos);
            buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.die_on_write {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "reset"));
            }
            if self.write_budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.write_budget);
            self.wrote.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn session() -> Session {
        let db = SharedDatabase::new(Database::new(1));
        Session::new(1, db)
    }

    fn ping_frame() -> Vec<u8> {
        encode_frame(&Request::Ping.encode().unwrap()).unwrap()
    }

    #[test]
    fn byte_at_a_time_reads_decode_without_corruption() {
        let input = [ping_frame(), ping_frame()].concat();
        let mut conn = SessionConn::new(MemStream::new(input, 1), session());
        let mut decoded = 0;
        // Each readable event pumps up to READS_PER_EVENT single bytes.
        for _ in 0..64 {
            decoded += conn.on_readable().decoded;
        }
        assert_eq!(decoded, 2);
        assert_eq!(conn.pending_len(), 2);
        assert_eq!(conn.state(), ConnState::Reading);
    }

    #[test]
    fn dispatch_travels_and_completion_comes_home() {
        let input = ping_frame();
        let mut conn = SessionConn::new(MemStream::new(input, 64), session());
        conn.on_readable();
        let (mut s, payload) = conn.next_dispatch().expect("one request pending");
        assert_eq!(conn.state(), ConnState::Queued);
        assert!(conn.next_dispatch().is_none(), "one in flight at a time");

        let resp = s.handle(Request::decode(&payload).unwrap());
        let was_error = conn.complete(s, &resp);
        assert!(!was_error);
        assert_eq!(conn.state(), ConnState::Writing);

        let flushed = conn.on_writable();
        assert_eq!(flushed.responses, 1);
        assert_eq!(conn.state(), ConnState::Reading);
        // The bytes on the wire decode back to the response.
        let wrote = conn.stream().wrote.clone();
        let mut cursor: &[u8] = &wrote;
        let payload = crate::frame::read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn partial_writes_count_responses_only_when_complete() {
        let input = ping_frame();
        let mut conn = SessionConn::new(MemStream::new(input, 64), session());
        conn.on_readable();
        let (mut s, payload) = conn.next_dispatch().unwrap();
        let resp = s.handle(Request::decode(&payload).unwrap());
        conn.complete(s, &resp);

        // Socket accepts three bytes per event: many partial flushes,
        // exactly one committed response at the end.
        conn.stream.write_budget = 3;
        let mut responses = 0;
        for _ in 0..100 {
            let out = conn.on_writable();
            responses += out.responses;
            if !conn.wants_write() {
                break;
            }
        }
        assert_eq!(responses, 1);
        assert_eq!(conn.state(), ConnState::Reading);
    }

    #[test]
    fn requeue_preserves_request_order() {
        let input = [ping_frame(), ping_frame()].concat();
        let mut conn = SessionConn::new(MemStream::new(input, 64), session());
        conn.on_readable();
        assert_eq!(conn.pending_len(), 2);
        let (s, p) = conn.next_dispatch().unwrap();
        conn.requeue(s, p.clone());
        assert_eq!(conn.state(), ConnState::Reading);
        let (_, p2) = conn.next_dispatch().unwrap();
        assert_eq!(p, p2, "requeued request dispatches first again");
    }

    #[test]
    fn eof_mid_frame_is_a_typed_truncation_then_close() {
        let mut input = ping_frame();
        input.truncate(input.len() - 1);
        let mut conn = SessionConn::new(MemStream::new(input, 64), session());
        let out = conn.on_readable();
        assert!(out.framing_error);
        assert_eq!(conn.state(), ConnState::Closing);
        assert!(conn.wants_write(), "typed error response buffered");
        conn.on_writable();
        assert!(conn.should_close());
        let wrote = conn.stream().wrote.clone();
        let mut cursor: &[u8] = &wrote;
        let payload = crate::frame::read_frame(&mut cursor).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }

    #[test]
    fn clean_eof_serves_pipelined_requests_before_closing() {
        let input = [ping_frame(), ping_frame()].concat();
        let mut conn = SessionConn::new(MemStream::new(input, 4096), session());
        conn.on_readable();
        conn.on_readable(); // observe EOF
        assert!(!conn.should_close(), "two requests still pending");
        for _ in 0..2 {
            let (mut s, p) = conn.next_dispatch().unwrap();
            let r = s.handle(Request::decode(&p).unwrap());
            conn.complete(s, &r);
            conn.on_writable();
        }
        assert!(conn.should_close(), "served everything, peer is gone");
    }

    #[test]
    fn dead_transport_closes_immediately_with_buffers_dropped() {
        let input = [ping_frame(), ping_frame()].concat();
        let mut conn = SessionConn::new(MemStream::new(input, 4096), session());
        conn.on_readable();
        let (mut s, p) = conn.next_dispatch().unwrap();
        let r = s.handle(Request::decode(&p).unwrap());
        conn.complete(s, &r);

        // The peer resets before the response flushes: the connection
        // must become closeable *now* — a dead socket reports
        // error-readiness forever, so lingering would spin the reactor.
        conn.stream.die_on_write = true;
        let out = conn.on_writable();
        assert!(out.dead);
        assert!(conn.should_close(), "dead transport lingers half-open");
        assert!(!conn.wants_write());
        assert_eq!(conn.pending_len(), 0, "undeliverable requests dropped");
    }

    #[test]
    fn poison_drops_everything() {
        let input = ping_frame();
        let mut conn = SessionConn::new(MemStream::new(input, 64), session());
        conn.on_readable();
        let (_s, _p) = conn.next_dispatch().unwrap();
        conn.poison();
        assert!(conn.should_close());
        assert!(!conn.wants_read());
        assert!(!conn.wants_write());
    }

    #[test]
    fn pipeline_cap_pauses_reading() {
        let input: Vec<u8> = std::iter::repeat_with(ping_frame)
            .take(PIPELINE_MAX + 8)
            .flatten()
            .collect();
        let mut conn = SessionConn::new(MemStream::new(input, 4096), session());
        for _ in 0..8 {
            conn.on_readable();
        }
        assert_eq!(conn.pending_len(), PIPELINE_MAX);
        assert!(!conn.wants_read(), "cap reached: stop polling readable");
        let (s, p) = conn.next_dispatch().unwrap();
        assert!(conn.wants_read(), "draining one re-arms the socket");
        conn.requeue(s, p);
    }
}
