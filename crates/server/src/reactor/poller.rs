//! Readiness polling behind a trait: hand-rolled `epoll(7)` on Linux
//! with a portable `poll(2)` fallback, plus the self-pipe waker the
//! worker pool uses to interrupt a sleeping reactor.
//!
//! No external crates: both backends declare their syscalls directly
//! against the system libc that `std` already links (the vendored-deps
//! policy covers hand-rolled bindings, not new dependencies). Both are
//! level-triggered — a socket that still has unread bytes keeps
//! reporting readable — which lets the reactor drop interest and pick
//! it back up without ever missing a byte.

use std::io::{self, Read, Write};
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness directions one registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has bytes (or EOF/error) to read.
    pub readable: bool,
    /// Report when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the resting state of an idle session.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest at all: the registration stays in the table (the fd
    /// keeps its token) but reports nothing — how a backpressured
    /// session is parked.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Bytes (or EOF) are waiting; `read` will not block.
    pub readable: bool,
    /// The send buffer has room; `write` will not block.
    pub writable: bool,
    /// The peer hung up or the socket errored; the connection is over
    /// once buffered bytes are drained.
    pub hangup: bool,
}

/// A readiness backend the reactor can drive. Implementations are
/// level-triggered and single-threaded (one poller per reactor thread);
/// cross-thread wakeups go through [`Waker`], not the poller.
pub trait Poller: Send {
    /// Backend name for `.stats`/debug output (`"epoll"` / `"poll"`).
    fn backend(&self) -> &'static str;

    /// Adds `fd` under `token` with the given interest.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Replaces the interest set of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Removes `fd` from the table. The fd must still be open (kernels
    /// drop closed fds from epoll sets themselves, but the fallback
    /// keeps its own table).
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks up to `timeout`, then fills `events` (cleared first) with
    /// every ready registration. A signal interruption reports zero
    /// events rather than an error.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()>;
}

/// Builds the best backend available: `epoll` on Linux unless
/// `force_poll` asks for the portable `poll(2)` path (used by tests to
/// cover the fallback on the platform that would never pick it).
pub fn new_poller(force_poll: bool) -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    if !force_poll {
        return Ok(Box::new(epoll::EpollPoller::new()?));
    }
    let _ = force_poll;
    Ok(Box::new(fallback::PollPoller::new()))
}

/// Clamps a timeout to whole milliseconds for the syscall ABI, rounding
/// zero-but-nonempty timeouts up so `wait` never busy-spins.
fn timeout_ms(timeout: Duration) -> c_int {
    let ms = timeout.as_millis();
    if ms == 0 && !timeout.is_zero() {
        return 1;
    }
    ms.min(i32::MAX as u128) as c_int
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    /// Kernel ABI for one epoll event. x86-64 packs the struct (the
    /// kernel shares the 32-bit layout there); other arches use natural
    /// alignment — this mirrors the uapi header exactly.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // SAFETY: signatures transcribed from the Linux epoll(7) / close(2)
    // ABI; every pointer argument is validated at the call sites below.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// The Linux backend: O(ready) wakeups, interest updates are
    /// per-fd syscalls.
    pub struct EpollPoller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        /// Opens a new epoll instance (close-on-exec).
        pub fn new() -> io::Result<EpollPoller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is reported through errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            // SAFETY: `ev` outlives the call; DEL ignores the event
            // pointer on modern kernels but we pass a valid one anyway.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    /// Interest → epoll mask. EPOLLRDHUP rides along with read interest
    /// so a peer's half-close surfaces as a readable-EOF event instead
    /// of a silent stall.
    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Poller for EpollPoller {
        fn backend(&self) -> &'static str {
            "epoll"
        }

        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            // SAFETY: `buf` is a live, writable array of `len` ABI-layout
            // events; the kernel fills at most `maxevents` entries.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy fields out by value: the packed layout forbids
                // taking references into the buffer.
                let raw_events = self.buf[i].events;
                let raw_data = self.buf[i].data;
                events.push(Event {
                    token: raw_data as usize,
                    readable: raw_events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: raw_events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    hangup: raw_events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is only
            // closed here.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

mod fallback {
    use super::*;
    use std::os::raw::c_ulong;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// POSIX `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    // SAFETY: signature transcribed from the POSIX poll(2) ABI; the fds
    // pointer is validated at the single call site below.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// The portable backend: the whole registration table is handed to
    /// `poll(2)` every wait, so each tick costs O(registered) — fine
    /// for hundreds of sessions, and always available.
    pub struct PollPoller {
        entries: Vec<(RawFd, usize, Interest)>,
        scratch: Vec<PollFd>,
    }

    impl PollPoller {
        /// An empty table.
        pub fn new() -> PollPoller {
            PollPoller {
                entries: Vec::new(),
                scratch: Vec::new(),
            }
        }
    }

    impl Poller for PollPoller {
        fn backend(&self) -> &'static str {
            "poll"
        }

        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    entry.1 = token;
                    entry.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|&(f, _, _)| f != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            self.scratch.clear();
            for &(fd, _, interest) in &self.entries {
                let mut ev = 0i16;
                if interest.readable {
                    ev |= POLLIN;
                }
                if interest.writable {
                    ev |= POLLOUT;
                }
                self.scratch.push(PollFd {
                    fd,
                    events: ev,
                    revents: 0,
                });
            }
            // SAFETY: scratch is a live array of entries.len() pollfds;
            // the kernel only writes the revents fields.
            let n = unsafe {
                poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as c_ulong,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (slot, &(_, token, _)) in self.scratch.iter().zip(&self.entries) {
                let r = slot.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                    writable: r & (POLLOUT | POLLERR | POLLHUP) != 0,
                    hangup: r & (POLLHUP | POLLERR | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The write half of the self-pipe: cloned into every worker (and the
/// accept thread) so completing a job — or enrolling a socket — can
/// interrupt the reactor's `wait`.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Nudges the reactor. Idempotent under a full pipe: `WouldBlock`
    /// means a wake is already pending, which is all a wake needs to
    /// guarantee. Never blocks, never fails loudly — a torn-down
    /// reactor simply stops listening.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The read half of the self-pipe, registered with the reactor's poller
/// under a reserved token.
pub struct WakeReader {
    rx: UnixStream,
}

impl WakeReader {
    /// The fd to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte; returns how many were queued
    /// (≈ wakeups coalesced into this tick).
    pub fn drain(&self) -> u64 {
        let mut total = 0u64;
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => break,
                Ok(n) => total += n as u64,
                Err(_) => break, // WouldBlock: drained
            }
        }
        total
    }
}

/// Builds a connected waker pair (both halves nonblocking).
pub fn waker_pair() -> io::Result<(Waker, WakeReader)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReader { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn backend_smoke(force_poll: bool) {
        let mut poller = new_poller(force_poll).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let mut events = Vec::new();

        // Nothing to read yet: a short wait reports no events.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // Bytes arrive: level-triggered readable until consumed.
        (&client).write_all(b"x").unwrap();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{} backend is not level-triggered",
            poller.backend()
        );

        // Interest can be parked and restored without losing the byte.
        poller
            .reregister(server.as_raw_fd(), 7, Interest::NONE)
            .unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 7));
        poller
            .reregister(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.deregister(server.as_raw_fd()).unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 7));
    }

    #[test]
    fn system_backend_reports_level_triggered_readiness() {
        backend_smoke(false);
    }

    #[test]
    fn poll_fallback_reports_level_triggered_readiness() {
        backend_smoke(true);
    }

    #[test]
    fn waker_interrupts_a_sleeping_poller() {
        let mut poller = new_poller(false).unwrap();
        let (waker, reader) = waker_pair().unwrap();
        poller.register(reader.fd(), 0, Interest::READ).unwrap();

        let waker = std::sync::Arc::new(waker);
        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces, never blocks
        });

        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        assert!(reader.drain() >= 1);
        // Drained: the next wait is quiet again.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 0));
        t.join().unwrap();
    }
}
