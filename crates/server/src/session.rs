//! Per-connection session state and request dispatch.
//!
//! A [`Session`] is what one TCP connection talks to: it owns a clone of
//! the [`SharedDatabase`] handle, a session id, a statement counter, and
//! a per-session RNG seed (derived deterministically from the database
//! master seed and the session id, so a server run with a fixed seed and
//! a fixed connection order is reproducible). Sessions never hold a
//! database lock between requests — every statement acquires and releases
//! its lock inside [`Session::handle`], which is what lets hundreds of
//! sessions share one catalog without starving the decay driver.

use std::sync::Arc;

use fungus_core::{HealthReport, SharedDatabase};
use fungus_types::Value;

use crate::protocol::{ErrorCode, HealthSummary, Request, Response, StatsSummary};
use crate::stats::ServerStats;

/// One client's server-side state.
pub struct Session {
    id: u64,
    db: SharedDatabase,
    statements: u64,
    rng_seed: u64,
    stats: Option<Arc<ServerStats>>,
}

impl Session {
    /// Opens session `id` over the shared catalog.
    pub fn new(id: u64, db: SharedDatabase) -> Self {
        // splitmix64 of the id: decorrelates consecutive session seeds.
        let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Session {
            id,
            db,
            statements: 0,
            rng_seed: z ^ (z >> 31),
            stats: None,
        }
    }

    /// Attaches the server's shared counters, which lets `.health` and
    /// `.stats` report fault/panic/respawn telemetry. Sessions built
    /// without stats (unit tests, embedded use) answer those commands
    /// with the per-container data only.
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<ServerStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Statements handled so far.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// The session's deterministic RNG seed (handed to clients that want
    /// reproducible client-side sampling tied to the session).
    pub fn rng_seed(&self) -> u64 {
        self.rng_seed
    }

    /// Dispatches one request. Never panics; failures come back as
    /// [`Response::Error`] and leave the session usable.
    pub fn handle(&mut self, request: Request) -> Response {
        self.statements += 1;
        match request {
            Request::Ping => Response::Pong,
            Request::Sql { text } => self.run_sql(&text),
            Request::Dot { line } => self.run_dot(&line),
        }
    }

    fn run_sql(&mut self, text: &str) -> Response {
        // CREATE CONTAINER needs the catalog write lock; everything else
        // runs concurrently under the read lock.
        let is_ddl = text
            .trim_start()
            .get(..6)
            .is_some_and(|head| head.eq_ignore_ascii_case("create"));
        let outcome = if is_ddl {
            self.db.execute_ddl(text)
        } else {
            self.db.execute(text)
        };
        match outcome {
            Ok(out) => Response::from_outcome(out),
            Err(err) => Response::from_error(&err),
        }
    }

    fn run_dot(&mut self, line: &str) -> Response {
        let mut parts = line.split_whitespace();
        let verb = parts.next().unwrap_or("");
        let arg = parts.next();
        match verb {
            ".ping" => Response::Pong,
            ".tick" => {
                let n: u64 = match arg.map(str::parse).transpose() {
                    Ok(n) => n.unwrap_or(1),
                    Err(_) => {
                        return Response::Error {
                            code: ErrorCode::Parse,
                            message: ".tick takes an optional positive count".into(),
                        }
                    }
                };
                let now = self.db.run_for(n);
                Response::Ack {
                    message: format!("clock at tick {}", now.get()),
                }
            }
            ".health" => {
                let reports: Vec<HealthSummary> = match arg {
                    Some(name) => match self.db.health(name) {
                        Ok(report) => vec![summarise(name, &report)],
                        Err(err) => return Response::from_error(&err),
                    },
                    None => self
                        .db
                        .health_all()
                        .into_iter()
                        .map(|(name, report)| summarise(&name, &report))
                        .collect(),
                };
                Response::Health {
                    reports,
                    server: self.stats_summary(),
                }
            }
            ".stats" => match self.stats_summary() {
                Some(s) => Response::Rows {
                    columns: vec!["counter".into(), "value".into()],
                    rows: vec![
                        ("accepted", s.accepted),
                        ("rejected", s.rejected),
                        ("requests", s.requests),
                        ("responses", s.responses),
                        ("errors", s.errors),
                        ("faults_injected", s.faults_injected),
                        ("worker_panics", s.worker_panics),
                        ("workers_respawned", s.workers_respawned),
                        ("driver_ticks", s.driver_ticks),
                        ("shards", s.shards),
                        ("shards_dropped", s.shards_dropped),
                        ("shards_pruned", s.shards_pruned),
                        ("shards_split", s.shards_split),
                        ("shards_merged", s.shards_merged),
                        ("shards_restored", s.shards_restored),
                        ("sketches", s.sketches),
                        ("sketch_hits", s.sketch_hits),
                        ("sketch_absorbed", s.sketch_absorbed),
                        ("mvcc_epoch", s.mvcc_epoch),
                        ("mvcc_published", s.mvcc_published),
                        ("mvcc_retired", s.mvcc_retired),
                        ("mvcc_reclaimed", s.mvcc_reclaimed),
                        ("mvcc_snapshot_reads", s.mvcc_snapshot_reads),
                        ("mvcc_consume_retries", s.mvcc_consume_retries),
                        ("mvcc_consume_fallbacks", s.mvcc_consume_fallbacks),
                        ("reactor_sessions", s.reactor_sessions),
                        ("reactor_ready_events", s.reactor_ready_events),
                        ("reactor_stalls", s.reactor_stalls),
                        ("reactor_wakeups", s.reactor_wakeups),
                        ("reactor_write_hwm", s.reactor_write_hwm),
                    ]
                    .into_iter()
                    .map(|(name, v)| vec![Value::Str(name.into()), Value::Int(v as i64)])
                    .collect(),
                    distilled: 0,
                    consumed: 0,
                },
                None => Response::Error {
                    code: ErrorCode::Execution,
                    message: "no server stats attached to this session".into(),
                },
            },
            ".containers" => {
                let names = self.db.container_names();
                Response::Rows {
                    columns: vec!["container".into(), "live".into()],
                    rows: names
                        .iter()
                        .map(|n| {
                            vec![
                                Value::Str(n.clone()),
                                Value::Int(self.db.live_count(n) as i64),
                            ]
                        })
                        .collect(),
                    distilled: 0,
                    consumed: 0,
                }
            }
            // `.sketch <container> <summary>` is the dot-command spelling
            // of `SUMMARIZE <summary> FROM <container>` — the operational
            // read path into a container's cooking pipelines.
            ".sketch" => {
                let (container, summary) = match (arg, parts.next()) {
                    (Some(c), Some(s)) => (c, s),
                    _ => {
                        return Response::Error {
                            code: ErrorCode::Parse,
                            message: ".sketch takes a container and a summary name".into(),
                        }
                    }
                };
                match self
                    .db
                    .execute(&format!("SUMMARIZE {summary} FROM {container}"))
                {
                    Ok(out) => Response::from_outcome(out),
                    Err(err) => Response::from_error(&err),
                }
            }
            // The seed travels as hex text: the wire codec stores numbers
            // as f64, which only round-trips integers up to 2^53.
            ".session" => Response::Rows {
                columns: vec!["session".into(), "statements".into(), "rng_seed".into()],
                rows: vec![vec![
                    Value::Int(self.id as i64),
                    Value::Int(self.statements as i64),
                    Value::Str(format!("{:#018x}", self.rng_seed)),
                ]],
                distilled: 0,
                consumed: 0,
            },
            other => Response::Error {
                code: ErrorCode::Parse,
                message: format!(
                    "unknown command `{other}` \
                     (try .ping .tick .health .containers .session .stats .sketch)"
                ),
            },
        }
    }

    /// The server counters in wire form, when this session has them.
    fn stats_summary(&self) -> Option<StatsSummary> {
        self.stats
            .as_ref()
            .map(|s| StatsSummary::from(s.snapshot()))
    }
}

fn summarise(name: &str, report: &HealthReport) -> HealthSummary {
    HealthSummary {
        container: name.to_string(),
        at: report.at.get(),
        score: report.score,
        status: format!("{:?}", report.status),
        live: report.stats.live_count as u64,
        mean_freshness: report.mean_freshness,
        waste_ratio: report.waste_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_core::{ContainerPolicy, Database};
    use fungus_fungi::FungusSpec;
    use fungus_types::{DataType, Schema};

    fn session() -> Session {
        let mut db = Database::new(11);
        db.create_container(
            "r",
            Schema::from_pairs(&[("v", DataType::Int)]).unwrap(),
            ContainerPolicy::new(FungusSpec::Retention { max_age: 30 }),
        )
        .unwrap();
        Session::new(1, SharedDatabase::new(db))
    }

    #[test]
    fn sql_requests_run_and_count() {
        let mut s = session();
        let r = s.handle(Request::Sql {
            text: "INSERT INTO r VALUES (1), (2), (3)".into(),
        });
        assert!(!r.is_error(), "{r:?}");
        let r = s.handle(Request::Sql {
            text: "SELECT * FROM r WHERE v >= 2".into(),
        });
        assert_eq!(r.row_count(), Some(2));
        assert_eq!(s.statements(), 2);
    }

    #[test]
    fn ddl_routes_through_the_write_lock() {
        let mut s = session();
        let r = s.handle(Request::Sql {
            text: "CREATE CONTAINER s2 (x INT) WITH FUNGUS ttl(5)".into(),
        });
        assert!(!r.is_error(), "{r:?}");
        let r = s.handle(Request::Dot {
            line: ".containers".into(),
        });
        assert_eq!(r.row_count(), Some(2));
    }

    #[test]
    fn errors_keep_the_session_alive() {
        let mut s = session();
        let r = s.handle(Request::Sql {
            text: "SELECT FROM FROM".into(),
        });
        assert!(r.is_error());
        let r = s.handle(Request::Sql {
            text: "SELECT COUNT(*) FROM r".into(),
        });
        assert!(!r.is_error());
        let r = s.handle(Request::Sql {
            text: "SELECT * FROM no_such_table".into(),
        });
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::Unknown,
                ..
            }
        ));
    }

    #[test]
    fn dot_commands_cover_the_operational_verbs() {
        let mut s = session();
        assert_eq!(s.handle(Request::Ping), Response::Pong);
        let r = s.handle(Request::Dot {
            line: ".tick 5".into(),
        });
        assert!(matches!(r, Response::Ack { .. }), "{r:?}");
        let r = s.handle(Request::Dot {
            line: ".health".into(),
        });
        assert!(matches!(r, Response::Health { .. }), "{r:?}");
        let r = s.handle(Request::Dot {
            line: ".session".into(),
        });
        assert_eq!(r.row_count(), Some(1));
        let r = s.handle(Request::Dot {
            line: ".nonsense".into(),
        });
        assert!(r.is_error());
    }

    #[test]
    fn stats_command_needs_attached_counters() {
        let mut bare = session();
        let r = bare.handle(Request::Dot {
            line: ".stats".into(),
        });
        assert!(r.is_error(), "{r:?}");

        let stats = Arc::new(crate::stats::ServerStats::default());
        let mut s = session().with_stats(Arc::clone(&stats));
        let r = s.handle(Request::Dot {
            line: ".stats".into(),
        });
        assert_eq!(r.row_count(), Some(30), "{r:?}");
        // `.health` carries the same summary inline.
        let r = s.handle(Request::Dot {
            line: ".health".into(),
        });
        match r {
            Response::Health { server, .. } => assert!(server.is_some()),
            other => panic!("{other:?}"),
        }
        // Without stats, `.health` still works, just without the summary.
        let r = bare.handle(Request::Dot {
            line: ".health".into(),
        });
        match r {
            Response::Health { server, .. } => assert!(server.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sketch_command_reads_cooking_pipelines() {
        let mut s = session();
        let r = s.handle(Request::Sql {
            text: "CREATE CONTAINER clicks (item INT) WITH FUNGUS ttl(2) \
                   WITH DISTILL (hot = fading_topk(4, 0.1) ON item)"
                .into(),
        });
        assert!(!r.is_error(), "{r:?}");
        s.handle(Request::Sql {
            text: "INSERT INTO clicks VALUES (7), (7), (3)".into(),
        });
        s.handle(Request::Dot {
            line: ".tick 3".into(),
        });
        let r = s.handle(Request::Dot {
            line: ".sketch clicks hot".into(),
        });
        match &r {
            Response::Rows { columns, rows, .. } => {
                assert_eq!(columns[1], "key");
                assert_eq!(rows[0][1], Value::Int(7), "{r:?}");
            }
            other => panic!("{other:?}"),
        }
        // Arity and name errors stay in-session.
        assert!(s
            .handle(Request::Dot {
                line: ".sketch clicks".into()
            })
            .is_error());
        assert!(s
            .handle(Request::Dot {
                line: ".sketch clicks nope".into()
            })
            .is_error());
    }

    #[test]
    fn session_seeds_are_deterministic_and_distinct() {
        let db = SharedDatabase::new(Database::new(1));
        let a = Session::new(1, db.clone());
        let a2 = Session::new(1, db.clone());
        let b = Session::new(2, db);
        assert_eq!(a.rng_seed(), a2.rng_seed());
        assert_ne!(a.rng_seed(), b.rng_seed());
    }
}
