//! Shared server counters, fault accounting included.
//!
//! One [`ServerStats`] is shared by the accept thread, every worker, the
//! supervisor that respawns dead workers, and every [`Session`] (so the
//! `.health` / `.stats` dot commands can report it). All counters are
//! monotone relaxed atomics — they are operational telemetry, not
//! synchronisation.
//!
//! [`Session`]: crate::session::Session

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fungus_lint_rt::{hierarchy, OrderedMutex};

use fungus_core::{MvccTelemetry, ShardTelemetry, SharedDatabase, SketchTelemetry};

/// Monotone counters shared by every server thread.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections handed to the worker pool.
    pub(crate) accepted: AtomicU64,
    /// Connections refused at capacity.
    pub(crate) rejected: AtomicU64,
    /// Requests decoded.
    pub(crate) requests: AtomicU64,
    /// Responses written back.
    pub(crate) responses: AtomicU64,
    /// Error responses among them (protocol + engine failures).
    pub(crate) errors: AtomicU64,
    /// Faults the injection layer put on connection streams.
    pub(crate) faults_injected: AtomicU64,
    /// Worker threads that died to a panic (injected or organic).
    pub(crate) worker_panics: AtomicU64,
    /// Replacement workers the supervisor spawned.
    pub(crate) workers_respawned: AtomicU64,
    /// Sessions currently registered on reactor threads (a gauge:
    /// incremented at enrolment, decremented at close; 0 under the
    /// threaded model).
    pub(crate) reactor_sessions: AtomicU64,
    /// Readiness events delivered to reactor connections.
    pub(crate) reactor_ready_events: AtomicU64,
    /// Dispatch attempts parked because the worker queue was full (each
    /// is one backpressure stall of one connection).
    pub(crate) reactor_stalls: AtomicU64,
    /// Self-pipe wake bytes drained (enrolments + completions + shutdown
    /// nudges, coalesced per tick).
    pub(crate) reactor_wakeups: AtomicU64,
    /// High-water mark of any single connection's buffered response
    /// bytes (updated with `fetch_max`).
    pub(crate) reactor_write_hwm: AtomicU64,
    /// Decay-driver tick counter, linked once the driver is spawned.
    driver_ticks: OrderedMutex<Option<Arc<AtomicU64>>>,
    /// Catalog handle for shard-layout and cooking-sketch gauges, linked
    /// by `serve`.
    shard_source: OrderedMutex<Option<SharedDatabase>>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            reactor_sessions: AtomicU64::new(0),
            reactor_ready_events: AtomicU64::new(0),
            reactor_stalls: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            reactor_write_hwm: AtomicU64::new(0),
            driver_ticks: OrderedMutex::new(&hierarchy::STATS, None),
            shard_source: OrderedMutex::new(&hierarchy::STATS, None),
        }
    }
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections refused at capacity.
    pub rejected: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Responses written back (absent faults, exactly one per request;
    /// under fault injection a torn response leaves a gap).
    pub responses: u64,
    /// Error responses among them (protocol + engine failures).
    pub errors: u64,
    /// Faults injected into connection streams by the fault plan.
    pub faults_injected: u64,
    /// Worker threads lost to panics.
    pub worker_panics: u64,
    /// Workers the supervisor respawned to replace them.
    pub workers_respawned: u64,
    /// Completed decay-driver ticks (0 when no driver is configured).
    pub driver_ticks: u64,
    /// Resident shards across every container (monolithic extents count
    /// as one shard; 0 when no catalog is linked).
    pub shards: u64,
    /// Shards detached whole in O(1) — rot drops plus dead-shard
    /// compaction drops.
    pub shards_dropped: u64,
    /// Whole shards skipped by query-time shard pruning.
    pub shards_pruned: u64,
    /// Tail shards sealed early by the adaptive split rule.
    pub shards_split: u64,
    /// Underfull sealed shards merged into a time-adjacent neighbor.
    pub shards_merged: u64,
    /// Shards reassembled from a shard-aware checkpoint restore.
    pub shards_restored: u64,
    /// Distillation pipelines attached across every container (0 when no
    /// catalog is linked).
    pub sketches: u64,
    /// `SUMMARIZE` / `.sketch` reads served from those pipelines.
    pub sketch_hits: u64,
    /// Values folded into the pipelines from departing tuples.
    pub sketch_absorbed: u64,
    /// Sum of per-container MVCC epoch counters.
    pub mvcc_epoch: u64,
    /// MVCC snapshot versions published.
    pub mvcc_published: u64,
    /// Superseded versions handed to the reclamation list.
    pub mvcc_retired: u64,
    /// Retired versions whose memory was released (equals `mvcc_retired`
    /// at reader quiescence).
    pub mvcc_reclaimed: u64,
    /// Non-consuming reads served lock-free from sealed snapshots.
    pub mvcc_snapshot_reads: u64,
    /// Optimistic `CONSUME` attempts that lost the epoch race and
    /// retried.
    pub mvcc_consume_retries: u64,
    /// `CONSUME`s that fell back to the fully locked path.
    pub mvcc_consume_fallbacks: u64,
    /// Sessions currently registered on reactor threads (0 under the
    /// threaded model).
    pub reactor_sessions: u64,
    /// Readiness events delivered to reactor connections.
    pub reactor_ready_events: u64,
    /// Dispatches parked on a full worker queue (backpressure stalls).
    pub reactor_stalls: u64,
    /// Self-pipe wake bytes the reactors drained.
    pub reactor_wakeups: u64,
    /// High-water mark of one connection's buffered response bytes.
    pub reactor_write_hwm: u64,
}

impl ServerStats {
    /// Links the decay driver's tick counter so snapshots (and the
    /// `.stats` command) can report maintenance progress.
    pub(crate) fn link_driver(&self, ticks: Arc<AtomicU64>) {
        *self.driver_ticks.lock() = Some(ticks);
    }

    /// Links the catalog so snapshots can report shard-layout gauges
    /// (resident shards, whole-shard drops, shard prune counts).
    pub(crate) fn link_shards(&self, db: SharedDatabase) {
        *self.shard_source.lock() = Some(db);
    }

    /// Current shard telemetry (zeros without a linked catalog).
    pub fn shard_telemetry(&self) -> ShardTelemetry {
        // Clone the handle out and let the guard drop before touching the
        // catalog: the stats cells are leaves of the lock hierarchy, so
        // calling into the catalog with one held would invert the declared
        // order (and could deadlock against a worker taking stats under
        // the catalog lock).
        let db = self.shard_source.lock().clone();
        db.map(|db| db.shard_telemetry()).unwrap_or_default()
    }

    /// Current cooking-sketch telemetry (zeros without a linked catalog).
    /// Same clone-the-handle-then-drop-the-guard discipline as
    /// [`shard_telemetry`](Self::shard_telemetry).
    pub fn sketch_telemetry(&self) -> SketchTelemetry {
        let db = self.shard_source.lock().clone();
        db.map(|db| db.sketch_telemetry()).unwrap_or_default()
    }

    /// Current MVCC telemetry (zeros without a linked catalog). Same
    /// clone-the-handle-then-drop-the-guard discipline as
    /// [`shard_telemetry`](Self::shard_telemetry).
    pub fn mvcc_telemetry(&self) -> MvccTelemetry {
        let db = self.shard_source.lock().clone();
        db.map(|db| db.mvcc_telemetry()).unwrap_or_default()
    }

    /// Adds stream-fault injections from a finished connection.
    pub(crate) fn add_faults(&self, n: u64) {
        if n > 0 {
            self.faults_injected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Completed decay-driver ticks (0 without a driver).
    pub fn driver_ticks(&self) -> u64 {
        self.driver_ticks
            .lock()
            .as_ref()
            .map(|t| t.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards = self.shard_telemetry();
        let sketches = self.sketch_telemetry();
        let mvcc = self.mvcc_telemetry();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            driver_ticks: self.driver_ticks(),
            shards: shards.resident,
            shards_dropped: shards.dropped,
            shards_pruned: shards.pruned,
            shards_split: shards.split,
            shards_merged: shards.merged,
            shards_restored: shards.restored,
            sketches: sketches.sketches,
            sketch_hits: sketches.hits,
            sketch_absorbed: sketches.absorbed,
            mvcc_epoch: mvcc.epoch,
            mvcc_published: mvcc.published,
            mvcc_retired: mvcc.retired,
            mvcc_reclaimed: mvcc.reclaimed,
            mvcc_snapshot_reads: mvcc.snapshot_reads,
            mvcc_consume_retries: mvcc.consume_retries,
            mvcc_consume_fallbacks: mvcc.consume_fallbacks,
            reactor_sessions: self.reactor_sessions.load(Ordering::Relaxed),
            reactor_ready_events: self.reactor_ready_events.load(Ordering::Relaxed),
            reactor_stalls: self.reactor_stalls.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_write_hwm: self.reactor_write_hwm.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_driver_link() {
        let stats = ServerStats::default();
        stats.requests.fetch_add(3, Ordering::Relaxed);
        stats.add_faults(2);
        stats.add_faults(0);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.driver_ticks, 0, "no driver linked yet");

        let ticks = Arc::new(AtomicU64::new(17));
        stats.link_driver(Arc::clone(&ticks));
        assert_eq!(stats.snapshot().driver_ticks, 17);
        ticks.fetch_add(1, Ordering::Relaxed);
        assert_eq!(stats.driver_ticks(), 18);
    }

    #[test]
    fn shard_gauges_come_from_the_linked_catalog() {
        use fungus_types::{DataType, Schema, Value};

        let stats = ServerStats::default();
        assert_eq!(stats.snapshot().shards, 0, "no catalog linked yet");

        let mut db = fungus_core::Database::new(1);
        db.create_container(
            "r",
            Schema::from_pairs(&[("v", DataType::Int)]).unwrap(),
            fungus_core::ContainerPolicy::immortal()
                .with_sharding(fungus_core::ShardSpec::new(4).with_workers(1)),
        )
        .unwrap();
        for i in 0..10i64 {
            db.insert("r", vec![Value::Int(i)]).unwrap();
        }
        stats.link_shards(SharedDatabase::new(db));
        let snap = stats.snapshot();
        assert_eq!(snap.shards, 3, "10 rows at 4 per shard → 3 resident");
        assert_eq!(snap.shards_dropped, 0);
    }

    #[test]
    fn sketch_gauges_come_from_the_linked_catalog() {
        use fungus_types::{DataType, Schema};

        let stats = ServerStats::default();
        assert_eq!(stats.snapshot().sketches, 0, "no catalog linked yet");

        let mut db = fungus_core::Database::new(2);
        db.create_container(
            "r",
            Schema::from_pairs(&[("v", DataType::Int)]).unwrap(),
            fungus_core::ContainerPolicy::immortal(),
        )
        .unwrap();
        db.execute_ddl(
            "CREATE CONTAINER clicks (item INT) WITH FUNGUS ttl(2) \
             WITH DISTILL (hot = fading_topk(4, 0.1) ON item)",
        )
        .unwrap();
        db.execute("INSERT INTO clicks VALUES (1), (1), (2)")
            .unwrap();
        db.run_for(3);
        db.execute("SUMMARIZE hot FROM clicks").unwrap();
        stats.link_shards(SharedDatabase::new(db));
        let snap = stats.snapshot();
        assert_eq!(snap.sketches, 1, "one pipeline across two containers");
        assert_eq!(snap.sketch_hits, 1);
        assert_eq!(snap.sketch_absorbed, 3, "all three rotted tuples cooked");
    }
}
