//! Shared server counters, fault accounting included.
//!
//! One [`ServerStats`] is shared by the accept thread, every worker, the
//! supervisor that respawns dead workers, and every [`Session`] (so the
//! `.health` / `.stats` dot commands can report it). All counters are
//! monotone relaxed atomics — they are operational telemetry, not
//! synchronisation.
//!
//! [`Session`]: crate::session::Session

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Monotone counters shared by every server thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections handed to the worker pool.
    pub(crate) accepted: AtomicU64,
    /// Connections refused at capacity.
    pub(crate) rejected: AtomicU64,
    /// Requests decoded.
    pub(crate) requests: AtomicU64,
    /// Responses written back.
    pub(crate) responses: AtomicU64,
    /// Error responses among them (protocol + engine failures).
    pub(crate) errors: AtomicU64,
    /// Faults the injection layer put on connection streams.
    pub(crate) faults_injected: AtomicU64,
    /// Worker threads that died to a panic (injected or organic).
    pub(crate) worker_panics: AtomicU64,
    /// Replacement workers the supervisor spawned.
    pub(crate) workers_respawned: AtomicU64,
    /// Decay-driver tick counter, linked once the driver is spawned.
    driver_ticks: Mutex<Option<Arc<AtomicU64>>>,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections refused at capacity.
    pub rejected: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Responses written back (absent faults, exactly one per request;
    /// under fault injection a torn response leaves a gap).
    pub responses: u64,
    /// Error responses among them (protocol + engine failures).
    pub errors: u64,
    /// Faults injected into connection streams by the fault plan.
    pub faults_injected: u64,
    /// Worker threads lost to panics.
    pub worker_panics: u64,
    /// Workers the supervisor respawned to replace them.
    pub workers_respawned: u64,
    /// Completed decay-driver ticks (0 when no driver is configured).
    pub driver_ticks: u64,
}

impl ServerStats {
    /// Links the decay driver's tick counter so snapshots (and the
    /// `.stats` command) can report maintenance progress.
    pub(crate) fn link_driver(&self, ticks: Arc<AtomicU64>) {
        *self.driver_ticks.lock() = Some(ticks);
    }

    /// Adds stream-fault injections from a finished connection.
    pub(crate) fn add_faults(&self, n: u64) {
        if n > 0 {
            self.faults_injected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Completed decay-driver ticks (0 without a driver).
    pub fn driver_ticks(&self) -> u64 {
        self.driver_ticks
            .lock()
            .as_ref()
            .map(|t| t.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            driver_ticks: self.driver_ticks(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_driver_link() {
        let stats = ServerStats::default();
        stats.requests.fetch_add(3, Ordering::Relaxed);
        stats.add_faults(2);
        stats.add_faults(0);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.driver_ticks, 0, "no driver linked yet");

        let ticks = Arc::new(AtomicU64::new(17));
        stats.link_driver(Arc::clone(&ticks));
        assert_eq!(stats.snapshot().driver_ticks, 17);
        ticks.fetch_add(1, Ordering::Relaxed);
        assert_eq!(stats.driver_ticks(), 18);
    }
}
