//! # fungus-server
//!
//! A concurrent network front-end for the spacefungus engine.
//!
//! The paper frames the store as something an *owner* tends continuously
//! — data rots on a wall clock whether or not anyone is looking. That
//! only means anything once the engine sits behind a long-lived process
//! with real concurrent clients, so this crate provides one:
//!
//! * [`frame`] — length-prefixed framing with a hard size cap and typed,
//!   non-panicking decode errors;
//! * [`protocol`] — the [`Request`]/[`Response`] message set, serialized
//!   with the engine's own JSON codec (`fungus_types::json`);
//! * [`session`] — per-connection state: statement counter, session id,
//!   deterministic per-session RNG seed, dot-command dispatch;
//! * [`server`] — the TCP server: a crossbeam worker pool with a
//!   connection cap, read/write timeouts, an optional wall-clock decay
//!   driver, and graceful drain-then-checkpoint shutdown, behind either
//!   of two I/O models ([`ServerConfig::io_model`]);
//! * [`reactor`] (unix) — the event-driven connection layer: sessions as
//!   explicit state machines multiplexed over a hand-rolled poll/epoll
//!   readiness reactor, with bounded dispatch onto the worker pool and
//!   backpressure when the pool saturates;
//! * [`client`] — a blocking [`Client`] used by the load-driving
//!   experiment (E11), the integration tests, and `examples/serve.rs`,
//!   with an optional [`RetryPolicy`] (bounded exponential backoff,
//!   seeded jitter, idempotency guard) for surviving faulty networks;
//! * [`fault`] — a deterministic fault-injection layer: a seeded
//!   [`FaultPlan`] wraps connection streams in [`Faulty`] to inject torn
//!   writes, delayed reads, mid-frame disconnects, transient I/O errors,
//!   and worker panics — the substrate the chaos suite runs on;
//! * [`stats`] — shared monotone counters ([`ServerStats`]) reported via
//!   `.health`/`.stats`, fault/panic/respawn telemetry included.
//!
//! No async runtime: the engine's critical sections are microseconds of
//! CPU under `parking_lot` locks. The threaded model (one worker thread
//! per active connection) is the simple reference baseline; the reactor
//! model decouples live sessions from threads, holding thousands of
//! mostly-idle connections over a small fixed thread set while the same
//! worker pool bounds actual CPU concurrency.
//!
//! ```no_run
//! use fungus_core::{Database, SharedDatabase};
//! use fungus_server::{serve, Client, Request, ServerConfig};
//!
//! let db = SharedDatabase::new(Database::new(42));
//! db.execute_ddl("CREATE CONTAINER r (v INT) WITH FUNGUS ttl(100)").unwrap();
//! let handle = serve(db, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.sql("INSERT INTO r VALUES (1), (2)").unwrap();
//! let resp = client.sql("SELECT * FROM r CONSUME").unwrap();
//! assert_eq!(resp.row_count(), Some(2));
//!
//! client.close();
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod fault;
pub mod frame;
pub mod protocol;
#[cfg(unix)]
pub mod reactor;
pub mod server;
pub mod session;
pub mod stats;

pub use client::{Client, ClientError, ClientStats, RetryPolicy};
pub use fault::{drain_frames, Fault, FaultPlan, FaultSchedule, Faulty};
pub use frame::{FrameError, FramePump, PumpStep, MAX_FRAME};
pub use protocol::{ErrorCode, HealthSummary, Request, Response, StatsSummary};
pub use server::{serve, IoModel, PollerKind, ServerConfig, ServerHandle, ShutdownReport};
pub use session::Session;
pub use stats::{MetricsSnapshot, ServerStats};
