//! # fungus-server
//!
//! A concurrent network front-end for the spacefungus engine.
//!
//! The paper frames the store as something an *owner* tends continuously
//! — data rots on a wall clock whether or not anyone is looking. That
//! only means anything once the engine sits behind a long-lived process
//! with real concurrent clients, so this crate provides one:
//!
//! * [`frame`] — length-prefixed framing with a hard size cap and typed,
//!   non-panicking decode errors;
//! * [`protocol`] — the [`Request`]/[`Response`] message set, serialized
//!   with the engine's own JSON codec (`fungus_types::json`);
//! * [`session`] — per-connection state: statement counter, session id,
//!   deterministic per-session RNG seed, dot-command dispatch;
//! * [`server`] — a blocking TCP server on a crossbeam worker pool with
//!   a connection cap, read/write timeouts, an optional wall-clock decay
//!   driver, and graceful drain-then-checkpoint shutdown;
//! * [`client`] — a blocking [`Client`] used by the load-driving
//!   experiment (E11), the integration tests, and `examples/serve.rs`.
//!
//! No async runtime: the engine's critical sections are microseconds of
//! CPU under `parking_lot` locks, so blocking I/O with one worker thread
//! per active connection is both simpler and faster at the scales the
//! experiments drive (tens of connections, tens of thousands of
//! requests).
//!
//! ```no_run
//! use fungus_core::{Database, SharedDatabase};
//! use fungus_server::{serve, Client, Request, ServerConfig};
//!
//! let db = SharedDatabase::new(Database::new(42));
//! db.execute_ddl("CREATE CONTAINER r (v INT) WITH FUNGUS ttl(100)").unwrap();
//! let handle = serve(db, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.sql("INSERT INTO r VALUES (1), (2)").unwrap();
//! let resp = client.sql("SELECT * FROM r CONSUME").unwrap();
//! assert_eq!(resp.row_count(), Some(2));
//!
//! client.close();
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use frame::{FrameError, MAX_FRAME};
pub use protocol::{ErrorCode, HealthSummary, Request, Response};
pub use server::{serve, MetricsSnapshot, ServerConfig, ServerHandle, ShutdownReport};
pub use session::Session;
