//! The request/response message set carried inside frames.
//!
//! Payloads are the engine's own JSON dialect (`fungus_types::json`)
//! produced through the serde traits, so the wire format shares one codec
//! with checkpoints and snapshots. Messages are externally tagged enums —
//! `{"Sql": {...}}` — which keeps the protocol self-describing and lets
//! either side add variants without renumbering anything.
//!
//! The split mirrors the interactive shell: **SQL** statements run
//! through the engine's parser (DDL included, so a session can create
//! containers), **dot commands** cover the operational verbs that are not
//! SQL (`.tick`, `.health`, `.containers`, `.session`), and **ping** is a
//! liveness no-op used by health checks and connection pools.

use serde::{Deserialize, Serialize};

use fungus_core::QueryOutcome;
use fungus_types::{json, FungusError, Result, Value};

use crate::frame::FrameError;

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A SQL-ish statement (query, DML, or DDL).
    Sql {
        /// The statement text.
        text: String,
    },
    /// An operational dot command, e.g. `.health readings`.
    Dot {
        /// The command line, leading dot included.
        line: String,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A query's answer set.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
        /// Values folded into distillation summaries by this statement.
        distilled: u64,
        /// Tuples removed by consume semantics.
        consumed: u64,
    },
    /// A statement that succeeded without an answer set to report.
    Ack {
        /// Human-readable confirmation.
        message: String,
    },
    /// One container's health, rendered flat for transport.
    Health {
        /// Per-container reports.
        reports: Vec<HealthSummary>,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// The statement failed; the session stays usable.
    Error {
        /// Machine-matchable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// A flattened [`fungus_core::HealthReport`] for the wire: the scalar
/// components every client wants, without dragging the full stats/census
/// structures through the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Container name.
    pub container: String,
    /// Observation tick.
    pub at: u64,
    /// Composite health score in [0, 1].
    pub score: f64,
    /// Status band (`Healthy`/`Degraded`/`Critical`).
    pub status: String,
    /// Live tuple count.
    pub live: u64,
    /// Mean live freshness.
    pub mean_freshness: f64,
    /// Fraction of evictions that rotted unread.
    pub waste_ratio: f64,
}

/// Coarse error classes clients can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The statement text did not parse.
    Parse,
    /// The statement referenced a missing container or column.
    Unknown,
    /// The statement was understood but could not run.
    Execution,
    /// The frame or JSON payload was malformed.
    Protocol,
    /// The server refused the connection or request (capacity, shutdown).
    Unavailable,
}

impl Request {
    /// Serialises to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(json::to_string(self)?.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| FungusError::CorruptSnapshot(format!("request not UTF-8: {e}")))?;
        json::from_str(text)
    }
}

impl Response {
    /// Serialises to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(json::to_string(self)?.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| FungusError::CorruptSnapshot(format!("response not UTF-8: {e}")))?;
        json::from_str(text)
    }

    /// Converts an engine outcome into its wire form.
    pub fn from_outcome(outcome: QueryOutcome) -> Response {
        Response::Rows {
            columns: outcome.result.columns,
            rows: outcome.result.rows,
            distilled: outcome.distilled,
            consumed: outcome.result.consumed.len() as u64,
        }
    }

    /// Converts an engine error into its wire form.
    pub fn from_error(err: &FungusError) -> Response {
        let code = match err {
            FungusError::ParseError { .. } => ErrorCode::Parse,
            FungusError::UnknownContainer(_)
            | FungusError::UnknownColumn(_)
            | FungusError::ContainerExists(_) => ErrorCode::Unknown,
            FungusError::CorruptSnapshot(_) => ErrorCode::Protocol,
            _ => ErrorCode::Execution,
        };
        Response::Error {
            code,
            message: err.to_string(),
        }
    }

    /// Converts a framing error into its wire form (where a reply is
    /// still possible).
    pub fn from_frame_error(err: &FrameError) -> Response {
        Response::Error {
            code: ErrorCode::Protocol,
            message: err.to_string(),
        }
    }

    /// The number of rows carried, if this is a row response.
    pub fn row_count(&self) -> Option<usize> {
        match self {
            Response::Rows { rows, .. } => Some(rows.len()),
            _ => None,
        }
    }

    /// True for [`Response::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Sql {
                text: "SELECT * FROM r WHERE v > 1 CONSUME".into(),
            },
            Request::Dot {
                line: ".health readings".into(),
            },
            Request::Ping,
        ] {
            let bytes = req.encode().unwrap();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Rows {
                columns: vec!["v".into()],
                rows: vec![vec![Value::Int(1)], vec![Value::Null]],
                distilled: 3,
                consumed: 2,
            },
            Response::Ack {
                message: "created".into(),
            },
            Response::Health {
                reports: vec![HealthSummary {
                    container: "r".into(),
                    at: 9,
                    score: 0.75,
                    status: "stable".into(),
                    live: 100,
                    mean_freshness: 0.5,
                    waste_ratio: 0.1,
                }],
            },
            Response::Pong,
            Response::Error {
                code: ErrorCode::Parse,
                message: "nope".into(),
            },
        ] {
            let bytes = resp.encode().unwrap();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(b"{\"Sql\":").is_err());
        assert!(Request::decode(&[0xff, 0xfe]).is_err());
        assert!(Response::decode(b"[1,2,3]").is_err());
    }

    #[test]
    fn error_codes_classify_engine_errors() {
        let resp = Response::from_error(&FungusError::UnknownContainer("x".into()));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Unknown,
                ..
            }
        ));
    }
}
