//! The request/response message set carried inside frames.
//!
//! Payloads are the engine's own JSON dialect (`fungus_types::json`)
//! produced through the serde traits, so the wire format shares one codec
//! with checkpoints and snapshots. Messages are externally tagged enums —
//! `{"Sql": {...}}` — which keeps the protocol self-describing and lets
//! either side add variants without renumbering anything.
//!
//! The split mirrors the interactive shell: **SQL** statements run
//! through the engine's parser (DDL included, so a session can create
//! containers), **dot commands** cover the operational verbs that are not
//! SQL (`.tick`, `.health`, `.containers`, `.session`), and **ping** is a
//! liveness no-op used by health checks and connection pools.

use serde::{Deserialize, Serialize};

use fungus_core::QueryOutcome;
use fungus_types::{json, FungusError, Result, Value};

use crate::frame::FrameError;

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A SQL-ish statement (query, DML, or DDL).
    Sql {
        /// The statement text.
        text: String,
    },
    /// An operational dot command, e.g. `.health readings`.
    Dot {
        /// The command line, leading dot included.
        line: String,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A query's answer set.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
        /// Values folded into distillation summaries by this statement.
        distilled: u64,
        /// Tuples removed by consume semantics.
        consumed: u64,
    },
    /// A statement that succeeded without an answer set to report.
    Ack {
        /// Human-readable confirmation.
        message: String,
    },
    /// One container's health, rendered flat for transport.
    Health {
        /// Per-container reports.
        reports: Vec<HealthSummary>,
        /// Server-level counters (fault injections, worker panics and
        /// respawns, decay-driver ticks), when the answering session has
        /// them attached. `None` from embedded/unit-test sessions.
        server: Option<StatsSummary>,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// The statement failed; the session stays usable.
    Error {
        /// Machine-matchable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// A flattened [`fungus_core::HealthReport`] for the wire: the scalar
/// components every client wants, without dragging the full stats/census
/// structures through the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Container name.
    pub container: String,
    /// Observation tick.
    pub at: u64,
    /// Composite health score in [0, 1].
    pub score: f64,
    /// Status band (`Healthy`/`Degraded`/`Critical`).
    pub status: String,
    /// Live tuple count.
    pub live: u64,
    /// Mean live freshness.
    pub mean_freshness: f64,
    /// Fraction of evictions that rotted unread.
    pub waste_ratio: f64,
}

/// Server-level counters in wire form — the `.health` / `.stats` view of
/// [`crate::stats::MetricsSnapshot`], fault telemetry included. This is
/// how an operator (or the chaos suite) checks from the *outside* that
/// injected faults were absorbed: panics counted, workers respawned, and
/// the decay driver still ticking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections refused at capacity.
    pub rejected: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Responses written back.
    pub responses: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Faults injected into connection streams by the fault plan.
    pub faults_injected: u64,
    /// Worker threads lost to panics.
    pub worker_panics: u64,
    /// Workers the supervisor respawned.
    pub workers_respawned: u64,
    /// Completed decay-driver ticks (0 without a driver).
    pub driver_ticks: u64,
    /// Resident shards across every container (monolithic extents count
    /// as one shard).
    #[serde(default)]
    pub shards: u64,
    /// Shards detached whole in O(1) instead of tuple-by-tuple eviction.
    #[serde(default)]
    pub shards_dropped: u64,
    /// Whole shards skipped by query-time shard pruning.
    #[serde(default)]
    pub shards_pruned: u64,
    /// Tail shards sealed early by the adaptive split rule.
    #[serde(default)]
    pub shards_split: u64,
    /// Underfull sealed shards merged into a neighbor.
    #[serde(default)]
    pub shards_merged: u64,
    /// Shards reassembled from a shard-aware checkpoint restore.
    #[serde(default)]
    pub shards_restored: u64,
    /// Distillation pipelines attached across every container.
    #[serde(default)]
    pub sketches: u64,
    /// `SUMMARIZE` / `.sketch` reads served from those pipelines.
    #[serde(default)]
    pub sketch_hits: u64,
    /// Values folded into the pipelines from departing tuples.
    #[serde(default)]
    pub sketch_absorbed: u64,
    /// Sum of per-container MVCC epoch counters.
    #[serde(default)]
    pub mvcc_epoch: u64,
    /// MVCC snapshot versions published.
    #[serde(default)]
    pub mvcc_published: u64,
    /// Superseded versions handed to the reclamation list.
    #[serde(default)]
    pub mvcc_retired: u64,
    /// Retired versions whose memory was released.
    #[serde(default)]
    pub mvcc_reclaimed: u64,
    /// Non-consuming reads served lock-free from sealed snapshots.
    #[serde(default)]
    pub mvcc_snapshot_reads: u64,
    /// Optimistic `CONSUME` attempts that lost the epoch race and retried.
    #[serde(default)]
    pub mvcc_consume_retries: u64,
    /// `CONSUME`s that fell back to the fully locked path.
    #[serde(default)]
    pub mvcc_consume_fallbacks: u64,
    /// Sessions currently registered on reactor threads (0 under the
    /// threaded model).
    #[serde(default)]
    pub reactor_sessions: u64,
    /// Readiness events delivered to reactor connections.
    #[serde(default)]
    pub reactor_ready_events: u64,
    /// Dispatches parked on a full worker queue (backpressure stalls).
    #[serde(default)]
    pub reactor_stalls: u64,
    /// Self-pipe wake bytes the reactors drained.
    #[serde(default)]
    pub reactor_wakeups: u64,
    /// High-water mark of one connection's buffered response bytes.
    #[serde(default)]
    pub reactor_write_hwm: u64,
}

impl From<crate::stats::MetricsSnapshot> for StatsSummary {
    fn from(m: crate::stats::MetricsSnapshot) -> Self {
        StatsSummary {
            accepted: m.accepted,
            rejected: m.rejected,
            requests: m.requests,
            responses: m.responses,
            errors: m.errors,
            faults_injected: m.faults_injected,
            worker_panics: m.worker_panics,
            workers_respawned: m.workers_respawned,
            driver_ticks: m.driver_ticks,
            shards: m.shards,
            shards_dropped: m.shards_dropped,
            shards_pruned: m.shards_pruned,
            shards_split: m.shards_split,
            shards_merged: m.shards_merged,
            shards_restored: m.shards_restored,
            sketches: m.sketches,
            sketch_hits: m.sketch_hits,
            sketch_absorbed: m.sketch_absorbed,
            mvcc_epoch: m.mvcc_epoch,
            mvcc_published: m.mvcc_published,
            mvcc_retired: m.mvcc_retired,
            mvcc_reclaimed: m.mvcc_reclaimed,
            mvcc_snapshot_reads: m.mvcc_snapshot_reads,
            mvcc_consume_retries: m.mvcc_consume_retries,
            mvcc_consume_fallbacks: m.mvcc_consume_fallbacks,
            reactor_sessions: m.reactor_sessions,
            reactor_ready_events: m.reactor_ready_events,
            reactor_stalls: m.reactor_stalls,
            reactor_wakeups: m.reactor_wakeups,
            reactor_write_hwm: m.reactor_write_hwm,
        }
    }
}

/// Coarse error classes clients can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The statement text did not parse.
    Parse,
    /// The statement referenced a missing container or column.
    Unknown,
    /// The statement was understood but could not run.
    Execution,
    /// The frame or JSON payload was malformed.
    Protocol,
    /// The server refused the connection or request (capacity, shutdown).
    Unavailable,
}

impl Request {
    /// Serialises to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(json::to_string(self)?.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| FungusError::CorruptSnapshot(format!("request not UTF-8: {e}")))?;
        json::from_str(text)
    }

    /// Whether replaying this request is observably identical to sending
    /// it once — the retry guard's whole decision.
    ///
    /// Safe to replay: [`Request::Ping`], read-only dot commands
    /// (`.ping`, `.health`, `.containers`, `.session`, `.stats`,
    /// `.sketch`), `SELECT`s without `CONSUME`, and `SUMMARIZE` (sketch
    /// reads answer from the summary without touching the extent; the
    /// hit counter they bump is telemetry, like a `SELECT`'s query
    /// counter). Everything else mutates — `INSERT`s
    /// append, `CONSUME` queries delete what they return, `.tick`
    /// advances the decay clock — so an ambiguous transport failure
    /// (did the server execute it before the connection died?) must
    /// surface to the caller instead of being blindly replayed.
    ///
    /// The `CONSUME` check is textual and deliberately conservative: a
    /// statement merely *containing* the keyword (say, in a string
    /// literal) is treated as consuming and not retried. False negatives
    /// cost a retry; false positives would replay a destructive read.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Ping => true,
            Request::Dot { line } => {
                let verb = line.split_whitespace().next().unwrap_or("");
                matches!(
                    verb,
                    ".ping" | ".health" | ".containers" | ".session" | ".stats" | ".sketch"
                )
            }
            Request::Sql { text } => {
                let head = text.trim_start();
                let is_select = head
                    .get(..6)
                    .is_some_and(|h| h.eq_ignore_ascii_case("select"));
                let is_summarize = head
                    .get(..9)
                    .is_some_and(|h| h.eq_ignore_ascii_case("summarize"));
                (is_select || is_summarize) && !text.to_ascii_uppercase().contains("CONSUME")
            }
        }
    }
}

impl Response {
    /// Serialises to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(json::to_string(self)?.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| FungusError::CorruptSnapshot(format!("response not UTF-8: {e}")))?;
        json::from_str(text)
    }

    /// Converts an engine outcome into its wire form.
    pub fn from_outcome(outcome: QueryOutcome) -> Response {
        Response::Rows {
            columns: outcome.result.columns,
            rows: outcome.result.rows,
            distilled: outcome.distilled,
            consumed: outcome.result.consumed.len() as u64,
        }
    }

    /// Converts an engine error into its wire form.
    pub fn from_error(err: &FungusError) -> Response {
        let code = match err {
            FungusError::ParseError { .. } => ErrorCode::Parse,
            FungusError::UnknownContainer(_)
            | FungusError::UnknownColumn(_)
            | FungusError::ContainerExists(_) => ErrorCode::Unknown,
            FungusError::CorruptSnapshot(_) => ErrorCode::Protocol,
            _ => ErrorCode::Execution,
        };
        Response::Error {
            code,
            message: err.to_string(),
        }
    }

    /// Converts a framing error into its wire form (where a reply is
    /// still possible).
    pub fn from_frame_error(err: &FrameError) -> Response {
        Response::Error {
            code: ErrorCode::Protocol,
            message: err.to_string(),
        }
    }

    /// The number of rows carried, if this is a row response.
    pub fn row_count(&self) -> Option<usize> {
        match self {
            Response::Rows { rows, .. } => Some(rows.len()),
            _ => None,
        }
    }

    /// True for [`Response::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Sql {
                text: "SELECT * FROM r WHERE v > 1 CONSUME".into(),
            },
            Request::Dot {
                line: ".health readings".into(),
            },
            Request::Ping,
        ] {
            let bytes = req.encode().unwrap();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Rows {
                columns: vec!["v".into()],
                rows: vec![vec![Value::Int(1)], vec![Value::Null]],
                distilled: 3,
                consumed: 2,
            },
            Response::Ack {
                message: "created".into(),
            },
            Response::Health {
                reports: vec![HealthSummary {
                    container: "r".into(),
                    at: 9,
                    score: 0.75,
                    status: "stable".into(),
                    live: 100,
                    mean_freshness: 0.5,
                    waste_ratio: 0.1,
                }],
                server: None,
            },
            Response::Health {
                reports: vec![],
                server: Some(StatsSummary {
                    accepted: 4,
                    rejected: 1,
                    requests: 90,
                    responses: 88,
                    errors: 2,
                    faults_injected: 7,
                    worker_panics: 1,
                    workers_respawned: 1,
                    driver_ticks: 1234,
                    shards: 12,
                    shards_dropped: 3,
                    shards_pruned: 40,
                    shards_split: 5,
                    shards_merged: 2,
                    shards_restored: 12,
                    sketches: 6,
                    sketch_hits: 19,
                    sketch_absorbed: 5000,
                    mvcc_epoch: 88,
                    mvcc_published: 90,
                    mvcc_retired: 89,
                    mvcc_reclaimed: 89,
                    mvcc_snapshot_reads: 450,
                    mvcc_consume_retries: 3,
                    mvcc_consume_fallbacks: 1,
                    reactor_sessions: 12,
                    reactor_ready_events: 900,
                    reactor_stalls: 4,
                    reactor_wakeups: 350,
                    reactor_write_hwm: 8192,
                }),
            },
            Response::Pong,
            Response::Error {
                code: ErrorCode::Parse,
                message: "nope".into(),
            },
        ] {
            let bytes = resp.encode().unwrap();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(b"{\"Sql\":").is_err());
        assert!(Request::decode(&[0xff, 0xfe]).is_err());
        assert!(Response::decode(b"[1,2,3]").is_err());
    }

    #[test]
    fn idempotency_guard_classifies_requests() {
        let sql = |text: &str| Request::Sql { text: text.into() };
        let dot = |line: &str| Request::Dot { line: line.into() };

        // Safe to replay.
        assert!(Request::Ping.is_idempotent());
        assert!(dot(".health r").is_idempotent());
        assert!(dot(".containers").is_idempotent());
        assert!(dot(".stats").is_idempotent());
        assert!(sql("SELECT * FROM r WHERE v > 1").is_idempotent());
        assert!(sql("  select count(*) from r").is_idempotent());
        assert!(sql("SUMMARIZE hot FROM clicks TOP 5").is_idempotent());
        assert!(sql("  summarize hot from clicks").is_idempotent());
        assert!(dot(".sketch clicks hot").is_idempotent());

        // Never blindly replayed.
        assert!(!sql("SELECT * FROM r CONSUME").is_idempotent());
        assert!(!sql("select v from r consume").is_idempotent());
        assert!(!sql("INSERT INTO r VALUES (1)").is_idempotent());
        assert!(!sql("CREATE CONTAINER s (x INT) WITH FUNGUS ttl(5)").is_idempotent());
        assert!(!dot(".tick 5").is_idempotent());
        assert!(!dot(".tick").is_idempotent());
        // Conservative: CONSUME anywhere in the text disables retries.
        assert!(!sql("SELECT * FROM r WHERE note = 'CONSUME'").is_idempotent());
    }

    #[test]
    fn error_codes_classify_engine_errors() {
        let resp = Response::from_error(&FungusError::UnknownContainer("x".into()));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Unknown,
                ..
            }
        ));
    }
}
