//! Logical planning.
//!
//! The planner turns a parsed [`SelectStatement`] into a validated
//! [`LogicalPlan`]:
//!
//! * resolves `*` against the schema and checks every column reference;
//! * splits projections into scalar vs aggregate mode and enforces the
//!   GROUP BY rules (scalar outputs must be grouping columns);
//! * derives the [`PruningPredicate`] used for zone-map segment skipping;
//! * names every output column (alias > expression text).

use fungus_types::{FungusError, Result, Schema};

use crate::expr::{AggFunc, Expr};
use crate::parser::{ProjExpr, Projection, SelectStatement, SortKey};
use crate::prune::PruningPredicate;

/// One named output of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputColumn {
    /// Result-set column name.
    pub name: String,
    /// What to compute.
    pub expr: PlannedExpr,
}

/// A planned output expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedExpr {
    /// Row-level expression (scalar mode) or grouping column (aggregate
    /// mode, stored as the group key index).
    Scalar(Expr),
    /// In aggregate mode: the value of the i-th grouping column.
    GroupKey(usize),
    /// An aggregate over the matched rows.
    Aggregate(AggFunc, Option<Expr>),
    /// Exact `COUNT(DISTINCT expr)` over the matched rows.
    CountDistinct(Expr),
}

/// A fully validated logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Source container.
    pub table: String,
    /// Deduplicate output rows (scalar mode only).
    pub distinct: bool,
    /// HAVING filter over the aggregate output row.
    pub having: Option<Expr>,
    /// Row filter.
    pub predicate: Option<Expr>,
    /// Zone-map pruning derived from the filter.
    pub pruning: PruningPredicate,
    /// Output columns in order.
    pub outputs: Vec<OutputColumn>,
    /// Aggregate mode? (true when any aggregate or GROUP BY appears).
    pub aggregate: bool,
    /// Grouping expressions (column names) in aggregate mode.
    pub group_by: Vec<String>,
    /// Sort keys. In scalar mode they evaluate against source rows; in
    /// aggregate mode against the output rows.
    pub order_by: Vec<SortKey>,
    /// Row limit applied after sorting.
    pub limit: Option<usize>,
    /// Consume semantics: matched source tuples are removed.
    pub consume: bool,
}

impl std::fmt::Display for LogicalPlan {
    /// Renders the plan in an EXPLAIN-style indented tree.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(n) = self.limit {
            writeln!(f, "Limit {n}")?;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.descending { " DESC" } else { "" }))
                .collect();
            writeln!(f, "Sort [{}]", keys.join(", "))?;
        }
        if self.distinct {
            writeln!(f, "Distinct")?;
        }
        if let Some(h) = &self.having {
            writeln!(f, "Having {h}")?;
        }
        if self.aggregate {
            let outs: Vec<String> = self.outputs.iter().map(|o| o.name.clone()).collect();
            if self.group_by.is_empty() {
                writeln!(f, "Aggregate [{}]", outs.join(", "))?;
            } else {
                writeln!(
                    f,
                    "Aggregate [{}] group by [{}]",
                    outs.join(", "),
                    self.group_by.join(", ")
                )?;
            }
        } else {
            let outs: Vec<String> = self.outputs.iter().map(|o| o.name.clone()).collect();
            writeln!(f, "Project [{}]", outs.join(", "))?;
        }
        write!(f, "Scan {}", self.table)?;
        if self.consume {
            write!(f, " CONSUME")?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " filter {p}")?;
        }
        if !self.pruning.is_trivial() {
            write!(f, " [{} prunable bound(s)]", self.pruning.bounds().len())?;
        }
        Ok(())
    }
}

/// Statement → plan compiler.
#[derive(Debug, Default, Clone, Copy)]
pub struct Planner;

impl Planner {
    /// Compiles and validates `stmt` against `schema`.
    pub fn plan(&self, stmt: &SelectStatement, schema: &Schema) -> Result<LogicalPlan> {
        if let Some(p) = &stmt.predicate {
            p.validate(schema)?;
        }

        let aggregate = !stmt.group_by.is_empty()
            || stmt.projections.iter().any(|p| {
                matches!(
                    p,
                    Projection::Expr {
                        expr: ProjExpr::Aggregate(..) | ProjExpr::CountDistinct(_),
                        ..
                    }
                )
            });

        // Validate group-by columns exist.
        for g in &stmt.group_by {
            if schema.index_of(g).is_none() {
                return Err(FungusError::UnknownColumn(g.clone()));
            }
        }

        let mut outputs = Vec::new();
        for proj in &stmt.projections {
            match proj {
                Projection::Wildcard => {
                    if aggregate {
                        return Err(FungusError::PlanError(
                            "`*` cannot be mixed with aggregation".into(),
                        ));
                    }
                    for col in schema.columns() {
                        outputs.push(OutputColumn {
                            name: col.name.clone(),
                            expr: PlannedExpr::Scalar(Expr::col(&col.name)),
                        });
                    }
                }
                Projection::Expr { expr, alias } => match expr {
                    ProjExpr::Scalar(e) => {
                        e.validate(schema)?;
                        if aggregate {
                            // A scalar output must be a grouping column.
                            let Expr::Column(name) = e else {
                                return Err(FungusError::PlanError(format!(
                                    "non-aggregated expression `{e}` must be a GROUP BY column"
                                )));
                            };
                            let Some(key_idx) = stmt.group_by.iter().position(|g| g == name) else {
                                return Err(FungusError::PlanError(format!(
                                    "column `{name}` must appear in GROUP BY"
                                )));
                            };
                            outputs.push(OutputColumn {
                                name: alias.clone().unwrap_or_else(|| name.clone()),
                                expr: PlannedExpr::GroupKey(key_idx),
                            });
                        } else {
                            outputs.push(OutputColumn {
                                name: alias.clone().unwrap_or_else(|| e.to_string()),
                                expr: PlannedExpr::Scalar(e.clone()),
                            });
                        }
                    }
                    ProjExpr::CountDistinct(arg) => {
                        arg.validate(schema)?;
                        let name = alias
                            .clone()
                            .unwrap_or_else(|| format!("COUNT(DISTINCT {arg})"));
                        outputs.push(OutputColumn {
                            name,
                            expr: PlannedExpr::CountDistinct(arg.clone()),
                        });
                    }
                    ProjExpr::Aggregate(func, arg) => {
                        if let Some(a) = arg {
                            a.validate(schema)?;
                        }
                        let name = alias.clone().unwrap_or_else(|| match arg {
                            Some(a) => format!("{}({a})", func.name()),
                            None => format!("{}(*)", func.name()),
                        });
                        outputs.push(OutputColumn {
                            name,
                            expr: PlannedExpr::Aggregate(*func, arg.clone()),
                        });
                    }
                },
            }
        }

        if outputs.is_empty() {
            return Err(FungusError::PlanError("empty projection list".into()));
        }

        // Sort keys: scalar mode validates against the source schema;
        // aggregate mode validates lazily against the output schema at
        // execution time (output columns may be aliases).
        if !aggregate {
            for key in &stmt.order_by {
                key.expr.validate(schema)?;
            }
        }

        if stmt.having.is_some() && !aggregate {
            return Err(FungusError::PlanError(
                "HAVING requires aggregation or GROUP BY".into(),
            ));
        }
        if stmt.distinct && aggregate {
            return Err(FungusError::PlanError(
                "DISTINCT is redundant with aggregation; drop it".into(),
            ));
        }

        let pruning = PruningPredicate::analyze(stmt.predicate.as_ref(), schema);

        Ok(LogicalPlan {
            table: stmt.table.clone(),
            distinct: stmt.distinct,
            having: stmt.having.clone(),
            predicate: stmt.predicate.clone(),
            pruning,
            outputs,
            aggregate,
            group_by: stmt.group_by.clone(),
            order_by: stmt.order_by.clone(),
            limit: stmt.limit,
            consume: stmt.consume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use fungus_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("sensor", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ])
        .unwrap()
    }

    fn plan(src: &str) -> Result<LogicalPlan> {
        let stmt = match parse_statement(src).unwrap() {
            crate::parser::Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        };
        Planner.plan(&stmt, &schema())
    }

    #[test]
    fn wildcard_expands_in_schema_order() {
        let p = plan("SELECT * FROM r").unwrap();
        let names: Vec<&str> = p.outputs.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["sensor", "v", "tag"]);
        assert!(!p.aggregate);
        assert!(!p.consume);
    }

    #[test]
    fn aliases_and_expression_names() {
        let p = plan("SELECT v * 2 AS double_v, sensor FROM r").unwrap();
        assert_eq!(p.outputs[0].name, "double_v");
        assert_eq!(p.outputs[1].name, "sensor");
    }

    #[test]
    fn default_aggregate_names() {
        let p = plan("SELECT COUNT(*), SUM(v) FROM r").unwrap();
        assert!(p.aggregate);
        assert_eq!(p.outputs[0].name, "COUNT(*)");
        assert_eq!(p.outputs[1].name, "SUM(v)");
    }

    #[test]
    fn group_by_binds_scalar_outputs_to_keys() {
        let p = plan("SELECT sensor, COUNT(*) FROM r GROUP BY sensor").unwrap();
        assert_eq!(p.outputs[0].expr, PlannedExpr::GroupKey(0));
        assert!(matches!(
            p.outputs[1].expr,
            PlannedExpr::Aggregate(AggFunc::Count, None)
        ));
    }

    #[test]
    fn ungrouped_scalar_in_aggregate_is_rejected() {
        let err = plan("SELECT tag, COUNT(*) FROM r").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
        let err = plan("SELECT v + 1, COUNT(*) FROM r GROUP BY v").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn wildcard_with_aggregation_is_rejected() {
        assert!(plan("SELECT *, COUNT(*) FROM r").is_err());
    }

    #[test]
    fn unknown_columns_are_rejected_everywhere() {
        assert!(plan("SELECT zzz FROM r").is_err());
        assert!(plan("SELECT * FROM r WHERE zzz = 1").is_err());
        assert!(plan("SELECT COUNT(zzz) FROM r").is_err());
        assert!(plan("SELECT sensor FROM r GROUP BY zzz").is_err());
        assert!(plan("SELECT * FROM r ORDER BY zzz").is_err());
    }

    #[test]
    fn consume_and_limit_flow_through() {
        let p = plan("SELECT * FROM r WHERE v > 0.5 LIMIT 5 CONSUME").unwrap();
        assert!(p.consume);
        assert_eq!(p.limit, Some(5));
        assert!(p.predicate.is_some());
        assert!(!p.pruning.is_trivial());
    }

    #[test]
    fn display_renders_the_plan_tree() {
        let p = plan(
            "SELECT sensor, SUM(v) AS total FROM r WHERE v > 1              GROUP BY sensor HAVING total > 5 ORDER BY total DESC LIMIT 3",
        )
        .unwrap();
        let text = p.to_string();
        assert!(text.contains("Limit 3"), "{text}");
        assert!(text.contains("Sort [total DESC]"), "{text}");
        assert!(text.contains("Having"), "{text}");
        assert!(text.contains("group by [sensor]"), "{text}");
        assert!(text.contains("Scan r filter"), "{text}");
        assert!(text.contains("prunable bound"), "{text}");
        let p = plan("SELECT DISTINCT tag FROM r CONSUME").unwrap();
        let text = p.to_string();
        assert!(text.contains("Distinct"), "{text}");
        assert!(text.contains("Scan r CONSUME"), "{text}");
    }

    #[test]
    fn pseudo_columns_plan_fine() {
        let p = plan("SELECT $id, $freshness FROM r WHERE $age > 10").unwrap();
        assert_eq!(p.outputs[0].name, "$id");
        assert!(p.pruning.is_trivial(), "meta predicates cannot prune zones");
    }
}
