//! The expression tree and its evaluator.
//!
//! Expressions evaluate against one tuple (attributes + decay metadata)
//! under SQL three-valued logic: comparisons with NULL yield NULL, `AND` /
//! `OR` short-circuit through unknowns, and a WHERE clause accepts a tuple
//! only when its predicate evaluates to *true* (unknown rejects).

use std::fmt;

use fungus_types::{FungusError, Result, Schema, Tick, Tuple, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition; string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (NULL on division by zero).
    Div,
    /// `%` (NULL on zero divisor).
    Rem,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        })
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Decay metadata exposed as pseudo-columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaField {
    /// `$freshness` — the tuple's current freshness as a Float.
    Freshness,
    /// `$age` — ticks since insertion, relative to the query's `now`.
    Age,
    /// `$id` — the stable tuple id.
    Id,
    /// `$inserted_at` — insertion tick (the paper's `t` column).
    InsertedAt,
    /// `$reads` — how many queries returned this tuple.
    Reads,
}

impl MetaField {
    /// Parses the pseudo-column name (without the `$`).
    pub fn from_name(name: &str) -> Option<MetaField> {
        Some(match name {
            "freshness" => MetaField::Freshness,
            "age" => MetaField::Age,
            "id" => MetaField::Id,
            "inserted_at" => MetaField::InsertedAt,
            "reads" => MetaField::Reads,
            _ => return None,
        })
    }

    /// The pseudo-column's SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            MetaField::Freshness => "$freshness",
            MetaField::Age => "$age",
            MetaField::Id => "$id",
            MetaField::InsertedAt => "$inserted_at",
            MetaField::Reads => "$reads",
        }
    }

    /// Evaluates the field for a tuple observed at `now`.
    pub fn eval(self, tuple: &Tuple, now: Tick) -> Value {
        match self {
            MetaField::Freshness => Value::Float(tuple.meta.freshness.get()),
            MetaField::Age => Value::Int(tuple.meta.age(now).get() as i64),
            MetaField::Id => Value::Int(tuple.meta.id.get() as i64),
            MetaField::InsertedAt => Value::Int(tuple.meta.inserted_at.get() as i64),
            MetaField::Reads => Value::Int(i64::from(tuple.meta.access_count)),
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `ABS(x)` — absolute value of a numeric.
    Abs,
    /// `ROUND(x)` / `ROUND(x, digits)` — round half away from zero.
    Round,
    /// `FLOOR(x)`.
    Floor,
    /// `CEIL(x)`.
    Ceil,
    /// `LENGTH(s)` — characters in a string / bytes in a byte string.
    Length,
    /// `LOWER(s)`.
    Lower,
    /// `UPPER(s)`.
    Upper,
    /// `COALESCE(a, b, …)` — first non-NULL argument.
    Coalesce,
}

impl ScalarFunc {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "ABS" => ScalarFunc::Abs,
            "ROUND" => ScalarFunc::Round,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "LENGTH" | "LEN" => ScalarFunc::Length,
            "LOWER" => ScalarFunc::Lower,
            "UPPER" => ScalarFunc::Upper,
            "COALESCE" => ScalarFunc::Coalesce,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Round => "ROUND",
            ScalarFunc::Floor => "FLOOR",
            ScalarFunc::Ceil => "CEIL",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Coalesce => "COALESCE",
        }
    }

    /// Legal argument-count range.
    fn arity(self) -> (usize, usize) {
        match self {
            ScalarFunc::Round => (1, 2),
            ScalarFunc::Coalesce => (1, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Validates an argument count at plan time.
    pub fn check_arity(self, n: usize) -> Result<()> {
        let (lo, hi) = self.arity();
        if n < lo || n > hi {
            return Err(FungusError::PlanError(format!(
                "{} takes {} argument(s), got {n}",
                self.name(),
                if hi == usize::MAX {
                    format!("at least {lo}")
                } else {
                    format!("{lo}..={hi}")
                },
            )));
        }
        Ok(())
    }

    fn apply(self, args: &[Value]) -> Result<Value> {
        let numeric = |v: &Value, what: &str| -> Result<Option<f64>> {
            if v.is_null() {
                return Ok(None);
            }
            v.as_f64().map(Some).ok_or_else(|| {
                FungusError::EvalError(format!(
                    "{what} requires a numeric argument, got {}",
                    v.data_type()
                ))
            })
        };
        Ok(match self {
            ScalarFunc::Abs => match numeric(&args[0], "ABS")? {
                None => Value::Null,
                Some(x) => match &args[0] {
                    Value::Int(i) => i
                        .checked_abs()
                        .map(Value::Int)
                        .unwrap_or_else(|| Value::float(x.abs())),
                    _ => Value::float(x.abs()),
                },
            },
            ScalarFunc::Round => {
                let digits = match args.get(1) {
                    Some(d) if !d.is_null() => d.as_i64().ok_or_else(|| {
                        FungusError::EvalError("ROUND digits must be an integer".into())
                    })?,
                    _ => 0,
                };
                match numeric(&args[0], "ROUND")? {
                    None => Value::Null,
                    Some(x) => {
                        let scale = 10f64.powi(digits.clamp(-12, 12) as i32);
                        Value::float((x * scale).round() / scale)
                    }
                }
            }
            ScalarFunc::Floor => match numeric(&args[0], "FLOOR")? {
                None => Value::Null,
                Some(x) => Value::float(x.floor()),
            },
            ScalarFunc::Ceil => match numeric(&args[0], "CEIL")? {
                None => Value::Null,
                Some(x) => Value::float(x.ceil()),
            },
            ScalarFunc::Length => match &args[0] {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                Value::Bytes(b) => Value::Int(b.len() as i64),
                other => {
                    return Err(FungusError::EvalError(format!(
                        "LENGTH requires a string, got {}",
                        other.data_type()
                    )))
                }
            },
            ScalarFunc::Lower | ScalarFunc::Upper => match &args[0] {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Str(if self == ScalarFunc::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }),
                other => {
                    return Err(FungusError::EvalError(format!(
                        "{} requires a string, got {}",
                        self.name(),
                        other.data_type()
                    )))
                }
            },
            ScalarFunc::Coalesce => args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null),
        })
    }
}

/// Aggregate functions.
///
/// The `F`-prefixed variants are the engine's paper-specific extension:
/// **freshness-weighted aggregates**, where each tuple contributes in
/// proportion to its current freshness. `FCOUNT(*)` is the "effective"
/// extent size; `FAVG(x)` is the freshness-weighted mean, discounting
/// stale observations exactly as the first natural law discounts their
/// storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `STDDEV(expr)` — population standard deviation.
    StdDev,
    /// `VARIANCE(expr)` — population variance.
    Variance,
    /// `FCOUNT(*)` — sum of freshness over matched tuples.
    FCount,
    /// `FSUM(expr)` — freshness-weighted sum `Σ fᵢ·xᵢ`.
    FSum,
    /// `FAVG(expr)` — freshness-weighted mean `Σ fᵢ·xᵢ / Σ fᵢ`.
    FAvg,
}

impl AggFunc {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "STDDEV" | "STDEV" => AggFunc::StdDev,
            "VARIANCE" | "VAR" => AggFunc::Variance,
            "FCOUNT" => AggFunc::FCount,
            "FSUM" => AggFunc::FSum,
            "FAVG" => AggFunc::FAvg,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::StdDev => "STDDEV",
            AggFunc::Variance => "VARIANCE",
            AggFunc::FCount => "FCOUNT",
            AggFunc::FSum => "FSUM",
            AggFunc::FAvg => "FAVG",
        }
    }

    /// Whether the function weights its input by tuple freshness.
    pub fn freshness_weighted(self) -> bool {
        matches!(self, AggFunc::FCount | AggFunc::FSum | AggFunc::FAvg)
    }
}

/// An expression over one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// An attribute column by name.
    Column(String),
    /// A decay pseudo-column.
    Meta(MetaField),
    /// Arithmetic.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Comparison (three-valued).
    Compare {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// `expr IN (v1, v2, …)`.
    InList {
        /// The probe expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// The probe expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// SQL `LIKE` with `%` (any run) and `_` (any char) wildcards.
    Like {
        /// The probe expression (must evaluate to a string).
        expr: Box<Expr>,
        /// The pattern literal.
        pattern: String,
    },
    /// A built-in scalar function call.
    Call {
        /// The function.
        func: ScalarFunc,
        /// Its arguments.
        args: Vec<Expr>,
    },
    /// `CASE WHEN c1 THEN e1 [WHEN c2 THEN e2 …] [ELSE e] END`.
    ///
    /// Searched-case semantics: the first arm whose condition is *true*
    /// wins (NULL conditions fall through); with no ELSE the result is
    /// NULL.
    Case {
        /// `(condition, result)` arms in order.
        arms: Vec<(Expr, Expr)>,
        /// Optional ELSE expression.
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Builds `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Compare {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Builds `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates against a tuple. `now` anchors the `$age` pseudo-column.
    pub fn eval(&self, tuple: &Tuple, schema: &Schema, now: Tick) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| FungusError::UnknownColumn(name.clone()))?;
                Ok(tuple.values[idx].clone())
            }
            Expr::Meta(field) => Ok(field.eval(tuple, now)),
            Expr::Binary { left, op, right } => {
                let l = left.eval(tuple, schema, now)?;
                let r = right.eval(tuple, schema, now)?;
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                    BinOp::Rem => l.rem(&r),
                }
            }
            Expr::Compare { left, op, right } => {
                let l = left.eval(tuple, schema, now)?;
                let r = right.eval(tuple, schema, now)?;
                Ok(tri_to_value(compare(&l, *op, &r)))
            }
            Expr::And(a, b) => {
                let l = value_to_tri(a.eval(tuple, schema, now)?)?;
                // Short-circuit: false AND x = false without evaluating x.
                if l == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let r = value_to_tri(b.eval(tuple, schema, now)?)?;
                Ok(tri_to_value(match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Or(a, b) => {
                let l = value_to_tri(a.eval(tuple, schema, now)?)?;
                if l == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let r = value_to_tri(b.eval(tuple, schema, now)?)?;
                Ok(tri_to_value(match (l, r) {
                    (Some(false), Some(false)) => Some(false),
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    _ => None,
                }))
            }
            Expr::Not(e) => {
                let v = value_to_tri(e.eval(tuple, schema, now)?)?;
                Ok(tri_to_value(v.map(|b| !b)))
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(tuple, schema, now)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval(tuple, schema, now)?.is_null())),
            Expr::InList { expr, list } => {
                let probe = expr.eval(tuple, schema, now)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = item.eval(tuple, schema, now)?;
                    match probe.sql_eq(&v) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(tuple, schema, now)?;
                let lo = low.eval(tuple, schema, now)?;
                let hi = high.eval(tuple, schema, now)?;
                let ge = compare(&v, CmpOp::Ge, &lo);
                let le = compare(&v, CmpOp::Le, &hi);
                Ok(tri_to_value(match (ge, le) {
                    (Some(true), Some(true)) => Some(true),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Neg(e) => e.eval(tuple, schema, now)?.neg(),
            Expr::Like { expr, pattern } => {
                let v = expr.eval(tuple, schema, now)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                    other => Err(FungusError::EvalError(format!(
                        "LIKE requires a string operand, got {}",
                        other.data_type()
                    ))),
                }
            }
            Expr::Call { func, args } => {
                func.check_arity(args.len())?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(tuple, schema, now)?);
                }
                func.apply(&values)
            }
            Expr::Case { arms, otherwise } => {
                for (cond, result) in arms {
                    if let Some(true) = value_to_tri(cond.eval(tuple, schema, now)?)? {
                        return result.eval(tuple, schema, now);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(tuple, schema, now),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluates as a predicate: `Ok(true)` accepts the tuple; NULL
    /// (unknown) rejects, per SQL WHERE semantics.
    pub fn eval_predicate(&self, tuple: &Tuple, schema: &Schema, now: Tick) -> Result<bool> {
        match self.eval(tuple, schema, now)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(FungusError::EvalError(format!(
                "predicate must be boolean, got {}",
                other.data_type()
            ))),
        }
    }

    /// Validates that every referenced column exists; returns the first
    /// unknown name if any.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Expr::Column(name) => schema
                .index_of(name)
                .map(|_| ())
                .ok_or_else(|| FungusError::UnknownColumn(name.clone())),
            Expr::Literal(_) | Expr::Meta(_) => Ok(()),
            Expr::Binary { left, right, .. } | Expr::Compare { left, right, .. } => {
                left.validate(schema)?;
                right.validate(schema)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::Neg(e) => {
                e.validate(schema)
            }
            Expr::InList { expr, list } => {
                expr.validate(schema)?;
                list.iter().try_for_each(|e| e.validate(schema))
            }
            Expr::Between { expr, low, high } => {
                expr.validate(schema)?;
                low.validate(schema)?;
                high.validate(schema)
            }
            Expr::Like { expr, .. } => expr.validate(schema),
            Expr::Call { func, args } => {
                func.check_arity(args.len())?;
                args.iter().try_for_each(|a| a.validate(schema))
            }
            Expr::Case { arms, otherwise } => {
                for (c, r) in arms {
                    c.validate(schema)?;
                    r.validate(schema)?;
                }
                if let Some(e) = otherwise {
                    e.validate(schema)?;
                }
                Ok(())
            }
        }
    }
}

fn compare(l: &Value, op: CmpOp, r: &Value) -> Option<bool> {
    match op {
        CmpOp::Eq => l.sql_eq(r),
        CmpOp::Ne => l.sql_eq(r).map(|b| !b),
        CmpOp::Lt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Less),
        CmpOp::Le => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Greater),
        CmpOp::Gt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Greater),
        CmpOp::Ge => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Less),
    }
}

fn tri_to_value(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn value_to_tri(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(FungusError::EvalError(format!(
            "expected boolean operand, got {}",
            other.data_type()
        ))),
    }
}

/// SQL LIKE matching with `%` and `_`, non-recursive two-pointer algorithm.
fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: let the last % absorb one more character.
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Meta(m) => write!(f, "{}", m.name()),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Compare { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Between { expr, low, high } => {
                write!(f, "({expr} BETWEEN {low} AND {high})")
            }
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Like { expr, pattern } => write!(f, "({expr} LIKE '{pattern}')"),
            Expr::Call { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Case { arms, otherwise } => {
                f.write_str("CASE")?;
                for (c, r) in arms {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_types::{DataType, TupleId};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    fn tuple() -> Tuple {
        Tuple::new(
            TupleId(7),
            Tick(10),
            vec![Value::Int(4), Value::Float(2.5), Value::from("hello")],
        )
    }

    fn eval(e: &Expr) -> Value {
        e.eval(&tuple(), &schema(), Tick(15)).unwrap()
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(eval(&Expr::col("a")), Value::Int(4));
        assert_eq!(eval(&Expr::lit(9i64)), Value::Int(9));
        assert!(matches!(
            Expr::col("zzz").eval(&tuple(), &schema(), Tick(0)),
            Err(FungusError::UnknownColumn(_))
        ));
    }

    #[test]
    fn meta_fields() {
        assert_eq!(eval(&Expr::Meta(MetaField::Id)), Value::Int(7));
        assert_eq!(eval(&Expr::Meta(MetaField::Age)), Value::Int(5));
        assert_eq!(eval(&Expr::Meta(MetaField::InsertedAt)), Value::Int(10));
        assert_eq!(eval(&Expr::Meta(MetaField::Freshness)), Value::Float(1.0));
        assert_eq!(eval(&Expr::Meta(MetaField::Reads)), Value::Int(0));
        assert_eq!(
            MetaField::from_name("freshness"),
            Some(MetaField::Freshness)
        );
        assert_eq!(MetaField::from_name("nope"), None);
    }

    #[test]
    fn arithmetic_tree() {
        // (a + 1) * 2 = 10
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(Expr::col("a")),
                op: BinOp::Add,
                right: Box::new(Expr::lit(1i64)),
            }),
            op: BinOp::Mul,
            right: Box::new(Expr::lit(2i64)),
        };
        assert_eq!(eval(&e), Value::Int(10));
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::Literal(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        // NULL AND false = false; NULL AND true = NULL.
        assert_eq!(eval(&null.clone().and(f.clone())), Value::Bool(false));
        assert_eq!(eval(&null.clone().and(t.clone())), Value::Null);
        // NULL OR true = true; NULL OR false = NULL.
        assert_eq!(eval(&null.clone().or(t.clone())), Value::Bool(true));
        assert_eq!(eval(&null.clone().or(f.clone())), Value::Null);
        // NOT NULL = NULL.
        assert_eq!(eval(&Expr::Not(Box::new(null.clone()))), Value::Null);
        // Comparisons with NULL are NULL.
        assert_eq!(eval(&Expr::col("a").cmp(CmpOp::Eq, null)), Value::Null);
    }

    #[test]
    fn predicate_rejects_unknown() {
        let p = Expr::col("a").cmp(CmpOp::Eq, Expr::Literal(Value::Null));
        assert!(!p.eval_predicate(&tuple(), &schema(), Tick(0)).unwrap());
        let p = Expr::col("a").cmp(CmpOp::Eq, Expr::lit(4i64));
        assert!(p.eval_predicate(&tuple(), &schema(), Tick(0)).unwrap());
        // Non-boolean predicate is an error.
        assert!(Expr::col("a")
            .eval_predicate(&tuple(), &schema(), Tick(0))
            .is_err());
    }

    #[test]
    fn null_checks() {
        assert_eq!(
            eval(&Expr::IsNull(Box::new(Expr::Literal(Value::Null)))),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::IsNotNull(Box::new(Expr::col("a")))),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_semantics() {
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::lit(4i64)],
        };
        assert_eq!(eval(&e), Value::Bool(true));
        // Not in list, but list contains NULL → NULL (unknown).
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::Literal(Value::Null)],
        };
        assert_eq!(eval(&e), Value::Null);
        // Not in list, no NULLs → false.
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64)],
        };
        assert_eq!(eval(&e), Value::Bool(false));
        // NULL probe → NULL.
        let e = Expr::InList {
            expr: Box::new(Expr::Literal(Value::Null)),
            list: vec![Expr::lit(1i64)],
        };
        assert_eq!(eval(&e), Value::Null);
    }

    #[test]
    fn between_is_inclusive() {
        let mk = |lo: i64, hi: i64| Expr::Between {
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::lit(lo)),
            high: Box::new(Expr::lit(hi)),
        };
        assert_eq!(eval(&mk(4, 4)), Value::Bool(true));
        assert_eq!(eval(&mk(1, 3)), Value::Bool(false));
        assert_eq!(eval(&mk(1, 10)), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(!like_match("hello", "world%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b")); // % in data matches literally via wildcard
        let e = Expr::Like {
            expr: Box::new(Expr::col("s")),
            pattern: "he%".into(),
        };
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::Like {
            expr: Box::new(Expr::col("a")),
            pattern: "%".into(),
        };
        assert!(
            e.eval(&tuple(), &schema(), Tick(0)).is_err(),
            "LIKE on Int errors"
        );
    }

    #[test]
    fn negation() {
        assert_eq!(eval(&Expr::Neg(Box::new(Expr::col("a")))), Value::Int(-4));
        assert!(Expr::Neg(Box::new(Expr::col("s")))
            .eval(&tuple(), &schema(), Tick(0))
            .is_err());
    }

    #[test]
    fn scalar_functions_evaluate() {
        use crate::parser::parse_expr;
        let t = tuple(); // a=4, b=2.5, s="hello"
        let sch = schema();
        let eval_sql = |src: &str| parse_expr(src).unwrap().eval(&t, &sch, Tick(0)).unwrap();
        assert_eq!(eval_sql("ABS(-7)"), Value::Int(7));
        assert_eq!(eval_sql("ABS(0 - b)"), Value::Float(2.5));
        assert_eq!(eval_sql("ROUND(b)"), Value::Float(3.0));
        assert_eq!(eval_sql("ROUND(2.345, 2)"), Value::Float(2.35));
        assert_eq!(eval_sql("FLOOR(b)"), Value::Float(2.0));
        assert_eq!(eval_sql("CEIL(b)"), Value::Float(3.0));
        assert_eq!(eval_sql("LENGTH(s)"), Value::Int(5));
        assert_eq!(eval_sql("UPPER(s)"), Value::from("HELLO"));
        assert_eq!(eval_sql("LOWER(UPPER(s))"), Value::from("hello"));
        assert_eq!(eval_sql("COALESCE(NULL, NULL, a, 9)"), Value::Int(4));
        assert!(eval_sql("COALESCE(NULL)").is_null());
        assert!(eval_sql("ABS(NULL)").is_null());
        // LENGTH counts characters, not bytes.
        assert_eq!(
            Expr::Call {
                func: ScalarFunc::Length,
                args: vec![Expr::lit("héllo")],
            }
            .eval(&t, &sch, Tick(0))
            .unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn scalar_function_errors() {
        use crate::parser::parse_expr;
        let t = tuple();
        let sch = schema();
        // Wrong types.
        assert!(parse_expr("ABS(s)")
            .unwrap()
            .eval(&t, &sch, Tick(0))
            .is_err());
        assert!(parse_expr("LENGTH(a)")
            .unwrap()
            .eval(&t, &sch, Tick(0))
            .is_err());
        // Wrong arity is caught by validate (plan time) and eval.
        let bad = Expr::Call {
            func: ScalarFunc::Abs,
            args: vec![],
        };
        assert!(bad.validate(&sch).is_err());
        assert!(bad.eval(&t, &sch, Tick(0)).is_err());
        // Unknown functions fail at parse time.
        assert!(parse_expr("BOGUS(1)").is_err());
        // ABS(i64::MIN) spills to float instead of panicking.
        let v = Expr::Call {
            func: ScalarFunc::Abs,
            args: vec![Expr::lit(i64::MIN)],
        }
        .eval(&t, &sch, Tick(0))
        .unwrap();
        assert_eq!(v.data_type(), DataType::Float);
    }

    #[test]
    fn call_display_reparses() {
        use crate::parser::parse_expr;
        let e = parse_expr("COALESCE(ROUND(b, 1), ABS(a), 0)").unwrap();
        assert_eq!(e.to_string(), "COALESCE(ROUND(b, 1), ABS(a), 0)");
        assert_eq!(parse_expr(&e.to_string()).unwrap(), e);
    }

    #[test]
    fn validate_finds_unknown_columns() {
        let good = Expr::col("a").and(Expr::col("b").cmp(CmpOp::Gt, Expr::lit(0i64)));
        assert!(good.validate(&schema()).is_ok());
        let bad = Expr::col("a").and(Expr::col("zzz").cmp(CmpOp::Gt, Expr::lit(0i64)));
        assert!(
            matches!(bad.validate(&schema()), Err(FungusError::UnknownColumn(n)) if n == "zzz")
        );
    }

    #[test]
    fn display_renders_parenthesised_sql() {
        let e = Expr::col("a")
            .cmp(CmpOp::Gt, Expr::lit(1i64))
            .and(Expr::Meta(MetaField::Freshness).cmp(CmpOp::Lt, Expr::lit(0.5)));
        assert_eq!(e.to_string(), "((a > 1) AND ($freshness < 0.5))");
    }

    #[test]
    fn short_circuit_skips_errors_on_right() {
        // false AND <type error> = false thanks to short-circuit.
        let e = Expr::lit(false).and(Expr::col("zzz"));
        assert_eq!(eval(&e), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::col("zzz"));
        assert_eq!(eval(&e), Value::Bool(true));
    }
}
