//! A hand-rolled lexer and recursive-descent parser for the engine's
//! SQL-ish surface language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := select | insert
//! select     := SELECT proj (',' proj)* FROM ident
//!               [WHERE expr] [GROUP BY ident (',' ident)*]
//!               [ORDER BY sortkey (',' sortkey)*] [LIMIT int] [CONSUME]
//! proj       := '*' | expr [AS ident]
//! sortkey    := expr [ASC | DESC]
//! insert     := INSERT INTO ident VALUES row (',' row)*
//! row        := '(' expr (',' expr)* ')'
//! expr       := or-chain over and-chains over NOT/comparison/IS NULL/
//!               IN/BETWEEN/LIKE over +,- over *,/,% over unary over atoms
//! atom       := literal | ident | '$'ident | agg '(' (expr|'*') ')' | '(' expr ')'
//! ```
//!
//! `CONSUME` is the paper's second natural law: the matched tuples are
//! removed from the container atomically with the scan.

use fungus_types::{FungusError, Result, Value};

use crate::expr::{AggFunc, BinOp, CmpOp, Expr, MetaField, ScalarFunc};

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*` — every attribute column.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression (may contain an aggregate).
        expr: ProjExpr,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
}

/// A projection expression: plain or aggregated.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjExpr {
    /// A row-level expression.
    Scalar(Expr),
    /// `agg(expr)`; `COUNT(*)` carries `None`.
    Aggregate(AggFunc, Option<Expr>),
    /// `COUNT(DISTINCT expr)` — exact distinct count within each group.
    CountDistinct(Expr),
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending order?
    pub descending: bool,
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// Source container name.
    pub table: String,
    /// Optional predicate.
    pub predicate: Option<Expr>,
    /// Optional group-by column names.
    pub group_by: Vec<String>,
    /// Optional HAVING filter over the aggregate output row.
    pub having: Option<Expr>,
    /// Optional sort keys.
    pub order_by: Vec<SortKey>,
    /// Optional row limit.
    pub limit: Option<usize>,
    /// Consume semantics (second natural law).
    pub consume: bool,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query (possibly consuming).
    Select(SelectStatement),
    /// `INSERT INTO t VALUES (…), (…)` — rows of literal expressions.
    Insert {
        /// Target container.
        table: String,
        /// Literal rows (evaluated without a tuple context).
        rows: Vec<Vec<Expr>>,
    },
    /// `CREATE [ORDERED] INDEX ON t (col)` — build a secondary index
    /// (hash by default; `ORDERED` builds a B-tree for range probes).
    CreateIndex {
        /// Target container.
        table: String,
        /// Indexed column.
        column: String,
        /// B-tree instead of hash.
        ordered: bool,
    },
    /// `CREATE CONTAINER t (a INT, b FLOAT NOT NULL) [WITH FUNGUS name(args…)]
    /// [SHARDS n | WITH SHARDING (rows_per_shard = n, …)]
    /// [WITH DISTILL (name = scheme(args…) [ON col], …)] [DECAY EVERY n]`
    /// — DDL interpreted by the engine layer; clauses may appear in any
    /// order after the column list.
    CreateContainer(CreateContainerStatement),
    /// `DELETE FROM t [WHERE p]` — owner deletion (tombstoned as
    /// `Deleted`, not `Consumed`: the rows were discarded, not read).
    Delete {
        /// Target container.
        table: String,
        /// Optional predicate; `None` empties the container.
        predicate: Option<Expr>,
    },
    /// `EXPLAIN <select>` — render the logical plan instead of running it.
    Explain(Box<SelectStatement>),
    /// `SUMMARIZE <summary> FROM t [TOP n]` — read a distillation
    /// pipeline's current answers as a small relation. The read path of
    /// the cooking pipelines: what `SELECT` is to the live extent,
    /// `SUMMARIZE` is to the summaries of the departed data.
    Summarize {
        /// Source container.
        table: String,
        /// Distillation pipeline name (from `WITH DISTILL (…)`).
        summary: String,
        /// Optional row cap on the report (e.g. the top-k cut).
        top: Option<usize>,
    },
}

/// A parsed `CREATE CONTAINER`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateContainerStatement {
    /// New container name.
    pub name: String,
    /// Columns as `(name, type name, nullable)`; type names are resolved
    /// by the engine layer (`INT`, `FLOAT`, `STR`/`TEXT`, `BOOL`, `BYTES`).
    pub columns: Vec<(String, String, bool)>,
    /// Optional fungus: `(name, numeric args)`, resolved by the engine.
    pub fungus: Option<(String, Vec<f64>)>,
    /// Optional decay cadence in ticks.
    pub decay_every: Option<u64>,
    /// Optional extent sharding, from `SHARDS n` or `WITH SHARDING (…)`.
    pub sharding: Option<ShardingClause>,
    /// Distillation pipelines from `WITH DISTILL (…)`, in declaration
    /// order; resolved into summary specs by the engine layer.
    pub distill: Vec<DistillClause>,
}

/// Declarative sharding options from a `CREATE CONTAINER` statement —
/// either the `SHARDS n` shorthand or the full
/// `WITH SHARDING (rows_per_shard = n, adaptive = on|off, low_water = f,
/// workers = n)` form. The engine layer resolves this into its shard
/// specification; unset options take the engine's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingClause {
    /// Target rows per time-range shard (`SHARDS n` sets only this).
    pub rows_per_shard: u64,
    /// `adaptive = on|off`: split hot tails early and merge hollowed-out
    /// sealed neighbors during eviction sweeps. `None` = engine default.
    pub adaptive: Option<bool>,
    /// `low_water = f`: merge a sealed shard whose live fraction falls
    /// under `f` (0 disables merging). `None` = engine default.
    pub low_water: Option<f64>,
    /// `workers = n`: shard worker threads. `None` = engine default.
    pub workers: Option<u64>,
}

/// One pipeline of a `WITH DISTILL (name = func(args…) [ON column], …)`
/// clause. The parser records the scheme name and numeric arguments
/// verbatim — `fading_topk(10, 0.05)`, `tbs(64, 0.05)`, `moments()`, … —
/// and the engine layer resolves them into summary specifications, the
/// same split used for fungus names.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillClause {
    /// Pipeline name (unique within the container; the handle `SUMMARIZE`
    /// and `.sketch` read by).
    pub name: String,
    /// Cooking-scheme name, resolved by the engine layer.
    pub func: String,
    /// Numeric scheme arguments.
    pub args: Vec<f64>,
    /// Optional `ON column` source; `None` observes departure freshness.
    pub column: Option<String>,
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Meta(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    Le,
    Ge,
    Ne,
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> FungusError {
        FungusError::ParseError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize)> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok((Tok::Eof, start));
        }
        let c = self.bytes[self.pos];
        match c {
            b'0'..=b'9' => {
                let mut end = self.pos;
                let mut is_float = false;
                while end < self.bytes.len()
                    && (self.bytes[end].is_ascii_digit() || self.bytes[end] == b'.')
                {
                    if self.bytes[end] == b'.' {
                        // Guard against `1..2` style; a second dot ends the number.
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    end += 1;
                }
                let text = &self.src[self.pos..end];
                self.pos = end;
                if is_float {
                    text.parse::<f64>()
                        .map(|f| (Tok::Float(f), start))
                        .map_err(|_| self.error(format!("bad float literal `{text}`")))
                } else {
                    text.parse::<i64>()
                        .map(|i| (Tok::Int(i), start))
                        .map_err(|_| self.error(format!("integer literal out of range `{text}`")))
                }
            }
            b'\'' => {
                // String literal with '' escaping.
                let mut out = String::new();
                let mut i = self.pos + 1;
                loop {
                    if i >= self.bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    if self.bytes[i] == b'\'' {
                        if i + 1 < self.bytes.len() && self.bytes[i + 1] == b'\'' {
                            out.push('\'');
                            i += 2;
                            continue;
                        }
                        break;
                    }
                    // Copy one UTF-8 character.
                    let ch_start = i;
                    let mut ch_end = i + 1;
                    while ch_end < self.bytes.len() && (self.bytes[ch_end] & 0xC0) == 0x80 {
                        ch_end += 1;
                    }
                    out.push_str(&self.src[ch_start..ch_end]);
                    i = ch_end;
                }
                self.pos = i + 1;
                Ok((Tok::Str(out), start))
            }
            b'$' => {
                let mut end = self.pos + 1;
                while end < self.bytes.len()
                    && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == self.pos + 1 {
                    return Err(self.error("expected pseudo-column name after `$`"));
                }
                let name = self.src[self.pos + 1..end].to_string();
                self.pos = end;
                Ok((Tok::Meta(name), start))
            }
            b'<' => {
                self.pos += 1;
                if self.pos < self.bytes.len() && self.bytes[self.pos] == b'=' {
                    self.pos += 1;
                    Ok((Tok::Le, start))
                } else if self.pos < self.bytes.len() && self.bytes[self.pos] == b'>' {
                    self.pos += 1;
                    Ok((Tok::Ne, start))
                } else {
                    Ok((Tok::Symbol('<'), start))
                }
            }
            b'>' => {
                self.pos += 1;
                if self.pos < self.bytes.len() && self.bytes[self.pos] == b'=' {
                    self.pos += 1;
                    Ok((Tok::Ge, start))
                } else {
                    Ok((Tok::Symbol('>'), start))
                }
            }
            b'!' => {
                self.pos += 1;
                if self.pos < self.bytes.len() && self.bytes[self.pos] == b'=' {
                    self.pos += 1;
                    Ok((Tok::Ne, start))
                } else {
                    Err(self.error("unexpected `!` (did you mean `!=`?)"))
                }
            }
            b'=' | b'(' | b')' | b',' | b'+' | b'-' | b'*' | b'/' | b'%' => {
                self.pos += 1;
                Ok((Tok::Symbol(c as char), start))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos;
                while end < self.bytes.len()
                    && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                {
                    end += 1;
                }
                let ident = self.src[self.pos..end].to_string();
                self.pos = end;
                Ok((Tok::Ident(ident), start))
            }
            other => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let (tok, off) = lexer.next_token()?;
            let eof = tok == Tok::Eof;
            tokens.push((tok, off));
            if eof {
                break;
            }
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn error(&self, msg: impl Into<String>) -> FungusError {
        FungusError::ParseError {
            message: msg.into(),
            offset: self.offset(),
        }
    }

    fn bump(&mut self) -> Tok {
        let tok = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    /// Consumes the next token if it is the keyword `kw` (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(id) = self.peek() {
            if id.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if *self.peek() == Tok::Symbol(c) {
            self.bump();
            return true;
        }
        false
    }

    fn expect_symbol(&mut self, c: char) -> Result<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(id) => {
                self.bump();
                Ok(id)
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(id) if id.eq_ignore_ascii_case(kw))
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek_kw("INSERT") {
            self.insert()
        } else if self.peek_kw("CREATE") {
            self.create_index()
        } else if self.peek_kw("DELETE") {
            self.delete()
        } else if self.peek_kw("EXPLAIN") {
            self.bump();
            let stmt = self.select()?;
            Ok(Statement::Explain(Box::new(stmt)))
        } else if self.peek_kw("SUMMARIZE") {
            self.summarize()
        } else {
            Err(self.error("expected SELECT, INSERT, DELETE, EXPLAIN, SUMMARIZE, or CREATE"))
        }
    }

    fn summarize(&mut self) -> Result<Statement> {
        self.expect_kw("SUMMARIZE")?;
        let summary = self.expect_ident("summary name")?;
        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let top = if self.eat_kw("TOP") {
            match self.bump() {
                Tok::Int(n) if n > 0 => Some(n as usize),
                _ => return Err(self.error("TOP expects a positive integer")),
            }
        } else {
            None
        };
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Statement::Summarize {
            table,
            summary,
            top,
        })
    }

    fn create_index(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.peek_kw("CONTAINER") || self.peek_kw("TABLE") {
            self.bump();
            return self.create_container();
        }
        let ordered = self.eat_kw("ORDERED");
        self.expect_kw("INDEX")?;
        self.expect_kw("ON")?;
        let table = self.expect_ident("table name")?;
        self.expect_symbol('(')?;
        let column = self.expect_ident("column name")?;
        self.expect_symbol(')')?;
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Statement::CreateIndex {
            table,
            column,
            ordered,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Statement::Delete { table, predicate })
    }

    fn create_container(&mut self) -> Result<Statement> {
        let name = self.expect_ident("container name")?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            let ty = self.expect_ident("column type")?;
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            }
            columns.push((col, ty, nullable));
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol(')')?;
        let mut fungus = None;
        let mut decay_every = None;
        let mut sharding = None;
        let mut distill = Vec::new();
        loop {
            if self.eat_kw("WITH") {
                if self.eat_kw("FUNGUS") {
                    if fungus.is_some() {
                        return Err(self.error("duplicate WITH FUNGUS clause"));
                    }
                    let fname = self.expect_ident("fungus name")?;
                    let mut args = Vec::new();
                    if self.eat_symbol('(') && !self.eat_symbol(')') {
                        loop {
                            match self.bump() {
                                Tok::Int(i) => args.push(i as f64),
                                Tok::Float(f) => args.push(f),
                                _ => return Err(self.error("fungus arguments must be numbers")),
                            }
                            if self.eat_symbol(')') {
                                break;
                            }
                            self.expect_symbol(',')?;
                        }
                    }
                    fungus = Some((fname, args));
                } else if self.eat_kw("SHARDING") {
                    if sharding.is_some() {
                        return Err(self.error("duplicate sharding clause"));
                    }
                    sharding = Some(self.sharding_options()?);
                } else if self.eat_kw("DISTILL") {
                    if !distill.is_empty() {
                        return Err(self.error("duplicate WITH DISTILL clause"));
                    }
                    distill = self.distill_options()?;
                } else {
                    return Err(self.error("expected FUNGUS, SHARDING, or DISTILL after WITH"));
                }
            } else if self.eat_kw("SHARDS") {
                if sharding.is_some() {
                    return Err(self.error("duplicate sharding clause"));
                }
                match self.bump() {
                    Tok::Int(n) if n > 0 => {
                        sharding = Some(ShardingClause {
                            rows_per_shard: n as u64,
                            adaptive: None,
                            low_water: None,
                            workers: None,
                        })
                    }
                    _ => return Err(self.error("SHARDS expects a positive integer")),
                }
            } else if self.eat_kw("DECAY") {
                if decay_every.is_some() {
                    return Err(self.error("duplicate DECAY EVERY clause"));
                }
                self.expect_kw("EVERY")?;
                match self.bump() {
                    Tok::Int(n) if n > 0 => decay_every = Some(n as u64),
                    _ => return Err(self.error("DECAY EVERY expects a positive integer")),
                }
            } else {
                break;
            }
        }
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Statement::CreateContainer(CreateContainerStatement {
            name,
            columns,
            fungus,
            decay_every,
            sharding,
            distill,
        }))
    }

    /// `(name = func(args…) [ON column], …)` — at least one pipeline;
    /// names must be unique (caught again with better context at the
    /// engine layer, but an early error keeps offsets useful).
    fn distill_options(&mut self) -> Result<Vec<DistillClause>> {
        self.expect_symbol('(')?;
        let mut clauses: Vec<DistillClause> = Vec::new();
        loop {
            let name = self.expect_ident("distill pipeline name")?;
            if clauses.iter().any(|c| c.name == name) {
                return Err(self.error(format!("duplicate distill pipeline `{name}`")));
            }
            self.expect_symbol('=')?;
            let func = self.expect_ident("summary scheme name")?;
            let mut args = Vec::new();
            if self.eat_symbol('(') && !self.eat_symbol(')') {
                loop {
                    match self.bump() {
                        Tok::Int(i) => args.push(i as f64),
                        Tok::Float(f) => args.push(f),
                        _ => return Err(self.error("summary arguments must be numbers")),
                    }
                    if self.eat_symbol(')') {
                        break;
                    }
                    self.expect_symbol(',')?;
                }
            }
            let column = if self.eat_kw("ON") {
                Some(self.expect_ident("distill source column")?)
            } else {
                None
            };
            clauses.push(DistillClause {
                name,
                func,
                args,
                column,
            });
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        Ok(clauses)
    }

    /// `(rows_per_shard = n, adaptive = on|off, low_water = f, workers = n)`
    /// in any order; `rows_per_shard` is mandatory, the rest default at the
    /// engine layer.
    fn sharding_options(&mut self) -> Result<ShardingClause> {
        self.expect_symbol('(')?;
        let mut rows_per_shard = None;
        let mut adaptive = None;
        let mut low_water = None;
        let mut workers = None;
        loop {
            let key = self.expect_ident("sharding option name")?.to_lowercase();
            self.expect_symbol('=')?;
            match key.as_str() {
                "rows_per_shard" => match self.bump() {
                    Tok::Int(n) if n > 0 => rows_per_shard = Some(n as u64),
                    _ => return Err(self.error("rows_per_shard expects a positive integer")),
                },
                "adaptive" => {
                    if self.eat_kw("ON") {
                        adaptive = Some(true);
                    } else if self.eat_kw("OFF") {
                        adaptive = Some(false);
                    } else {
                        return Err(self.error("adaptive expects on or off"));
                    }
                }
                "low_water" => match self.bump() {
                    Tok::Float(f) => low_water = Some(f),
                    Tok::Int(n) if n >= 0 => low_water = Some(n as f64),
                    _ => return Err(self.error("low_water expects a number")),
                },
                "workers" => match self.bump() {
                    Tok::Int(n) if n > 0 => workers = Some(n as u64),
                    _ => return Err(self.error("workers expects a positive integer")),
                },
                other => {
                    return Err(self.error(format!(
                        "unknown sharding option `{other}` \
                         (expected rows_per_shard, adaptive, low_water, or workers)"
                    )))
                }
            }
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        let rows_per_shard =
            rows_per_shard.ok_or_else(|| self.error("WITH SHARDING requires rows_per_shard"))?;
        Ok(ShardingClause {
            rows_per_shard,
            adaptive,
            low_water,
            workers,
        })
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = vec![self.projection()?];
        while self.eat_symbol(',') {
            projections.push(self.projection()?);
        }
        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expect_ident("group-by column")?);
            while self.eat_symbol(',') {
                group_by.push(self.expect_ident("group-by column")?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(SortKey { expr, descending });
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        let consume = self.eat_kw("CONSUME");
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(SelectStatement {
            distinct,
            projections,
            table,
            predicate,
            group_by,
            having,
            order_by,
            limit,
            consume,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.expect_ident("table name")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(',') {
                row.push(self.expr()?);
            }
            self.expect_symbol(')')?;
            rows.push(row);
            if !self.eat_symbol(',') {
                break;
            }
        }
        if *self.peek() != Tok::Eof {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Statement::Insert { table, rows })
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_symbol('*') {
            return Ok(Projection::Wildcard);
        }
        // Aggregate call?
        if let Tok::Ident(name) = self.peek().clone() {
            if let Some(func) = AggFunc::from_name(&name) {
                if self.tokens.get(self.pos + 1).map(|t| &t.0) == Some(&Tok::Symbol('(')) {
                    self.bump(); // name
                    self.bump(); // (
                    if func == AggFunc::Count && self.eat_kw("DISTINCT") {
                        let arg = self.expr()?;
                        self.expect_symbol(')')?;
                        let alias = self.alias()?;
                        return Ok(Projection::Expr {
                            expr: ProjExpr::CountDistinct(arg),
                            alias,
                        });
                    }
                    let arg = if self.eat_symbol('*') {
                        if func != AggFunc::Count && func != AggFunc::FCount {
                            return Err(self.error("only COUNT/FCOUNT may take `*`"));
                        }
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_symbol(')')?;
                    let alias = self.alias()?;
                    return Ok(Projection::Expr {
                        expr: ProjExpr::Aggregate(func, arg),
                        alias,
                    });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(Projection::Expr {
            expr: ProjExpr::Scalar(expr),
            alias,
        })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            Ok(Some(self.expect_ident("alias")?))
        } else {
            Ok(None)
        }
    }

    /// Parses the body of a searched CASE (the `CASE` keyword is consumed).
    fn case_expr(&mut self) -> Result<Expr> {
        let mut arms = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let result = self.expr()?;
            arms.push((cond, result));
        }
        if arms.is_empty() {
            return Err(self.error("CASE requires at least one WHEN arm"));
        }
        let otherwise = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case { arms, otherwise })
    }

    // expr := and_chain (OR and_chain)*
    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_chain()?;
        while self.eat_kw("OR") {
            let right = self.and_chain()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_chain(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_symbol('(')?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(',') {
                list.push(self.expr()?);
            }
            self.expect_symbol(')')?;
            let e = Expr::InList {
                expr: Box::new(left),
                list,
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let e = Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Tok::Str(s) => s,
                _ => return Err(self.error("LIKE expects a string literal pattern")),
            };
            let e = Expr::Like {
                expr: Box::new(left),
                pattern,
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN, or LIKE after NOT"));
        }
        let op = match self.peek() {
            Tok::Symbol('=') => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Symbol('<') => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Symbol('>') => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(left.cmp(op, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Symbol('+') => BinOp::Add,
                Tok::Symbol('-') => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Symbol('*') => BinOp::Mul,
                Tok::Symbol('/') => BinOp::Div,
                Tok::Symbol('%') => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol('-') {
            // Constant-fold negation of numeric literals so `-7` parses to
            // the literal −7 (making pretty-printed trees reparse exactly).
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => match i.checked_neg() {
                    Some(n) => Expr::lit(n),
                    None => Expr::Neg(Box::new(Expr::lit(i))),
                },
                Expr::Literal(Value::Float(f)) => Expr::lit(-f),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::lit(i))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Expr::lit(f))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::Meta(name) => {
                self.bump();
                MetaField::from_name(&name)
                    .map(Expr::Meta)
                    .ok_or_else(|| self.error(format!("unknown pseudo-column `${name}`")))
            }
            Tok::Symbol('(') => {
                self.bump();
                let e = self.expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Tok::Ident(id) => {
                self.bump();
                // A scalar function call? (aggregates are handled at the
                // projection level, not inside expressions).
                if *self.peek() == Tok::Symbol('(') {
                    if let Some(func) = ScalarFunc::from_name(&id) {
                        self.bump(); // (
                        let mut args = vec![self.expr()?];
                        while self.eat_symbol(',') {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(')')?;
                        return Ok(Expr::Call { func, args });
                    }
                    return Err(self.error(format!("unknown function `{id}`")));
                }
                match id.to_ascii_uppercase().as_str() {
                    "TRUE" => Ok(Expr::lit(true)),
                    "FALSE" => Ok(Expr::lit(false)),
                    "NULL" => Ok(Expr::Literal(Value::Null)),
                    "CASE" => self.case_expr(),
                    _ => Ok(Expr::col(id)),
                }
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses one statement.
pub fn parse_statement(src: &str) -> Result<Statement> {
    Parser::new(src)?.statement()
}

/// Parses a standalone expression (used in tests and interactive tools).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(src: &str) -> SelectStatement {
        match parse_statement(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = select("SELECT * FROM r");
        assert_eq!(s.table, "r");
        assert_eq!(s.projections, vec![Projection::Wildcard]);
        assert!(s.predicate.is_none());
        assert!(!s.consume);
        assert!(s.order_by.is_empty());
        assert!(s.group_by.is_empty());
        assert_eq!(s.limit, None);
    }

    #[test]
    fn full_select_with_consume() {
        let s = select(
            "select a, b * 2 as twice from sensors \
             where a > 3 and $freshness < 0.5 \
             order by a desc limit 10 consume",
        );
        assert_eq!(s.table, "sensors");
        assert_eq!(s.projections.len(), 2);
        assert!(s.consume);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].descending);
        let p = s.predicate.unwrap().to_string();
        assert_eq!(p, "((a > 3) AND ($freshness < 0.5))");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let s = select("SeLeCt * FrOm R wHeRe A = 1 CoNsUmE");
        assert!(s.consume);
        assert_eq!(s.table, "R");
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1 + 2) * 3)");
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        assert_eq!(e.to_string(), "((a = 1) OR ((b = 2) AND (c = 3)))");
        let e = parse_expr("NOT a = 1").unwrap();
        assert_eq!(e.to_string(), "(NOT (a = 1))");
    }

    #[test]
    fn comparison_operators() {
        for (src, expect) in [
            ("a = 1", "(a = 1)"),
            ("a <> 1", "(a <> 1)"),
            ("a != 1", "(a <> 1)"),
            ("a < 1", "(a < 1)"),
            ("a <= 1", "(a <= 1)"),
            ("a > 1", "(a > 1)"),
            ("a >= 1", "(a >= 1)"),
        ] {
            assert_eq!(parse_expr(src).unwrap().to_string(), expect, "{src}");
        }
    }

    #[test]
    fn literals() {
        assert_eq!(parse_expr("3.5").unwrap(), Expr::lit(3.5));
        assert_eq!(
            parse_expr("'it''s'").unwrap(),
            Expr::Literal(Value::from("it's"))
        );
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("false").unwrap(), Expr::lit(false));
        assert_eq!(parse_expr("NULL").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse_expr("-7").unwrap(), Expr::lit(-7i64));
        assert_eq!(parse_expr("-7").unwrap().to_string(), "-7");
        assert_eq!(parse_expr("-3.5").unwrap(), Expr::lit(-3.5));
        assert_eq!(parse_expr("-a").unwrap().to_string(), "(-a)");
    }

    #[test]
    fn postfix_predicates() {
        assert_eq!(parse_expr("a IS NULL").unwrap().to_string(), "(a IS NULL)");
        assert_eq!(
            parse_expr("a IS NOT NULL").unwrap().to_string(),
            "(a IS NOT NULL)"
        );
        assert_eq!(
            parse_expr("a IN (1, 2, 3)").unwrap().to_string(),
            "(a IN (1, 2, 3))"
        );
        assert_eq!(
            parse_expr("a NOT IN (1)").unwrap().to_string(),
            "(NOT (a IN (1)))"
        );
        assert_eq!(
            parse_expr("a BETWEEN 1 AND 5").unwrap().to_string(),
            "(a BETWEEN 1 AND 5)"
        );
        assert_eq!(
            parse_expr("s LIKE 'h%'").unwrap().to_string(),
            "(s LIKE 'h%')"
        );
        assert_eq!(
            parse_expr("s NOT LIKE 'h%'").unwrap().to_string(),
            "(NOT (s LIKE 'h%'))"
        );
    }

    #[test]
    fn pseudo_columns() {
        let e = parse_expr("$age > 100").unwrap();
        assert_eq!(e.to_string(), "($age > 100)");
        assert!(parse_expr("$bogus > 1").is_err());
        assert!(parse_expr("$ > 1").is_err());
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = select("SELECT sensor, COUNT(*), AVG(v) AS mean FROM r GROUP BY sensor");
        assert_eq!(s.group_by, vec!["sensor".to_string()]);
        assert_eq!(s.projections.len(), 3);
        match &s.projections[1] {
            Projection::Expr {
                expr: ProjExpr::Aggregate(AggFunc::Count, None),
                ..
            } => {}
            other => panic!("expected COUNT(*), got {other:?}"),
        }
        match &s.projections[2] {
            Projection::Expr {
                expr: ProjExpr::Aggregate(AggFunc::Avg, Some(_)),
                alias: Some(a),
            } => assert_eq!(a, "mean"),
            other => panic!("expected AVG(v) AS mean, got {other:?}"),
        }
    }

    #[test]
    fn sum_star_is_rejected() {
        let err = parse_statement("SELECT SUM(*) FROM r").unwrap_err();
        assert!(err.to_string().contains("COUNT"));
    }

    #[test]
    fn insert_statement() {
        let s = parse_statement("INSERT INTO r VALUES (1, 'a'), (2, NULL)").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "r");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::Null));
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_statement("SELECT FROM r").unwrap_err();
        match err {
            FungusError::ParseError { offset, .. } => assert!(offset >= 7),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(parse_statement("").is_err());
        assert!(parse_statement("DROP TABLE r").is_err());
        // DELETE is now a real statement; a bare one parses fine.
        assert!(matches!(
            parse_statement("DELETE FROM r").unwrap(),
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
        assert!(parse_statement("DELETE FROM r WHERE a = 1 extra").is_err());
        assert!(parse_statement("SELECT * FROM r extra_garbage").is_err());
        assert!(parse_statement("SELECT * FROM r WHERE 'unterminated").is_err());
        assert!(parse_statement("SELECT * FROM r LIMIT x").is_err());
        assert!(parse_statement("SELECT a FROM r WHERE a NOT 5").is_err());
    }

    #[test]
    fn numeric_edge_cases() {
        assert!(
            parse_expr("99999999999999999999999").is_err(),
            "i64 overflow"
        );
        assert_eq!(parse_expr("0.5").unwrap(), Expr::lit(0.5));
    }

    #[test]
    fn utf8_string_literals() {
        assert_eq!(
            parse_expr("'héllo → wörld'").unwrap(),
            Expr::Literal(Value::from("héllo → wörld"))
        );
    }

    #[test]
    fn case_expressions_parse_and_roundtrip() {
        let e = parse_expr("CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END")
            .unwrap();
        let printed = e.to_string();
        assert_eq!(
            printed,
            "CASE WHEN (a > 1) THEN 'big' WHEN (a = 1) THEN 'one' ELSE 'small' END"
        );
        assert_eq!(parse_expr(&printed).unwrap(), e);
        // No ELSE.
        let e = parse_expr("CASE WHEN a = 1 THEN 2 END").unwrap();
        assert!(matches!(e, Expr::Case { ref otherwise, .. } if otherwise.is_none()));
        // Errors.
        assert!(parse_expr("CASE END").is_err(), "needs an arm");
        assert!(parse_expr("CASE WHEN a THEN").is_err());
        assert!(parse_expr("CASE WHEN a = 1 THEN 2").is_err(), "missing END");
    }

    #[test]
    fn distill_clause_parses() {
        let stmt = parse_statement(
            "CREATE CONTAINER clicks (item INT, who TEXT) WITH FUNGUS ttl(40) \
             WITH DISTILL (hot = fading_topk(10, 0.05) ON item, \
                           fresh = tbs(64, 0.05) ON item, \
                           exit_health = moments) \
             DECAY EVERY 2",
        )
        .unwrap();
        let c = match stmt {
            Statement::CreateContainer(c) => c,
            other => panic!("expected CREATE CONTAINER, got {other:?}"),
        };
        assert_eq!(c.distill.len(), 3);
        assert_eq!(c.distill[0].name, "hot");
        assert_eq!(c.distill[0].func, "fading_topk");
        assert_eq!(c.distill[0].args, vec![10.0, 0.05]);
        assert_eq!(c.distill[0].column.as_deref(), Some("item"));
        assert_eq!(c.distill[2].name, "exit_health");
        assert_eq!(c.distill[2].args, Vec::<f64>::new());
        assert_eq!(c.distill[2].column, None);
        assert_eq!(c.decay_every, Some(2));
        // Malformed clauses.
        for sql in [
            "CREATE CONTAINER t (a INT) WITH DISTILL ()",
            "CREATE CONTAINER t (a INT) WITH DISTILL (x = topk(4) ON)",
            "CREATE CONTAINER t (a INT) WITH DISTILL (x = topk('four'))",
            "CREATE CONTAINER t (a INT) WITH DISTILL (x = topk(4), x = moments)",
            "CREATE CONTAINER t (a INT) WITH DISTILL (x = topk(4)) WITH DISTILL (y = moments)",
        ] {
            assert!(parse_statement(sql).is_err(), "{sql}");
        }
    }

    #[test]
    fn summarize_statement_parses() {
        match parse_statement("SUMMARIZE hot FROM clicks TOP 5").unwrap() {
            Statement::Summarize {
                table,
                summary,
                top,
            } => {
                assert_eq!(table, "clicks");
                assert_eq!(summary, "hot");
                assert_eq!(top, Some(5));
            }
            other => panic!("expected SUMMARIZE, got {other:?}"),
        }
        match parse_statement("summarize exit_health from clicks").unwrap() {
            Statement::Summarize { top, .. } => assert_eq!(top, None),
            other => panic!("expected SUMMARIZE, got {other:?}"),
        }
        assert!(parse_statement("SUMMARIZE hot").is_err());
        assert!(parse_statement("SUMMARIZE hot FROM clicks TOP 0").is_err());
        assert!(parse_statement("SUMMARIZE hot FROM clicks garbage").is_err());
    }

    #[test]
    fn multi_sort_keys() {
        let s = select("SELECT * FROM r ORDER BY a DESC, b ASC, c");
        assert_eq!(s.order_by.len(), 3);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert!(!s.order_by[2].descending);
    }
}
