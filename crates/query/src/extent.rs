//! The storage surface queries execute against.
//!
//! The executor used to be welded to [`TableStore`]; sharded extents
//! (an ordered set of time-range shards, each its own store) need the same
//! query semantics without the executor knowing the layout. [`QueryExtent`]
//! is the seam: everything the executor touches — the scan, point access
//! for shaping, consume-deletes, touches, and DDL-ish maintenance — goes
//! through this trait, so `execute` produces bit-identical answers on any
//! layout that implements it faithfully.
//!
//! The contract that matters for determinism: [`scan`](QueryExtent::scan)
//! must return matched ids in **global id (insertion) order**, exactly the
//! ids a monolithic scan of the same logical extent would match. Diagnostic
//! counters (`scanned`, pruned counts) may differ between layouts — they
//! describe the work done, not the answer.

use fungus_storage::{TableStore, TombstoneReason};
use fungus_types::{Result, Schema, Tick, Tuple, TupleId, Value};

use crate::plan::LogicalPlan;
use crate::prune::ColumnBound;

/// What a scan did: the matched ids plus work/pruning diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Ids of tuples matching the plan's predicate, in global id order.
    pub matched: Vec<TupleId>,
    /// Live tuples the scan examined.
    pub scanned: usize,
    /// Segments skipped by zone-map pruning.
    pub pruned_segments: usize,
    /// Whole shards skipped by shard-summary pruning (0 on monolithic
    /// extents).
    pub pruned_shards: usize,
    /// Whether a secondary index answered the scan.
    pub used_index: bool,
}

/// Immutable storage surface for snapshot (MVCC) reads.
///
/// A sealed copy-on-write snapshot of an extent implements this trait so
/// `SELECT` without `CONSUME` can run against it lock-free while writers
/// mutate the live version. The contract is the read half of
/// [`QueryExtent`]: [`scan`](ReadExtent::scan) returns matched ids in
/// global id order, and [`peek`](ReadExtent::peek) resolves a matched id
/// without mutating anything — so
/// [`execute_readonly`](crate::exec::execute_readonly) produces exactly
/// the rows [`execute`](crate::exec::execute) would have produced against
/// the same logical extent.
pub trait ReadExtent {
    /// The extent's schema.
    fn schema(&self) -> &Schema;

    /// Phase-1 scan: every live tuple matching the plan's predicate, in
    /// global id order.
    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome>;

    /// The live tuple with `id`, through a shared reference (snapshots are
    /// immutable, so no lock fast path is needed).
    fn peek(&self, id: TupleId) -> Option<&Tuple>;
}

impl ReadExtent for TableStore {
    fn schema(&self) -> &Schema {
        TableStore::schema(self)
    }

    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome> {
        scan_store(self, plan, now)
    }

    fn peek(&self, id: TupleId) -> Option<&Tuple> {
        self.get(id)
    }
}

/// Mutable storage surface the query executor runs against.
pub trait QueryExtent {
    /// The extent's schema.
    fn schema(&self) -> &Schema;

    /// Phase-1 scan: find every live tuple matching the plan's predicate,
    /// in global id order, using whatever indexes/pruning the layout has.
    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome>;

    /// The live tuple with `id`. Takes `&mut self` so lock-sharded layouts
    /// can use their locks' `get_mut` fast path — no metadata is mutated.
    fn tuple(&mut self, id: TupleId) -> Option<&Tuple>;

    /// Tombstones `id`, returning the removed tuple.
    fn delete(&mut self, id: TupleId, reason: TombstoneReason) -> Option<Tuple>;

    /// Records a read access on `id` at `now`.
    fn touch(&mut self, id: TupleId, now: Tick);

    /// Validates and appends a row at `now`.
    fn insert(&mut self, values: Vec<Value>, now: Tick) -> Result<TupleId>;

    /// Ids of every live tuple, in id order (the `DELETE` scan).
    fn live_ids(&self) -> Vec<TupleId>;

    /// Builds a secondary hash index on `column`.
    fn create_index(&mut self, column: &str) -> Result<()>;

    /// Builds an ordered (range-probing) index on `column`.
    fn create_ord_index(&mut self, column: &str) -> Result<()>;
}

impl QueryExtent for TableStore {
    fn schema(&self) -> &Schema {
        TableStore::schema(self)
    }

    fn scan(&self, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome> {
        scan_store(self, plan, now)
    }

    fn tuple(&mut self, id: TupleId) -> Option<&Tuple> {
        self.get(id)
    }

    fn delete(&mut self, id: TupleId, reason: TombstoneReason) -> Option<Tuple> {
        TableStore::delete(self, id, reason)
    }

    fn touch(&mut self, id: TupleId, now: Tick) {
        TableStore::touch(self, id, now)
    }

    fn insert(&mut self, values: Vec<Value>, now: Tick) -> Result<TupleId> {
        TableStore::insert(self, values, now)
    }

    fn live_ids(&self) -> Vec<TupleId> {
        self.iter_live().map(|t| t.meta.id).collect()
    }

    fn create_index(&mut self, column: &str) -> Result<()> {
        TableStore::create_index(self, column)
    }

    fn create_ord_index(&mut self, column: &str) -> Result<()> {
        TableStore::create_ord_index(self, column)
    }
}

/// Scans one [`TableStore`]: a secondary index answers equality/range
/// probes without touching the segments; everything else walks them with
/// zone-map pruning. Shared by the monolithic extent and by each shard of
/// a sharded one.
pub fn scan_store(store: &TableStore, plan: &LogicalPlan, now: Tick) -> Result<ScanOutcome> {
    let schema = store.schema();
    let mut out = ScanOutcome::default();
    if let Some(candidates) = index_candidates(plan, store) {
        out.used_index = true;
        for id in candidates {
            let Some(tuple) = store.get(id) else { continue };
            out.scanned += 1;
            let keep = match &plan.predicate {
                Some(p) => p.eval_predicate(tuple, schema, now)?,
                None => true,
            };
            if keep {
                out.matched.push(id);
            }
        }
    } else {
        for seg in store.segments() {
            if !plan.pruning.is_trivial() && !plan.pruning.segment_may_match(seg) {
                out.pruned_segments += 1;
                continue;
            }
            for tuple in seg.iter_live() {
                out.scanned += 1;
                let keep = match &plan.predicate {
                    Some(p) => p.eval_predicate(tuple, schema, now)?,
                    None => true,
                };
                if keep {
                    out.matched.push(tuple.meta.id);
                }
            }
        }
    }
    Ok(out)
}

/// Finds the first conjunctive equality bound whose column carries a hash
/// index and returns the candidate ids (insertion-ordered). The remaining
/// predicate still re-checks each candidate, so an index can only narrow
/// the scan, never change the answer.
fn index_candidates(plan: &LogicalPlan, table: &TableStore) -> Option<Vec<TupleId>> {
    for bound in plan.pruning.bounds() {
        match bound {
            ColumnBound::Eq { col, value } => {
                if let Some(ids) = table.index_probe(*col, std::slice::from_ref(value)) {
                    return Some(ids);
                }
            }
            ColumnBound::OneOf { col, values } => {
                if let Some(ids) = table.index_probe(*col, values) {
                    return Some(ids);
                }
            }
            _ => {}
        }
    }
    // No equality probe available: try an ordered-index range. Combine the
    // tightest-first Above/Below bounds per column.
    type RangeBound<'a> = (Option<(&'a Value, bool)>, Option<(&'a Value, bool)>);
    // BTreeMap, not HashMap: the loop below returns the *first* column
    // whose ordered index accepts the probe, so iteration order picks the
    // winning index — and with it the id order of the result. Hash order
    // is randomized per process; column order is deterministic.
    let mut ranges: std::collections::BTreeMap<usize, RangeBound<'_>> =
        std::collections::BTreeMap::new();
    for bound in plan.pruning.bounds() {
        match bound {
            ColumnBound::Above {
                col,
                value,
                inclusive,
            } => {
                let entry = ranges.entry(*col).or_default();
                if entry.0.is_none() {
                    entry.0 = Some((value, *inclusive));
                }
            }
            ColumnBound::Below {
                col,
                value,
                inclusive,
            } => {
                let entry = ranges.entry(*col).or_default();
                if entry.1.is_none() {
                    entry.1 = Some((value, *inclusive));
                }
            }
            _ => {}
        }
    }
    for (col, (lo, hi)) in ranges {
        if let Some(ids) = table.ord_range_probe(col, lo, hi) {
            return Some(ids);
        }
    }
    None
}
