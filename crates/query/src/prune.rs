//! Segment and shard pruning from predicate analysis.
//!
//! The planner extracts conjunctive column/literal constraints from a WHERE
//! clause; the executor checks them against each segment's zone map and
//! skips segments that cannot contain a match. Sharded extents additionally
//! extract *metadata* bounds (`$freshness`, `$age`, `$id`, `$inserted_at`)
//! and check them against per-shard summary ranges, skipping whole shards
//! before any tuple is touched. Pruning must be *conservative*: a segment
//! or shard is only skipped when its summary proves no tuple in it can
//! satisfy the predicate.

use fungus_types::{Tick, Value};

use fungus_storage::Segment;
use fungus_types::Schema;

use crate::expr::{CmpOp, Expr, MetaField};

/// One provable constraint on a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnBound {
    /// `col = v`.
    Eq {
        /// Column index in the schema.
        col: usize,
        /// The literal.
        value: Value,
    },
    /// `col < v` / `col <= v`.
    Below {
        /// Column index.
        col: usize,
        /// The bound.
        value: Value,
        /// `<=` vs `<`.
        inclusive: bool,
    },
    /// `col > v` / `col >= v`.
    Above {
        /// Column index.
        col: usize,
        /// The bound.
        value: Value,
        /// `>=` vs `>`.
        inclusive: bool,
    },
    /// `col IN (v1, …, vk)` (all literals).
    OneOf {
        /// Column index.
        col: usize,
        /// The candidate literals.
        values: Vec<Value>,
    },
}

impl ColumnBound {
    /// Can any value inside `segment` satisfy this bound?
    fn segment_may_match(&self, segment: &Segment) -> bool {
        let entry = |col: usize| segment.zone().entry(col);
        match self {
            ColumnBound::Eq { col, value } => entry(*col).is_none_or(|e| e.may_contain(value)),
            ColumnBound::Below {
                col,
                value,
                inclusive,
            } => entry(*col).is_none_or(|e| e.may_precede(value, *inclusive)),
            ColumnBound::Above {
                col,
                value,
                inclusive,
            } => entry(*col).is_none_or(|e| e.may_exceed(value, *inclusive)),
            ColumnBound::OneOf { col, values } => {
                entry(*col).is_none_or(|e| values.iter().any(|v| e.may_contain(v)))
            }
        }
    }
}

/// One provable constraint on tuple *metadata*: `$field op literal`.
///
/// Unlike [`ColumnBound`] these are checked against whole-shard summary
/// ranges, not segment zone maps — a shard whose freshness or tick range
/// provably excludes the bound is skipped without touching a tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaBound {
    /// Which pseudo-column the bound constrains. `$reads` is never
    /// collected (shards keep no read-count summary).
    pub field: MetaField,
    /// The comparison (never `Ne` — a range rarely proves a ≠).
    pub op: CmpOp,
    /// The numeric literal. Non-numeric comparisons are not collected.
    pub value: f64,
}

/// Conservative metadata ranges for one shard, maintained by the sharded
/// extent: id span, insertion-tick span, and freshness envelope (all
/// inclusive). The envelope may be loose — `freshness_lo` at most the true
/// minimum, `freshness_hi` at least the true maximum — loose only ever
/// means less pruning, never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaRanges {
    /// Smallest live-range tuple id in the shard.
    pub min_id: u64,
    /// Largest live-range tuple id in the shard.
    pub max_id: u64,
    /// Earliest insertion tick.
    pub min_tick: u64,
    /// Latest insertion tick.
    pub max_tick: u64,
    /// Lower bound on live-tuple freshness.
    pub freshness_lo: f64,
    /// Upper bound on live-tuple freshness.
    pub freshness_hi: f64,
}

impl MetaBound {
    /// Can any tuple inside `ranges` (at time `now`) satisfy this bound?
    pub fn shard_may_match(&self, ranges: &MetaRanges, now: Tick) -> bool {
        let (lo, hi) = match self.field {
            MetaField::Freshness => (ranges.freshness_lo, ranges.freshness_hi),
            MetaField::Id => (ranges.min_id as f64, ranges.max_id as f64),
            MetaField::InsertedAt => (ranges.min_tick as f64, ranges.max_tick as f64),
            MetaField::Age => (
                now.get().saturating_sub(ranges.max_tick) as f64,
                now.get().saturating_sub(ranges.min_tick) as f64,
            ),
            // No shard summary covers read counts.
            MetaField::Reads => return true,
        };
        let x = self.value;
        match self.op {
            CmpOp::Eq => lo <= x && x <= hi,
            CmpOp::Lt => lo < x,
            CmpOp::Le => lo <= x,
            CmpOp::Gt => hi > x,
            CmpOp::Ge => hi >= x,
            CmpOp::Ne => true,
        }
    }
}

/// The conjunction of provable bounds extracted from a predicate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruningPredicate {
    bounds: Vec<ColumnBound>,
    meta_bounds: Vec<MetaBound>,
}

impl PruningPredicate {
    /// Extracts bounds from `predicate`. Only top-level conjunctions
    /// contribute; anything else (OR, NOT, non-literal operands) is
    /// ignored, which keeps pruning sound.
    pub fn analyze(predicate: Option<&Expr>, schema: &Schema) -> PruningPredicate {
        let mut out = PruningPredicate::default();
        if let Some(p) = predicate {
            collect(p, schema, &mut out);
        }
        out
    }

    /// The extracted column bounds.
    pub fn bounds(&self) -> &[ColumnBound] {
        &self.bounds
    }

    /// The extracted metadata bounds (shard-level pruning).
    pub fn meta_bounds(&self) -> &[MetaBound] {
        &self.meta_bounds
    }

    /// True when no column bound could be extracted (every segment must be
    /// read).
    pub fn is_trivial(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Could `segment` contain a matching tuple?
    pub fn segment_may_match(&self, segment: &Segment) -> bool {
        self.bounds.iter().all(|b| b.segment_may_match(segment))
    }

    /// Could a shard summarised by `ranges` contain a matching tuple at
    /// time `now`? Checks metadata bounds only — column bounds are still
    /// applied per segment inside surviving shards.
    pub fn shard_may_match(&self, ranges: &MetaRanges, now: Tick) -> bool {
        self.meta_bounds
            .iter()
            .all(|b| b.shard_may_match(ranges, now))
    }
}

fn collect(expr: &Expr, schema: &Schema, out: &mut PruningPredicate) {
    match expr {
        Expr::And(a, b) => {
            collect(a, schema, out);
            collect(b, schema, out);
        }
        Expr::Compare { left, op, right } => {
            // col op literal, or literal op col (flipped); same for the
            // metadata pseudo-columns.
            if let (Expr::Column(name), Expr::Literal(v)) = (&**left, &**right) {
                push_bound(schema, name, *op, v, &mut out.bounds);
            } else if let (Expr::Literal(v), Expr::Column(name)) = (&**left, &**right) {
                push_bound(schema, name, flip(*op), v, &mut out.bounds);
            } else if let (Expr::Meta(field), Expr::Literal(v)) = (&**left, &**right) {
                push_meta_bound(*field, *op, v, &mut out.meta_bounds);
            } else if let (Expr::Literal(v), Expr::Meta(field)) = (&**left, &**right) {
                push_meta_bound(*field, flip(*op), v, &mut out.meta_bounds);
            }
        }
        Expr::Between { expr, low, high } => {
            if let (Expr::Column(name), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            {
                push_bound(schema, name, CmpOp::Ge, lo, &mut out.bounds);
                push_bound(schema, name, CmpOp::Le, hi, &mut out.bounds);
            } else if let (Expr::Meta(field), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            {
                push_meta_bound(*field, CmpOp::Ge, lo, &mut out.meta_bounds);
                push_meta_bound(*field, CmpOp::Le, hi, &mut out.meta_bounds);
            }
        }
        Expr::InList { expr, list } => {
            if let Expr::Column(name) = &**expr {
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        Expr::Literal(v) if !v.is_null() => values.push(v.clone()),
                        // A NULL in the list can never *match*, so it is
                        // safe to drop it from the candidate set.
                        Expr::Literal(_) => {}
                        // Non-literal member: cannot prove anything.
                        _ => return,
                    }
                }
                if let Some(col) = schema.index_of(name) {
                    out.bounds.push(ColumnBound::OneOf { col, values });
                }
            }
        }
        _ => {}
    }
}

fn push_meta_bound(field: MetaField, op: CmpOp, value: &Value, out: &mut Vec<MetaBound>) {
    if matches!(op, CmpOp::Ne) || matches!(field, MetaField::Reads) {
        return;
    }
    // Non-numeric literals cannot bound a numeric range; evaluator decides.
    let Some(value) = value.as_f64() else { return };
    out.push(MetaBound { field, op, value });
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn push_bound(schema: &Schema, name: &str, op: CmpOp, value: &Value, out: &mut Vec<ColumnBound>) {
    if value.is_null() {
        // `col op NULL` never matches; leave pruning to the evaluator.
        return;
    }
    let Some(col) = schema.index_of(name) else {
        return;
    };
    let bound = match op {
        CmpOp::Eq => ColumnBound::Eq {
            col,
            value: value.clone(),
        },
        CmpOp::Lt => ColumnBound::Below {
            col,
            value: value.clone(),
            inclusive: false,
        },
        CmpOp::Le => ColumnBound::Below {
            col,
            value: value.clone(),
            inclusive: true,
        },
        CmpOp::Gt => ColumnBound::Above {
            col,
            value: value.clone(),
            inclusive: false,
        },
        CmpOp::Ge => ColumnBound::Above {
            col,
            value: value.clone(),
            inclusive: true,
        },
        CmpOp::Ne => return, // a zone rarely proves a ≠, not worth it
    };
    out.push(bound);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use fungus_storage::{StorageConfig, TableStore};
    use fungus_types::{DataType, Tick};

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]).unwrap()
    }

    /// Segments of 4: values a = 0,10,20,30 | 40,50,60,70 | 80,90.
    fn table() -> TableStore {
        let mut t = TableStore::new(
            schema(),
            StorageConfig {
                segment_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..10i64 {
            t.insert(
                vec![Value::Int(i * 10), Value::from(format!("s{i}"))],
                Tick(0),
            )
            .unwrap();
        }
        t
    }

    fn surviving_segments(pred: &str) -> usize {
        let t = table();
        let e = parse_expr(pred).unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        t.segments()
            .iter()
            .filter(|s| p.segment_may_match(s))
            .count()
    }

    #[test]
    fn equality_prunes_to_one_segment() {
        assert_eq!(surviving_segments("a = 50"), 1);
        assert_eq!(surviving_segments("50 = a"), 1);
        // 35 falls between segment ranges [0,30], [40,70], [80,90]: all prune.
        assert_eq!(surviving_segments("a = 35"), 0);
    }

    #[test]
    fn range_bounds_prune() {
        assert_eq!(surviving_segments("a > 70"), 1);
        assert_eq!(surviving_segments("a >= 70"), 2);
        assert_eq!(surviving_segments("a < 40"), 1);
        assert_eq!(surviving_segments("a <= 40"), 2);
        assert_eq!(surviving_segments("a > 10 AND a < 50"), 2);
        assert_eq!(surviving_segments("a BETWEEN 45 AND 55"), 1);
    }

    #[test]
    fn flipped_literal_side() {
        assert_eq!(surviving_segments("70 < a"), 1);
        assert_eq!(surviving_segments("40 > a"), 1);
    }

    #[test]
    fn in_list_prunes() {
        assert_eq!(surviving_segments("a IN (0, 90)"), 2);
        // Zone maps are ranges: 5 falls inside segment 0's [0,30] envelope.
        assert_eq!(surviving_segments("a IN (5, NULL)"), 1);
        // 35 falls between every segment's range: all prune.
        assert_eq!(surviving_segments("a IN (35, NULL)"), 0);
    }

    #[test]
    fn unprunable_shapes_keep_everything() {
        assert_eq!(
            surviving_segments("a = 50 OR a = 0"),
            3,
            "OR is not analysed"
        );
        assert_eq!(surviving_segments("a + 1 = 50"), 3);
        assert_eq!(surviving_segments("a <> 50"), 3);
        assert_eq!(surviving_segments("$freshness < 0.5"), 3);
        assert_eq!(
            surviving_segments("a IN (0, b)"),
            3,
            "non-literal list member"
        );
    }

    #[test]
    fn null_comparisons_extract_nothing() {
        let e = parse_expr("a = NULL").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert!(p.is_trivial());
    }

    #[test]
    fn trivial_predicate() {
        let p = PruningPredicate::analyze(None, &schema());
        assert!(p.is_trivial());
        let t = table();
        assert!(t.segments().iter().all(|s| p.segment_may_match(s)));
    }

    #[test]
    fn conjunction_combines_bounds() {
        let e = parse_expr("a >= 40 AND a <= 70 AND b = 's5'").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert_eq!(p.bounds().len(), 3);
        let t = table();
        let survivors: Vec<usize> = t
            .segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| p.segment_may_match(s))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(survivors, vec![1]);
    }

    #[test]
    fn meta_bounds_prune_shards_conservatively() {
        let e = parse_expr("$freshness < 0.5 AND $age > 10").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert_eq!(p.meta_bounds().len(), 2);
        assert!(p.is_trivial(), "meta bounds never prune segments");
        // A fresh, young shard provably excludes both conjuncts.
        let fresh_young = MetaRanges {
            min_id: 0,
            max_id: 99,
            min_tick: 95,
            max_tick: 100,
            freshness_lo: 0.9,
            freshness_hi: 1.0,
        };
        assert!(!p.shard_may_match(&fresh_young, Tick(100)));
        // A stale, old shard may contain matches.
        let stale_old = MetaRanges {
            min_tick: 0,
            max_tick: 50,
            freshness_lo: 0.1,
            freshness_hi: 0.8,
            ..fresh_young
        };
        assert!(p.shard_may_match(&stale_old, Tick(100)));
    }

    #[test]
    fn meta_bound_shapes() {
        // Flipped literal side, BETWEEN, and $id ranges all collect.
        let e = parse_expr("0.5 > $freshness").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert_eq!(
            p.meta_bounds(),
            &[MetaBound {
                field: MetaField::Freshness,
                op: CmpOp::Lt,
                value: 0.5
            }]
        );
        let e = parse_expr("$inserted_at BETWEEN 10 AND 20").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert_eq!(p.meta_bounds().len(), 2);
        let ranges = MetaRanges {
            min_id: 0,
            max_id: 9,
            min_tick: 30,
            max_tick: 40,
            freshness_lo: 0.0,
            freshness_hi: 1.0,
        };
        assert!(!p.shard_may_match(&ranges, Tick(50)));
        let e = parse_expr("$id > 20").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert!(
            !p.shard_may_match(&ranges, Tick(50)),
            "ids 0..=9 exclude > 20"
        );
        let e = parse_expr("$id <= 5").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert!(p.shard_may_match(&ranges, Tick(50)));
    }

    #[test]
    fn unprunable_meta_shapes_keep_every_shard() {
        let ranges = MetaRanges {
            min_id: 50,
            max_id: 99,
            min_tick: 0,
            max_tick: 10,
            freshness_lo: 0.9,
            freshness_hi: 1.0,
        };
        for pred in ["$reads > 3", "$freshness <> 0.5", "$freshness = 'x'"] {
            let e = parse_expr(pred).unwrap();
            let p = PruningPredicate::analyze(Some(&e), &schema());
            assert!(
                p.shard_may_match(&ranges, Tick(100)),
                "{pred} must not prune"
            );
        }
        // OR is not analysed: no meta bounds collected.
        let e = parse_expr("$freshness < 0.5 OR $id = 1").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert!(p.meta_bounds().is_empty());
    }

    #[test]
    fn pruning_is_sound_under_string_bounds() {
        // b ranges: seg0 s0..s3, seg1 s4..s7, seg2 s8..s9.
        assert_eq!(surviving_segments("b = 's9'"), 1);
        assert_eq!(surviving_segments("b >= 's8'"), 1);
    }
}
