//! Segment pruning from predicate analysis.
//!
//! The planner extracts conjunctive column/literal constraints from a WHERE
//! clause; the executor checks them against each segment's zone map and
//! skips segments that cannot contain a match. Pruning must be
//! *conservative*: a segment is only skipped when the zone map proves no
//! tuple in it can satisfy the predicate.

use fungus_types::Value;

use fungus_storage::Segment;
use fungus_types::Schema;

use crate::expr::{CmpOp, Expr};

/// One provable constraint on a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnBound {
    /// `col = v`.
    Eq {
        /// Column index in the schema.
        col: usize,
        /// The literal.
        value: Value,
    },
    /// `col < v` / `col <= v`.
    Below {
        /// Column index.
        col: usize,
        /// The bound.
        value: Value,
        /// `<=` vs `<`.
        inclusive: bool,
    },
    /// `col > v` / `col >= v`.
    Above {
        /// Column index.
        col: usize,
        /// The bound.
        value: Value,
        /// `>=` vs `>`.
        inclusive: bool,
    },
    /// `col IN (v1, …, vk)` (all literals).
    OneOf {
        /// Column index.
        col: usize,
        /// The candidate literals.
        values: Vec<Value>,
    },
}

impl ColumnBound {
    /// Can any value inside `segment` satisfy this bound?
    fn segment_may_match(&self, segment: &Segment) -> bool {
        let entry = |col: usize| segment.zone().entry(col);
        match self {
            ColumnBound::Eq { col, value } => entry(*col).is_none_or(|e| e.may_contain(value)),
            ColumnBound::Below {
                col,
                value,
                inclusive,
            } => entry(*col).is_none_or(|e| e.may_precede(value, *inclusive)),
            ColumnBound::Above {
                col,
                value,
                inclusive,
            } => entry(*col).is_none_or(|e| e.may_exceed(value, *inclusive)),
            ColumnBound::OneOf { col, values } => {
                entry(*col).is_none_or(|e| values.iter().any(|v| e.may_contain(v)))
            }
        }
    }
}

/// The conjunction of provable bounds extracted from a predicate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruningPredicate {
    bounds: Vec<ColumnBound>,
}

impl PruningPredicate {
    /// Extracts bounds from `predicate`. Only top-level conjunctions
    /// contribute; anything else (OR, NOT, non-literal operands,
    /// pseudo-columns) is ignored, which keeps pruning sound.
    pub fn analyze(predicate: Option<&Expr>, schema: &Schema) -> PruningPredicate {
        let mut bounds = Vec::new();
        if let Some(p) = predicate {
            collect(p, schema, &mut bounds);
        }
        PruningPredicate { bounds }
    }

    /// The extracted bounds.
    pub fn bounds(&self) -> &[ColumnBound] {
        &self.bounds
    }

    /// True when no bound could be extracted (every segment must be read).
    pub fn is_trivial(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Could `segment` contain a matching tuple?
    pub fn segment_may_match(&self, segment: &Segment) -> bool {
        self.bounds.iter().all(|b| b.segment_may_match(segment))
    }
}

fn collect(expr: &Expr, schema: &Schema, out: &mut Vec<ColumnBound>) {
    match expr {
        Expr::And(a, b) => {
            collect(a, schema, out);
            collect(b, schema, out);
        }
        Expr::Compare { left, op, right } => {
            // col op literal, or literal op col (flipped).
            if let (Expr::Column(name), Expr::Literal(v)) = (&**left, &**right) {
                push_bound(schema, name, *op, v, out);
            } else if let (Expr::Literal(v), Expr::Column(name)) = (&**left, &**right) {
                push_bound(schema, name, flip(*op), v, out);
            }
        }
        Expr::Between { expr, low, high } => {
            if let (Expr::Column(name), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            {
                push_bound(schema, name, CmpOp::Ge, lo, out);
                push_bound(schema, name, CmpOp::Le, hi, out);
            }
        }
        Expr::InList { expr, list } => {
            if let Expr::Column(name) = &**expr {
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        Expr::Literal(v) if !v.is_null() => values.push(v.clone()),
                        // A NULL in the list can never *match*, so it is
                        // safe to drop it from the candidate set.
                        Expr::Literal(_) => {}
                        // Non-literal member: cannot prove anything.
                        _ => return,
                    }
                }
                if let Some(col) = schema.index_of(name) {
                    out.push(ColumnBound::OneOf { col, values });
                }
            }
        }
        _ => {}
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn push_bound(schema: &Schema, name: &str, op: CmpOp, value: &Value, out: &mut Vec<ColumnBound>) {
    if value.is_null() {
        // `col op NULL` never matches; leave pruning to the evaluator.
        return;
    }
    let Some(col) = schema.index_of(name) else {
        return;
    };
    let bound = match op {
        CmpOp::Eq => ColumnBound::Eq {
            col,
            value: value.clone(),
        },
        CmpOp::Lt => ColumnBound::Below {
            col,
            value: value.clone(),
            inclusive: false,
        },
        CmpOp::Le => ColumnBound::Below {
            col,
            value: value.clone(),
            inclusive: true,
        },
        CmpOp::Gt => ColumnBound::Above {
            col,
            value: value.clone(),
            inclusive: false,
        },
        CmpOp::Ge => ColumnBound::Above {
            col,
            value: value.clone(),
            inclusive: true,
        },
        CmpOp::Ne => return, // a zone rarely proves a ≠, not worth it
    };
    out.push(bound);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use fungus_storage::{StorageConfig, TableStore};
    use fungus_types::{DataType, Tick};

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]).unwrap()
    }

    /// Segments of 4: values a = 0,10,20,30 | 40,50,60,70 | 80,90.
    fn table() -> TableStore {
        let mut t = TableStore::new(
            schema(),
            StorageConfig {
                segment_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..10i64 {
            t.insert(
                vec![Value::Int(i * 10), Value::from(format!("s{i}"))],
                Tick(0),
            )
            .unwrap();
        }
        t
    }

    fn surviving_segments(pred: &str) -> usize {
        let t = table();
        let e = parse_expr(pred).unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        t.segments()
            .iter()
            .filter(|s| p.segment_may_match(s))
            .count()
    }

    #[test]
    fn equality_prunes_to_one_segment() {
        assert_eq!(surviving_segments("a = 50"), 1);
        assert_eq!(surviving_segments("50 = a"), 1);
        // 35 falls between segment ranges [0,30], [40,70], [80,90]: all prune.
        assert_eq!(surviving_segments("a = 35"), 0);
    }

    #[test]
    fn range_bounds_prune() {
        assert_eq!(surviving_segments("a > 70"), 1);
        assert_eq!(surviving_segments("a >= 70"), 2);
        assert_eq!(surviving_segments("a < 40"), 1);
        assert_eq!(surviving_segments("a <= 40"), 2);
        assert_eq!(surviving_segments("a > 10 AND a < 50"), 2);
        assert_eq!(surviving_segments("a BETWEEN 45 AND 55"), 1);
    }

    #[test]
    fn flipped_literal_side() {
        assert_eq!(surviving_segments("70 < a"), 1);
        assert_eq!(surviving_segments("40 > a"), 1);
    }

    #[test]
    fn in_list_prunes() {
        assert_eq!(surviving_segments("a IN (0, 90)"), 2);
        // Zone maps are ranges: 5 falls inside segment 0's [0,30] envelope.
        assert_eq!(surviving_segments("a IN (5, NULL)"), 1);
        // 35 falls between every segment's range: all prune.
        assert_eq!(surviving_segments("a IN (35, NULL)"), 0);
    }

    #[test]
    fn unprunable_shapes_keep_everything() {
        assert_eq!(
            surviving_segments("a = 50 OR a = 0"),
            3,
            "OR is not analysed"
        );
        assert_eq!(surviving_segments("a + 1 = 50"), 3);
        assert_eq!(surviving_segments("a <> 50"), 3);
        assert_eq!(surviving_segments("$freshness < 0.5"), 3);
        assert_eq!(
            surviving_segments("a IN (0, b)"),
            3,
            "non-literal list member"
        );
    }

    #[test]
    fn null_comparisons_extract_nothing() {
        let e = parse_expr("a = NULL").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert!(p.is_trivial());
    }

    #[test]
    fn trivial_predicate() {
        let p = PruningPredicate::analyze(None, &schema());
        assert!(p.is_trivial());
        let t = table();
        assert!(t.segments().iter().all(|s| p.segment_may_match(s)));
    }

    #[test]
    fn conjunction_combines_bounds() {
        let e = parse_expr("a >= 40 AND a <= 70 AND b = 's5'").unwrap();
        let p = PruningPredicate::analyze(Some(&e), &schema());
        assert_eq!(p.bounds().len(), 3);
        let t = table();
        let survivors: Vec<usize> = t
            .segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| p.segment_may_match(s))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(survivors, vec![1]);
    }

    #[test]
    fn pruning_is_sound_under_string_bounds() {
        // b ranges: seg0 s0..s3, seg1 s4..s7, seg2 s8..s9.
        assert_eq!(surviving_segments("b = 's9'"), 1);
        assert_eq!(surviving_segments("b >= 's8'"), 1);
    }
}
