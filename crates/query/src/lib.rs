//! # fungus-query
//!
//! The query layer: expressions, a SQL-ish parser, a logical planner with
//! zone-map pruning, and an executor implementing the paper's
//! **query-consume semantics** (the second natural law):
//!
//! > "The extent of table R is replaced by each query Q into the union of
//! > the answer set of Q and the reduced extent of R. … All tuples in R
//! > satisfying P are discarded immediately."
//!
//! A `SELECT … CONSUME` statement removes every tuple the predicate
//! matched, atomically with the scan that returned them; plain `SELECT`
//! (peek) is also provided because a usable system needs a non-destructive
//! read. Consumed tuples are returned to the caller so the engine can
//! distill them into summaries before they disappear.
//!
//! Decay metadata is queryable through pseudo-columns: `$freshness`,
//! `$age`, `$id`, `$inserted_at`, and `$reads` — e.g.
//! `SELECT * FROM r WHERE $freshness < 0.2 CONSUME` distils the
//! nearly-rotten portion of a container.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod expr;
pub mod extent;
pub mod parser;
pub mod plan;
pub mod prune;

pub use exec::{execute, execute_parsed, execute_readonly, execute_statement, ResultSet};
pub use expr::{AggFunc, BinOp, CmpOp, Expr, MetaField, ScalarFunc};
pub use extent::{scan_store, QueryExtent, ReadExtent, ScanOutcome};
pub use parser::{
    parse_expr, parse_statement, CreateContainerStatement, DistillClause, ProjExpr, Projection,
    SelectStatement, ShardingClause, SortKey, Statement,
};
pub use plan::{LogicalPlan, OutputColumn, PlannedExpr, Planner};
pub use prune::{ColumnBound, MetaBound, MetaRanges, PruningPredicate};
