//! Plan execution with consume semantics.
//!
//! Execution order:
//!
//! 1. **Scan** — walk segments in time order, skipping segments the
//!    [`PruningPredicate`](crate::prune::PruningPredicate) rules out;
//!    evaluate the predicate on each live tuple.
//! 2. **Shape** — project scalar rows or fold aggregate groups.
//! 3. **Sort + limit** — order the result and truncate.
//! 4. **Consume** — if the statement says `CONSUME`, delete exactly the
//!    tuples whose rows were *returned* (after LIMIT in scalar mode; every
//!    predicate match in aggregate mode, since the aggregate consumed their
//!    information — including rows of groups a `HAVING` clause later
//!    filtered from the output, which were still read to compute it).
//! 5. **Touch** — surviving returned tuples get their access metadata
//!    bumped, feeding the importance fungus and the waste metric.

use std::cmp::Ordering;
use std::collections::HashMap;

use fungus_storage::TombstoneReason;
use fungus_types::{ColumnDef, DataType, FungusError, Result, Schema, Tick, Tuple, TupleId, Value};

use crate::expr::AggFunc;
use crate::extent::{QueryExtent, ReadExtent, ScanOutcome};
use crate::parser::{parse_statement, Statement};
use crate::plan::{LogicalPlan, PlannedExpr, Planner};

/// Internal point-access seam: the shaping phases only ever resolve a
/// matched id to its tuple, one id at a time. Abstracting that single
/// operation lets the same shaping code run against a mutable extent
/// (whose lock-sharded layouts need `&mut` for the `get_mut` fast path)
/// and against an immutable snapshot.
trait TupleFetch {
    fn fetch(&mut self, id: TupleId) -> Option<&Tuple>;
}

impl<E: QueryExtent + ?Sized> TupleFetch for &mut E {
    fn fetch(&mut self, id: TupleId) -> Option<&Tuple> {
        self.tuple(id)
    }
}

/// Wraps a shared reference to a [`ReadExtent`] so snapshots satisfy
/// [`TupleFetch`] without overlapping the `&mut E` impl.
struct Peek<'a, E: ?Sized>(&'a E);

impl<E: ReadExtent + ?Sized> TupleFetch for Peek<'_, E> {
    fn fetch(&mut self, id: TupleId) -> Option<&Tuple> {
        self.0.peek(id)
    }
}

/// The answer set `A` of a query, plus the consumed tuples (the paper's
/// "reduced extent" delta) and scan diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Tuples removed by consume semantics, in id order — routed to
    /// distillation by the engine before they are dropped.
    pub consumed: Vec<Tuple>,
    /// Live tuples examined by the scan.
    pub scanned: usize,
    /// Segments skipped by zone-map pruning.
    pub pruned_segments: usize,
    /// Whole shards skipped by shard-summary pruning (always 0 on a
    /// monolithic extent).
    pub pruned_shards: usize,
    /// Whether a secondary hash index answered the scan.
    pub used_index: bool,
}

impl ResultSet {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row, one-column result (aggregates).
    pub fn scalar(&self) -> Result<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(FungusError::EvalError(format!(
                "expected a 1x1 result, got {}x{}",
                self.rows.len(),
                self.columns.len()
            )))
        }
    }
}

/// Parses, plans, and executes one statement string against an extent.
///
/// `INSERT` statements evaluate their literal rows and append them at
/// `now`; the result set reports the inserted count.
pub fn execute_statement<E: QueryExtent>(sql: &str, table: &mut E, now: Tick) -> Result<ResultSet> {
    execute_parsed(parse_statement(sql)?, table, now)
}

/// Executes an already-parsed statement (lets callers that route by table
/// name avoid a second parse).
pub fn execute_parsed<E: QueryExtent>(
    stmt: Statement,
    table: &mut E,
    now: Tick,
) -> Result<ResultSet> {
    match stmt {
        Statement::Select(stmt) => {
            let plan = Planner.plan(&stmt, table.schema())?;
            execute(&plan, table, now)
        }
        Statement::Explain(stmt) => {
            let plan = Planner.plan(&stmt, table.schema())?;
            Ok(ResultSet {
                columns: vec!["plan".into()],
                rows: plan
                    .to_string()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect(),
                consumed: Vec::new(),
                scanned: 0,
                pruned_segments: 0,
                pruned_shards: 0,
                used_index: false,
            })
        }
        Statement::Delete { predicate, .. } => {
            let schema = table.schema().clone();
            if let Some(p) = &predicate {
                p.validate(&schema)?;
            }
            let matched: Vec<TupleId> = {
                let mut ids = Vec::new();
                for id in table.live_ids() {
                    let t = table.tuple(id).expect("live id from the same extent");
                    let keep = match &predicate {
                        Some(p) => p.eval_predicate(t, &schema, now)?,
                        None => true,
                    };
                    if keep {
                        ids.push(id);
                    }
                }
                ids
            };
            let mut deleted = 0i64;
            for id in &matched {
                if table.delete(*id, TombstoneReason::Deleted).is_some() {
                    deleted += 1;
                }
            }
            Ok(ResultSet {
                columns: vec!["deleted".into()],
                rows: vec![vec![Value::Int(deleted)]],
                consumed: Vec::new(),
                scanned: 0,
                pruned_segments: 0,
                pruned_shards: 0,
                used_index: false,
            })
        }
        Statement::Summarize { table, summary, .. } => Err(FungusError::PlanError(format!(
            "SUMMARIZE `{summary}` FROM `{table}` must run at the database layer \
             (Database::execute), not against a single table"
        ))),
        Statement::CreateContainer(stmt) => Err(FungusError::PlanError(format!(
            "CREATE CONTAINER `{}` must run at the database layer              (Database::execute_ddl), not against a single table",
            stmt.name
        ))),
        Statement::CreateIndex { column, ordered, .. } => {
            if ordered {
                table.create_ord_index(&column)?;
            } else {
                table.create_index(&column)?;
            }
            Ok(ResultSet {
                columns: vec!["indexed".into()],
                rows: vec![vec![Value::Str(column)]],
                consumed: Vec::new(),
                scanned: 0,
                pruned_segments: 0,
                pruned_shards: 0,
                used_index: false,
            })
        }
        Statement::Insert { rows, .. } => {
            // Literal rows evaluate against a dummy tuple (no column refs
            // allowed — validate catches them).
            let dummy_schema = Schema::new(vec![])?;
            let dummy = Tuple::new(TupleId(0), now, vec![]);
            let mut inserted = 0i64;
            for row in rows {
                let mut values = Vec::with_capacity(row.len());
                for e in row {
                    e.validate(&dummy_schema)?;
                    values.push(e.eval(&dummy, &dummy_schema, now)?);
                }
                table.insert(values, now)?;
                inserted += 1;
            }
            Ok(ResultSet {
                columns: vec!["inserted".into()],
                rows: vec![vec![Value::Int(inserted)]],
                consumed: Vec::new(),
                scanned: 0,
                pruned_segments: 0,
                pruned_shards: 0,
                used_index: false,
            })
        }
    }
}

/// Executes a compiled plan.
pub fn execute<E: QueryExtent>(plan: &LogicalPlan, table: &mut E, now: Tick) -> Result<ResultSet> {
    let schema = table.schema().clone();

    // ---- phase 1: scan ----------------------------------------------
    // The extent owns the access-path choice (indexes, zone-map pruning,
    // shard pruning); the matched ids come back in global id order.
    let scan = table.scan(plan, now)?;

    // ---- phase 2+3: shape, sort, limit --------------------------------
    let (result, returned_ids) = shape_phases(plan, &mut &mut *table, &schema, scan, now)?;
    let ResultSet {
        columns,
        rows,
        scanned,
        pruned_segments,
        pruned_shards,
        used_index,
        ..
    } = result;

    // ---- phase 4: consume / touch -------------------------------------
    let mut consumed = Vec::new();
    if plan.consume {
        for id in &returned_ids {
            if let Some(mut t) = table.delete(*id, TombstoneReason::Consumed) {
                // A consumed tuple was, by definition, read once.
                t.meta.touch(now);
                consumed.push(t);
            }
        }
    } else {
        for id in &returned_ids {
            table.touch(*id, now);
        }
    }

    Ok(ResultSet {
        columns,
        rows,
        consumed,
        scanned,
        pruned_segments,
        pruned_shards,
        used_index,
    })
}

/// Executes the **read phases** of a plan against an immutable snapshot:
/// scan, shape, sort, limit — everything up to (but excluding) the
/// consume/touch side effects.
///
/// Returns the result set (with `consumed` always empty) plus the ids the
/// answer was drawn from — the exact set [`execute`] would have consumed
/// (consume plans) or touched (peek plans). Callers enforcing the MVCC
/// isolation contract apply those effects to the **live** version
/// themselves: a peek queues deferred touches; a `CONSUME` validates that
/// the epoch has not advanced since the snapshot was pinned and then
/// deletes exactly `returned_ids`, or retries on a newer snapshot.
pub fn execute_readonly<E: ReadExtent + ?Sized>(
    plan: &LogicalPlan,
    table: &E,
    now: Tick,
) -> Result<(ResultSet, Vec<TupleId>)> {
    let schema = table.schema().clone();
    let scan = table.scan(plan, now)?;
    shape_phases(plan, &mut Peek(table), &schema, scan, now)
}

/// Phases 2–3 shared by [`execute`] and [`execute_readonly`]: shape the
/// matched ids into output rows, sort, and limit. Sharing this code is
/// what makes snapshot answers bit-identical to locked answers by
/// construction.
fn shape_phases<T: TupleFetch>(
    plan: &LogicalPlan,
    fetch: &mut T,
    schema: &Schema,
    scan: ScanOutcome,
    now: Tick,
) -> Result<(ResultSet, Vec<TupleId>)> {
    let matched = scan.matched;
    let columns: Vec<String> = plan.outputs.iter().map(|o| o.name.clone()).collect();
    let (rows, returned_ids) = if plan.aggregate {
        (
            aggregate_rows(plan, fetch, &matched, schema, now)?,
            matched.clone(),
        )
    } else {
        scalar_rows(plan, fetch, &matched, schema, now)?
    };
    Ok((
        ResultSet {
            columns,
            rows,
            consumed: Vec::new(),
            scanned: scan.scanned,
            pruned_segments: scan.pruned_segments,
            pruned_shards: scan.pruned_shards,
            used_index: scan.used_index,
        },
        returned_ids,
    ))
}

/// Scalar mode: evaluate outputs per matched tuple, sort, limit.
/// Returns the rows plus the ids that were actually returned.
fn scalar_rows<T: TupleFetch>(
    plan: &LogicalPlan,
    table: &mut T,
    matched: &[TupleId],
    schema: &Schema,
    now: Tick,
) -> Result<(Vec<Vec<Value>>, Vec<TupleId>)> {
    // Materialise output row + sort key per match.
    let mut shaped: Vec<(Vec<Value>, Vec<Value>, TupleId)> = Vec::with_capacity(matched.len());
    for id in matched {
        let tuple = table
            .fetch(*id)
            .expect("matched tuple is live within the same borrow");
        let mut row = Vec::with_capacity(plan.outputs.len());
        for out in &plan.outputs {
            match &out.expr {
                PlannedExpr::Scalar(e) => row.push(e.eval(tuple, schema, now)?),
                _ => unreachable!("scalar mode has only scalar outputs"),
            }
        }
        let mut keys = Vec::with_capacity(plan.order_by.len());
        for key in &plan.order_by {
            keys.push(key.expr.eval(tuple, schema, now)?);
        }
        shaped.push((row, keys, *id));
    }

    if plan.distinct {
        // Keep the first occurrence (insertion order) of each row shape.
        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        let mut dup_ids_by_row: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        let mut unique = Vec::with_capacity(shaped.len());
        for (row, keys, id) in shaped {
            dup_ids_by_row.entry(row.clone()).or_default().push(id);
            if seen.insert(row.clone()) {
                unique.push((row, keys, id));
            }
        }
        sort_shaped(&mut unique, plan);
        if let Some(n) = plan.limit {
            unique.truncate(n);
        }
        // Consume semantics: every source row that contributed to a
        // returned distinct row is part of the answer's information and is
        // consumed with it.
        let mut ids = Vec::new();
        for (row, _, _) in &unique {
            ids.extend(dup_ids_by_row.remove(row).into_iter().flatten());
        }
        ids.sort_unstable();
        let rows = unique.into_iter().map(|(row, _, _)| row).collect();
        return Ok((rows, ids));
    }

    sort_shaped(&mut shaped, plan);
    if let Some(n) = plan.limit {
        shaped.truncate(n);
    }
    let ids = shaped.iter().map(|(_, _, id)| *id).collect();
    let rows = shaped.into_iter().map(|(row, _, _)| row).collect();
    Ok((rows, ids))
}

fn sort_shaped(shaped: &mut [(Vec<Value>, Vec<Value>, TupleId)], plan: &LogicalPlan) {
    if plan.order_by.is_empty() {
        return;
    }
    shaped.sort_by(|a, b| {
        for (i, key) in plan.order_by.iter().enumerate() {
            let ord = a.1[i].cmp_total(&b.1[i]);
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Stable tiebreak on insertion order.
        a.2.cmp(&b.2)
    });
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// Exact distinct-value set for COUNT(DISTINCT expr).
    Distinct(std::collections::HashSet<Value>),
    /// Welford accumulator for STDDEV/VARIANCE.
    Spread {
        func: AggFunc,
        n: i64,
        mean: f64,
        m2: f64,
    },
    /// Freshness-weighted: Σ fᵢ (FCOUNT) or Σ fᵢ·xᵢ (FSUM), plus Σ fᵢ for
    /// the weighted mean (FAVG).
    FWeighted {
        func: AggFunc,
        wsum: f64,
        wtotal: f64,
    },
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::StdDev | AggFunc::Variance => Acc::Spread {
                func,
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggFunc::FCount | AggFunc::FSum | AggFunc::FAvg => Acc::FWeighted {
                func,
                wsum: 0.0,
                wtotal: 0.0,
            },
        }
    }

    fn fold(&mut self, value: Option<&Value>, freshness: f64) -> Result<()> {
        match self {
            Acc::Count(n) => {
                // COUNT(*) folds None (row marker); COUNT(e) skips NULLs.
                match value {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            Acc::Distinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
            Acc::Sum(state) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        // SUM is numeric-only; `+`'s string concatenation
                        // must not leak into aggregation.
                        if v.as_f64().is_none() {
                            return Err(FungusError::EvalError(format!(
                                "SUM requires numeric input, got {}",
                                v.data_type()
                            )));
                        }
                        *state = Some(match state.take() {
                            Some(acc) => acc.add(v)?,
                            None => v.clone(),
                        });
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *n += 1;
                    } else if !v.is_null() {
                        return Err(FungusError::EvalError(format!(
                            "AVG requires numeric input, got {}",
                            v.data_type()
                        )));
                    }
                }
            }
            Acc::Min(state) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match state {
                            Some(cur) => v.cmp_total(cur) == Ordering::Less,
                            None => true,
                        };
                        if replace {
                            *state = Some(v.clone());
                        }
                    }
                }
            }
            Acc::Max(state) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match state {
                            Some(cur) => v.cmp_total(cur) == Ordering::Greater,
                            None => true,
                        };
                        if replace {
                            *state = Some(v.clone());
                        }
                    }
                }
            }
            Acc::Spread { func, n, mean, m2 } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *n += 1;
                        let delta = x - *mean;
                        *mean += delta / *n as f64;
                        *m2 += delta * (x - *mean);
                    } else if !v.is_null() {
                        return Err(FungusError::EvalError(format!(
                            "{} requires numeric input, got {}",
                            func.name(),
                            v.data_type()
                        )));
                    }
                }
            }
            Acc::FWeighted { func, wsum, wtotal } => match func {
                AggFunc::FCount => {
                    // FCOUNT(*) weighs every matched row; FCOUNT(e) weighs
                    // rows where e is non-null.
                    match value {
                        None => *wtotal += freshness,
                        Some(v) if !v.is_null() => *wtotal += freshness,
                        Some(_) => {}
                    }
                }
                AggFunc::FSum | AggFunc::FAvg => {
                    if let Some(v) = value {
                        if let Some(x) = v.as_f64() {
                            *wsum += freshness * x;
                            *wtotal += freshness;
                        } else if !v.is_null() {
                            return Err(FungusError::EvalError(format!(
                                "{} requires numeric input, got {}",
                                func.name(),
                                v.data_type()
                            )));
                        }
                    }
                }
                _ => unreachable!("non-weighted func in FWeighted"),
            },
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Distinct(set) => Value::Int(set.len() as i64),
            Acc::Spread { func, n, m2, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    let var = m2 / n as f64;
                    match func {
                        AggFunc::Variance => Value::float(var),
                        _ => Value::float(var.sqrt()),
                    }
                }
            }
            Acc::FWeighted { func, wsum, wtotal } => match func {
                AggFunc::FCount => Value::float(wtotal),
                AggFunc::FSum => Value::float(wsum),
                AggFunc::FAvg => {
                    if wtotal == 0.0 {
                        Value::Null
                    } else {
                        Value::float(wsum / wtotal)
                    }
                }
                _ => unreachable!(),
            },
        }
    }
}

/// Aggregate mode: group matched tuples, fold accumulators, emit one row
/// per group (or exactly one row for the implicit global group), then sort
/// against the *output* schema and limit.
fn aggregate_rows<T: TupleFetch>(
    plan: &LogicalPlan,
    table: &mut T,
    matched: &[TupleId],
    schema: &Schema,
    now: Tick,
) -> Result<Vec<Vec<Value>>> {
    let key_indices: Vec<usize> = plan
        .group_by
        .iter()
        .map(|g| schema.index_of(g).expect("validated by planner"))
        .collect();

    // Group id per key, in first-seen order for deterministic output.
    let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();

    let make_accs = || -> Vec<Acc> {
        plan.outputs
            .iter()
            .filter_map(|o| match &o.expr {
                PlannedExpr::Aggregate(f, _) => Some(Acc::new(*f)),
                PlannedExpr::CountDistinct(_) => {
                    Some(Acc::Distinct(std::collections::HashSet::new()))
                }
                _ => None,
            })
            .collect()
    };

    if plan.group_by.is_empty() {
        // Implicit single group, present even with zero matches.
        groups.push((Vec::new(), make_accs()));
        group_index.insert(Vec::new(), 0);
    }

    for id in matched {
        let tuple = table.fetch(*id).expect("matched tuple is live");
        let key: Vec<Value> = key_indices
            .iter()
            .map(|i| tuple.values[*i].clone())
            .collect();
        let gid = match group_index.get(&key) {
            Some(g) => *g,
            None => {
                groups.push((key.clone(), make_accs()));
                group_index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        let freshness = tuple.meta.freshness.get();
        let mut acc_i = 0;
        for out in &plan.outputs {
            match &out.expr {
                PlannedExpr::Aggregate(_, arg) => {
                    let value = match arg {
                        Some(e) => Some(e.eval(tuple, schema, now)?),
                        None => None,
                    };
                    groups[gid].1[acc_i].fold(value.as_ref(), freshness)?;
                    acc_i += 1;
                }
                PlannedExpr::CountDistinct(arg) => {
                    let value = arg.eval(tuple, schema, now)?;
                    groups[gid].1[acc_i].fold(Some(&value), freshness)?;
                    acc_i += 1;
                }
                _ => {}
            }
        }
    }

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut accs = accs.into_iter();
        let mut row = Vec::with_capacity(plan.outputs.len());
        for out in &plan.outputs {
            match &out.expr {
                PlannedExpr::GroupKey(i) => row.push(key[*i].clone()),
                PlannedExpr::Aggregate(..) | PlannedExpr::CountDistinct(_) => {
                    row.push(accs.next().expect("acc per aggregate").finish())
                }
                PlannedExpr::Scalar(_) => unreachable!("planner rejects these"),
            }
        }
        rows.push(row);
    }

    // HAVING and ORDER BY evaluate over the *output* row: build a
    // synthetic schema so they can reference output names (incl. aliases).
    let out_schema = if plan.having.is_some() || !plan.order_by.is_empty() {
        Some(
            Schema::new(
                plan.outputs
                    .iter()
                    .map(|o| ColumnDef::nullable(o.name.clone(), DataType::Int))
                    .collect(),
            )
            .map_err(|_| {
                FungusError::PlanError(
                    "HAVING/ORDER BY with aggregates requires unique output column names".into(),
                )
            })?,
        )
    } else {
        None
    };

    if let Some(having) = &plan.having {
        let out_schema = out_schema.as_ref().expect("built above");
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let synthetic = Tuple::new(TupleId(0), now, row.clone());
            if having.eval_predicate(&synthetic, out_schema, now)? {
                kept.push(row);
            }
        }
        rows = kept;
    }

    if !plan.order_by.is_empty() {
        let out_schema = out_schema.expect("built above");
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
        for row in rows {
            let synthetic = Tuple::new(TupleId(0), now, row.clone());
            let mut keys = Vec::with_capacity(plan.order_by.len());
            for key in &plan.order_by {
                keys.push(key.expr.eval(&synthetic, &out_schema, now)?);
            }
            keyed.push((row, keys));
        }
        keyed.sort_by(|a, b| {
            for (i, key) in plan.order_by.iter().enumerate() {
                let ord = a.1[i].cmp_total(&b.1[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rows = keyed.into_iter().map(|(row, _)| row).collect();
    }

    if let Some(n) = plan.limit {
        rows.truncate(n);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fungus_storage::{StorageConfig, TableStore};
    use fungus_types::DataType;

    /// sensors(sensor Int, v Float, tag Str): 12 rows, sensor = i % 3,
    /// v = i as float, tag = "t{i%2}".
    fn table() -> TableStore {
        let schema = Schema::from_pairs(&[
            ("sensor", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ])
        .unwrap();
        let mut t = TableStore::new(
            schema,
            StorageConfig {
                segment_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..12i64 {
            t.insert(
                vec![
                    Value::Int(i % 3),
                    Value::Float(i as f64),
                    Value::from(format!("t{}", i % 2)),
                ],
                Tick(i as u64),
            )
            .unwrap();
        }
        t
    }

    fn run(sql: &str, t: &mut TableStore) -> ResultSet {
        execute_statement(sql, t, Tick(100)).unwrap()
    }

    #[test]
    fn select_star_returns_everything() {
        let mut t = table();
        let r = run("SELECT * FROM sensors", &mut t);
        assert_eq!(r.columns, vec!["sensor", "v", "tag"]);
        assert_eq!(r.len(), 12);
        assert!(r.consumed.is_empty());
        assert_eq!(r.scanned, 12);
        // Peek touches every returned tuple.
        assert!(t.iter_live().all(|x| x.meta.access_count == 1));
    }

    #[test]
    fn where_filters_and_projects() {
        let mut t = table();
        let r = run("SELECT v FROM sensors WHERE sensor = 1", &mut t);
        assert_eq!(r.len(), 4);
        assert!(r
            .rows
            .iter()
            .all(|row| { matches!(row[0], Value::Float(f) if (f as i64) % 3 == 1) }));
    }

    #[test]
    fn consume_removes_exactly_the_answer_set() {
        let mut t = table();
        let before = t.live_count();
        let r = run("SELECT * FROM sensors WHERE sensor = 0 CONSUME", &mut t);
        assert_eq!(r.len(), 4);
        assert_eq!(r.consumed.len(), 4);
        assert_eq!(t.live_count(), before - 4);
        assert_eq!(t.evicted_consumed(), 4);
        // Law 2: re-running the same query finds nothing.
        let r2 = run("SELECT * FROM sensors WHERE sensor = 0 CONSUME", &mut t);
        assert!(r2.is_empty());
        assert!(r2.consumed.is_empty());
    }

    #[test]
    fn consume_with_limit_only_removes_returned_rows() {
        let mut t = table();
        let r = run(
            "SELECT v FROM sensors ORDER BY v DESC LIMIT 3 CONSUME",
            &mut t,
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[0][0], Value::Float(11.0));
        assert_eq!(r.consumed.len(), 3);
        assert_eq!(t.live_count(), 9, "only the returned 3 are consumed");
    }

    #[test]
    fn order_by_and_tiebreak() {
        let mut t = table();
        let r = run("SELECT sensor, v FROM sensors ORDER BY sensor, v", &mut t);
        // sensor ascending; within sensor, v ascending.
        let sensors: Vec<i64> = r.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = sensors.clone();
        sorted.sort();
        assert_eq!(sensors, sorted);
        assert_eq!(r.rows[0][1], Value::Float(0.0));
    }

    #[test]
    fn global_aggregates() {
        let mut t = table();
        let r = run(
            "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM sensors",
            &mut t,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(12));
        assert_eq!(r.rows[0][1], Value::Float(66.0));
        assert_eq!(r.rows[0][2], Value::Float(5.5));
        assert_eq!(r.rows[0][3], Value::Float(0.0));
        assert_eq!(r.rows[0][4], Value::Float(11.0));
    }

    #[test]
    fn aggregates_on_empty_match() {
        let mut t = table();
        let r = run(
            "SELECT COUNT(*), SUM(v), MIN(v) FROM sensors WHERE sensor = 99",
            &mut t,
        );
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
        assert!(r.scalar().is_err(), "three columns is not a scalar");
    }

    #[test]
    fn group_by_with_order_and_alias() {
        let mut t = table();
        let r = run(
            "SELECT sensor, COUNT(*) AS n, SUM(v) AS total FROM sensors \
             GROUP BY sensor ORDER BY total DESC",
            &mut t,
        );
        assert_eq!(r.columns, vec!["sensor", "n", "total"]);
        assert_eq!(r.len(), 3);
        // sensor 2: v = 2,5,8,11 → 26; sensor 1 → 22; sensor 0 → 18.
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(26.0));
        assert_eq!(r.rows[2][2], Value::Float(18.0));
        assert!(r.rows.iter().all(|row| row[1] == Value::Int(4)));
    }

    #[test]
    fn aggregate_consume_eats_all_matches() {
        let mut t = table();
        let r = run("SELECT COUNT(*) FROM sensors WHERE v < 6 CONSUME", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(6));
        assert_eq!(r.consumed.len(), 6);
        assert_eq!(t.live_count(), 6);
    }

    #[test]
    fn pseudo_column_queries() {
        let mut t = table();
        // Decay some tuples, then distill the nearly-rotten ones.
        t.decay(TupleId(0), 0.95);
        t.decay(TupleId(1), 0.95);
        let r = run(
            "SELECT $id FROM sensors WHERE $freshness < 0.1 CONSUME",
            &mut t,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(t.live_count(), 10);
        // Age pseudo-column at now=100: tuple 11 inserted at t11 → age 89.
        let r = run("SELECT $age FROM sensors WHERE $id = 11", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(89));
    }

    #[test]
    fn pruning_skips_segments() {
        let mut t = table();
        // v spans 0..11 in 3 segments of 4: [0..3], [4..7], [8..11].
        let r = run("SELECT v FROM sensors WHERE v >= 8.0", &mut t);
        assert_eq!(r.len(), 4);
        assert_eq!(r.pruned_segments, 2);
        assert_eq!(r.scanned, 4, "only the surviving segment is scanned");
    }

    #[test]
    fn insert_statement_appends() {
        let mut t = table();
        let r = run(
            "INSERT INTO sensors VALUES (7, 99.5, 'new'), (8, 1.5, NULL)",
            &mut t,
        );
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(t.live_count(), 14);
        let r = run("SELECT tag FROM sensors WHERE sensor = 7", &mut t);
        assert_eq!(r.rows[0][0], Value::from("new"));
    }

    #[test]
    fn insert_rejects_column_references() {
        let mut t = table();
        let err = execute_statement("INSERT INTO sensors VALUES (a, 1.0, 'x')", &mut t, Tick(0))
            .unwrap_err();
        assert!(matches!(err, FungusError::UnknownColumn(_)));
    }

    #[test]
    fn scalar_helper() {
        let mut t = table();
        let r = run("SELECT COUNT(*) FROM sensors", &mut t);
        assert_eq!(r.scalar().unwrap(), &Value::Int(12));
        let r = run("SELECT * FROM sensors", &mut t);
        assert!(r.scalar().is_err());
    }

    #[test]
    fn unknown_table_is_callers_problem_but_bad_sql_errors() {
        let mut t = table();
        assert!(execute_statement("SELECT FROM x", &mut t, Tick(0)).is_err());
        assert!(execute_statement("SELECT zzz FROM sensors", &mut t, Tick(0)).is_err());
    }

    #[test]
    fn count_expr_skips_nulls() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let mut t = TableStore::new(schema, StorageConfig::default()).unwrap();
        t.insert(vec![Value::Int(1)], Tick(0)).unwrap();
        t.insert(vec![Value::Null], Tick(0)).unwrap();
        t.insert(vec![Value::Int(3)], Tick(0)).unwrap();
        let r = run("SELECT COUNT(x), COUNT(*) FROM t", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][1], Value::Int(3));
    }

    #[test]
    fn like_and_in_filters() {
        let mut t = table();
        let r = run("SELECT COUNT(*) FROM sensors WHERE tag LIKE 't1'", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(6));
        let r = run(
            "SELECT COUNT(*) FROM sensors WHERE sensor IN (0, 2)",
            &mut t,
        );
        assert_eq!(r.rows[0][0], Value::Int(8));
    }

    #[test]
    fn index_scan_matches_full_scan_and_consumes_correctly() {
        let mut with_index = table();
        let mut without = table();
        with_index.create_index("sensor").unwrap();

        for sql in [
            "SELECT v FROM s WHERE sensor = 1 ORDER BY v",
            "SELECT v FROM s WHERE sensor IN (0, 2) ORDER BY v",
            "SELECT COUNT(*) FROM s WHERE sensor = 1 AND v > 4",
        ] {
            let a = run(sql, &mut with_index);
            let b = run(sql, &mut without);
            assert_eq!(a.rows, b.rows, "{sql}");
            assert!(a.used_index, "{sql} should use the index");
            assert!(!b.used_index);
            assert!(
                a.scanned <= b.scanned,
                "{sql}: index must not widen the scan"
            );
        }

        // Consuming through the index keeps the index and extent in sync.
        let r = run("SELECT * FROM s WHERE sensor = 1 CONSUME", &mut with_index);
        assert_eq!(r.consumed.len(), 4);
        assert!(r.used_index);
        let r = run("SELECT * FROM s WHERE sensor = 1", &mut with_index);
        assert!(r.is_empty());
        assert_eq!(r.scanned, 0, "index probe finds nothing left");
    }

    #[test]
    fn ordered_index_answers_range_probes() {
        let mut with_index = table();
        let mut without = table();
        execute_statement("CREATE ORDERED INDEX ON s (v)", &mut with_index, Tick(0)).unwrap();
        for sql in [
            "SELECT v FROM s WHERE v >= 8.0 ORDER BY v",
            "SELECT v FROM s WHERE v > 2 AND v <= 5 ORDER BY v",
            "SELECT v FROM s WHERE v BETWEEN 3 AND 7 ORDER BY v",
            "SELECT COUNT(*) FROM s WHERE v < 4",
        ] {
            let a = run(sql, &mut with_index);
            let b = run(sql, &mut without);
            assert_eq!(a.rows, b.rows, "{sql}");
            assert!(a.used_index, "{sql} should range-probe the ordered index");
            assert!(a.scanned <= b.scanned, "{sql}");
        }
        // Equality also falls back onto the ordered index.
        let r = run("SELECT v FROM s WHERE v = 3.0", &mut with_index);
        assert!(r.used_index);
        assert_eq!(r.len(), 1);
        // Consume through a range probe stays consistent.
        let r = run("SELECT v FROM s WHERE v >= 10 CONSUME", &mut with_index);
        assert_eq!(r.consumed.len(), 2);
        let r = run("SELECT COUNT(*) FROM s WHERE v >= 10", &mut with_index);
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn index_probe_misses_fall_back_to_candidates_only() {
        let mut t = table();
        t.create_index("sensor").unwrap();
        let r = run("SELECT * FROM s WHERE sensor = 99", &mut t);
        assert!(r.is_empty());
        assert!(r.used_index);
        assert_eq!(r.scanned, 0);
    }

    #[test]
    fn distinct_deduplicates_and_consumes_contributors() {
        let mut t = table(); // sensor = i % 3 → values {0,1,2}, 4 rows each
        let r = run("SELECT DISTINCT sensor FROM s ORDER BY sensor", &mut t);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ]
        );
        // DISTINCT + LIMIT + CONSUME removes every contributor of the
        // returned distinct rows (here: all rows with sensor 0).
        let r = run(
            "SELECT DISTINCT sensor FROM s ORDER BY sensor LIMIT 1 CONSUME",
            &mut t,
        );
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
        assert_eq!(r.consumed.len(), 4, "all four sensor-0 rows consumed");
        assert_eq!(t.live_count(), 8);
    }

    #[test]
    fn having_filters_groups_by_output_row() {
        let mut t = table();
        // Every sensor has 4 rows; sums are 18/22/26 for sensors 0/1/2.
        let r = run(
            "SELECT sensor, SUM(v) AS total FROM s GROUP BY sensor              HAVING total > 20 ORDER BY total",
            &mut t,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(1));
        assert_eq!(r.rows[1][0], Value::Int(2));
        // HAVING can also reference the default aggregate name.
        let r = run(
            "SELECT sensor, COUNT(*) FROM s GROUP BY sensor HAVING sensor = 2",
            &mut t,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn having_without_aggregation_is_rejected() {
        let mut t = table();
        assert!(execute_statement("SELECT v FROM s HAVING v > 1", &mut t, Tick(0)).is_err());
        assert!(execute_statement("SELECT DISTINCT COUNT(*) FROM s", &mut t, Tick(0)).is_err());
    }

    #[test]
    fn freshness_weighted_aggregates() {
        let mut t = table(); // 12 rows, all fully fresh
                             // Fully fresh: FCOUNT == COUNT, FAVG == AVG.
        let r = run("SELECT FCOUNT(*), FAVG(v), FSUM(v) FROM s", &mut t);
        assert_eq!(r.rows[0][0], Value::Float(12.0));
        assert_eq!(r.rows[0][1], Value::Float(5.5));
        assert_eq!(r.rows[0][2], Value::Float(66.0));
        // Decay half the rows to freshness 0.5: FCOUNT drops to 9, and
        // FAVG tilts toward the fresh half.
        for i in 0..6u64 {
            t.decay(TupleId(i), 0.5);
        }
        let r = run("SELECT FCOUNT(*), FAVG(v), AVG(v) FROM s", &mut t);
        assert_eq!(r.rows[0][0], Value::Float(9.0));
        let favg = r.rows[0][1].as_f64().unwrap();
        let avg = r.rows[0][2].as_f64().unwrap();
        assert_eq!(avg, 5.5, "plain AVG ignores freshness");
        assert!(
            favg > avg,
            "stale low-v rows are discounted: {favg} vs {avg}"
        );
        // Empty match → FAVG NULL, FCOUNT 0.
        let r = run("SELECT FCOUNT(*), FAVG(v) FROM s WHERE sensor = 99", &mut t);
        assert_eq!(r.rows[0][0], Value::Float(0.0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn case_expressions_project_and_filter() {
        let mut t = table();
        let r = run(
            "SELECT sensor, CASE WHEN v < 4 THEN 'low' WHEN v < 8 THEN 'mid'              ELSE 'high' END AS band FROM s ORDER BY v LIMIT 12",
            &mut t,
        );
        let bands: Vec<&str> = r.rows.iter().map(|row| row[1].as_str().unwrap()).collect();
        assert_eq!(&bands[..4], &["low", "low", "low", "low"]);
        assert_eq!(&bands[8..], &["high", "high", "high", "high"]);
        // CASE with no ELSE yields NULL for unmatched rows.
        let r = run("SELECT CASE WHEN v > 100 THEN 1 END FROM s LIMIT 1", &mut t);
        assert!(r.rows[0][0].is_null());
        // CASE in WHERE.
        let r = run(
            "SELECT COUNT(*) FROM s WHERE CASE WHEN sensor = 0 THEN TRUE ELSE FALSE END",
            &mut t,
        );
        assert_eq!(r.scalar().unwrap(), &Value::Int(4));
    }

    #[test]
    fn stddev_and_variance_aggregates() {
        let mut t = table(); // v = 0..12 → population variance 11.9166…
        let r = run("SELECT VARIANCE(v), STDDEV(v) FROM s", &mut t);
        let var = r.rows[0][0].as_f64().unwrap();
        let sd = r.rows[0][1].as_f64().unwrap();
        let expected: f64 = (0..12).map(|i| (i as f64 - 5.5).powi(2)).sum::<f64>() / 12.0;
        assert!((var - expected).abs() < 1e-9, "var {var} vs {expected}");
        assert!((sd - expected.sqrt()).abs() < 1e-9);
        // Empty group → NULL.
        let r = run("SELECT STDDEV(v) FROM s WHERE sensor = 99", &mut t);
        assert!(r.rows[0][0].is_null());
        // Per-group spreads partition correctly.
        let r = run(
            "SELECT sensor, STDDEV(v) FROM s GROUP BY sensor ORDER BY sensor",
            &mut t,
        );
        assert_eq!(r.len(), 3);
        for row in &r.rows {
            // Each sensor's v values are {k, k+3, k+6, k+9} → stddev ≈ 3.354.
            let sd = row[1].as_f64().unwrap();
            assert!((sd - 45f64.sqrt() / 2.0).abs() < 1e-9, "sd {sd}");
        }
    }

    #[test]
    fn count_distinct_is_exact_per_group() {
        let mut t = table(); // sensor = i % 3, tag = t{i % 2}
        let r = run(
            "SELECT COUNT(DISTINCT sensor), COUNT(DISTINCT tag) FROM s",
            &mut t,
        );
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][1], Value::Int(2));
        // Per group: each sensor has rows with both tags… sensor i%3 vs
        // tag i%2: sensor 0 rows are i = 0,3,6,9 → tags t0,t1,t0,t1 → 2.
        let r = run(
            "SELECT sensor, COUNT(DISTINCT tag) AS tags FROM s GROUP BY sensor ORDER BY sensor",
            &mut t,
        );
        assert_eq!(r.len(), 3);
        assert!(r.rows.iter().all(|row| row[1] == Value::Int(2)));
        // NULLs are not counted.
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let mut t2 = TableStore::new(schema, StorageConfig::default()).unwrap();
        for v in [Some(1i64), None, Some(1), Some(2), None] {
            t2.insert(vec![Value::from(v)], Tick(0)).unwrap();
        }
        let r = run("SELECT COUNT(DISTINCT x) FROM t", &mut t2);
        assert_eq!(r.scalar().unwrap(), &Value::Int(2));
        // Alias + HAVING over it.
        let r = run(
            "SELECT sensor, COUNT(DISTINCT tag) AS tags FROM s GROUP BY sensor              HAVING tags > 1",
            &mut t,
        );
        assert_eq!(r.len(), 3);
        // DISTINCT only valid on COUNT.
        assert!(execute_statement("SELECT SUM(DISTINCT v) FROM s", &mut t, Tick(0)).is_err());
    }

    #[test]
    fn delete_statement_discards_without_reading() {
        let mut t = table();
        let r = run("DELETE FROM s WHERE sensor = 0", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(t.live_count(), 8);
        assert_eq!(t.evicted_deleted(), 4, "owner deletions, not consumption");
        assert_eq!(t.evicted_consumed(), 0);
        // Unconditional delete empties the container.
        let r = run("DELETE FROM s", &mut t);
        assert_eq!(r.rows[0][0], Value::Int(8));
        assert_eq!(t.live_count(), 0);
        // Bad predicates error.
        assert!(execute_statement("DELETE FROM s WHERE zzz = 1", &mut t, Tick(0)).is_err());
    }

    #[test]
    fn create_index_statement_builds_probe_path() {
        let mut t = table();
        let r = run("CREATE INDEX ON s (sensor)", &mut t);
        assert_eq!(r.columns, vec!["indexed".to_string()]);
        let r = run("SELECT COUNT(*) FROM s WHERE sensor = 1", &mut t);
        assert!(r.used_index);
        assert_eq!(r.scalar().unwrap(), &Value::Int(4));
        // Duplicate index errors cleanly.
        assert!(execute_statement("CREATE INDEX ON s (sensor)", &mut t, Tick(0)).is_err());
        assert!(execute_statement("CREATE INDEX ON s (zzz)", &mut t, Tick(0)).is_err());
    }

    #[test]
    fn consumed_tuples_carry_their_values() {
        let mut t = table();
        let r = run("SELECT * FROM sensors WHERE v = 3.0 CONSUME", &mut t);
        assert_eq!(r.consumed.len(), 1);
        assert_eq!(r.consumed[0].values[1], Value::Float(3.0));
        assert_eq!(
            r.consumed[0].meta.access_count, 1,
            "consumption counts as a read"
        );
    }
}
