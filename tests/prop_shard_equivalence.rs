//! Property test for the shard-layout equivalence guarantee: under the
//! same seed and the same interleaved workload, a container sharded into
//! 1, 4, or 16 time-range shards returns *identical* query results and
//! evicts *identical* tuple sets as the monolithic layout, tick for tick.
//!
//! This is the contract that makes sharding a pure layout decision: EGI's
//! seed draws stay on the container's single RNG stream over the globally
//! id-ordered candidate list, spread is resolved along the global time
//! axis (with O(1) hops over dropped shard ranges), and shard pruning is
//! only ever a conservative skip. Any divergence — an extra draw, a
//! reordered candidate, an over-eager prune — shows up here as a
//! mismatched answer or eviction set.

use proptest::prelude::*;

use spacefungus::prelude::*;

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a row at the current tick.
    Insert(i64),
    /// Advance the decay clock one tick.
    Tick,
    /// A plain filter read (exercises shard pruning via `$inserted_at`).
    Recent(u64),
    /// An aggregate over a freshness bound (prunes via the envelope).
    FreshCount,
    /// A consuming read: removes what it returns, shrinking the extent.
    Consume(i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (-50i64..50).prop_map(Op::Insert),
        3 => Just(Op::Tick),
        1 => (0u64..20).prop_map(Op::Recent),
        1 => Just(Op::FreshCount),
        1 => (-50i64..50).prop_map(Op::Consume),
    ]
}

/// Everything observable from one run: each query's answer rows and each
/// tick's eviction set (id, insertion tick, values), plus the survivors.
#[derive(Debug, PartialEq)]
struct Observed {
    answers: Vec<Vec<Vec<Value>>>,
    evicted: Vec<Vec<(u64, u64, Vec<Value>)>>,
    survivors: Vec<(u64, Vec<Value>)>,
}

fn run_workload(ops: &[Op], seed: u64, spec: Option<ShardSpec>) -> Observed {
    let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
    // A fungus aggressive enough that short op sequences still rot: two
    // age-biased seeds per tick, half-freshness bites, narrow spread.
    let mut policy = ContainerPolicy::new(FungusSpec::Egi(EgiConfig {
        seeds_per_tick: 2,
        seed_bias: SeedBias::AgePow(2.0),
        rot_rate: 0.5,
        spread_width: 2,
    }));
    if let Some(spec) = spec {
        policy = policy.with_sharding(spec);
    }
    let rng = DeterministicRng::new(seed);
    let mut c = Container::new("t", schema, policy, &rng).unwrap();

    let select = |sql: &str| match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        other => panic!("expected select, got {other:?}"),
    };

    let mut now = Tick(0);
    let mut out = Observed {
        answers: Vec::new(),
        evicted: Vec::new(),
        survivors: Vec::new(),
    };
    for op in ops {
        match op {
            Op::Insert(v) => {
                c.insert(vec![Value::Int(*v)], now).unwrap();
            }
            Op::Tick => {
                now = Tick(now.get() + 1);
                let (_report, gone) = c.decay_tick_collect(now);
                let mut set: Vec<(u64, u64, Vec<Value>)> = gone
                    .into_iter()
                    .map(|t| (t.meta.id.get(), t.meta.inserted_at.get(), t.values))
                    .collect();
                // Eviction is a *set* contract; the whole-shard drop path
                // may interleave differently with per-tuple deletes.
                set.sort();
                out.evicted.push(set);
            }
            Op::Recent(back) => {
                let floor = now.get().saturating_sub(*back);
                let stmt = select(&format!(
                    "SELECT * FROM t WHERE $inserted_at >= {floor} AND v >= -50"
                ));
                let plan = c.plan(&stmt).unwrap();
                out.answers.push(c.query(&plan, now).unwrap().rows);
            }
            Op::FreshCount => {
                let stmt = select("SELECT COUNT(*) FROM t WHERE $freshness >= 0.5");
                let plan = c.plan(&stmt).unwrap();
                out.answers.push(c.query(&plan, now).unwrap().rows);
            }
            Op::Consume(v) => {
                let stmt = select(&format!("SELECT * FROM t WHERE v >= {v} CONSUME"));
                let plan = c.plan(&stmt).unwrap();
                out.answers.push(c.query(&plan, now).unwrap().rows);
            }
        }
    }
    let stmt = select("SELECT $id, v FROM t WHERE v >= -50");
    let plan = c.plan(&stmt).unwrap();
    out.survivors = c
        .query(&plan, now)
        .unwrap()
        .rows
        .into_iter()
        .map(|r| match r.first() {
            Some(Value::Int(id)) => (*id as u64, r[1..].to_vec()),
            other => panic!("expected $id column, got {other:?}"),
        })
        .collect();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monolithic, fixed 1/4/16-shard, and adaptive layouts all observe
    /// identical histories. The adaptive specs put the lifecycle on the
    /// hot path: small shards with a high low-water mark so bursty insert
    /// runs split the tail and rot-hollowed neighbors merge mid-history —
    /// and none of it may move a single answer or eviction.
    #[test]
    fn shard_layouts_are_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 1..80),
        seed in 0u64..1_000,
    ) {
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count() as u64;
        let mono = run_workload(&ops, seed, None);
        for shards in [1u64, 4, 16] {
            let rows_per_shard = (inserts / shards).max(1);
            let spec = ShardSpec::new(rows_per_shard).with_workers(1);
            let sharded = run_workload(&ops, seed, Some(spec));
            prop_assert_eq!(
                &mono, &sharded,
                "layout with ~{} shards diverged from monolithic", shards
            );
        }
        for (divisor, low_water) in [(4u64, 0.6), (8, 0.25)] {
            let rows_per_shard = (inserts / divisor).max(1);
            let spec = ShardSpec::new(rows_per_shard)
                .with_workers(1)
                .with_adaptive()
                .with_low_water(low_water);
            let adaptive = run_workload(&ops, seed, Some(spec));
            prop_assert_eq!(
                &mono, &adaptive,
                "adaptive layout (rows {}, low water {}) diverged from monolithic",
                rows_per_shard, low_water
            );
        }
    }
}

proptest! {
    // Checkpointing hits the filesystem per case; fewer, richer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A checkpoint of an adaptive sharded database restores the *exact*
    /// shard structure — boundaries, capacities, summaries, dirty flags,
    /// dropped-range memory, and lifecycle counters — not merely an
    /// equivalent extent, and the restored database continues decaying
    /// bit-identically.
    #[test]
    fn adaptive_checkpoints_roundtrip_shard_structure(
        ops in proptest::collection::vec(arb_op(), 20..120),
        seed in 0u64..1_000,
    ) {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let policy = ContainerPolicy::new(FungusSpec::Egi(EgiConfig {
            seeds_per_tick: 2,
            seed_bias: SeedBias::AgePow(2.0),
            rot_rate: 0.5,
            spread_width: 2,
        }))
        .with_sharding(ShardSpec::new(6).with_workers(1).with_adaptive().with_low_water(0.5));
        let mut db = Database::new(seed);
        db.create_container("t", schema, policy).unwrap();
        for op in &ops {
            match op {
                Op::Insert(v) => {
                    db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
                }
                Op::Tick => {
                    db.run_for(1);
                }
                Op::Consume(v) => {
                    db.execute(&format!("SELECT * FROM t WHERE v >= {v} CONSUME")).unwrap();
                }
                // Reads don't move shard structure; covered above.
                Op::Recent(_) | Op::FreshCount => {}
            }
        }

        let structure = {
            let c = db.container("t").unwrap();
            let g = c.read();
            g.extent().as_sharded().unwrap().structure()
        };
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fungus-prop-ckpt-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        db.checkpoint(&dir).unwrap();
        let mut back = Database::new(seed);
        back.restore_checkpoint(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        {
            let c = back.container("t").unwrap();
            let g = c.read();
            prop_assert_eq!(
                g.extent().as_sharded().unwrap().structure(),
                structure,
                "restored shard structure differs"
            );
        }
        // Identical decay futures: both copies rot the same tuples.
        db.run_for(5);
        back.run_for(5);
        let survivors = |d: &Database| {
            let out = d.execute("SELECT $id, v FROM t WHERE v >= -50").unwrap();
            out.result.rows
        };
        prop_assert_eq!(survivors(&db), survivors(&back), "post-restore decay diverged");
    }
}
