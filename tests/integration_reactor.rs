//! End-to-end tests for the event-driven connection layer
//! (`ServerConfig::io_model = IoModel::Reactor`).
//!
//! The reactor multiplexes every session over a small fixed thread set,
//! so the properties under test here are exactly the ones the threaded
//! model cannot exhibit:
//!
//! - **Concurrency beyond the worker count.** Two dozen sessions stay
//!   open at once over two workers; the threaded model would hold at
//!   most `workers + backlog` and reject the rest.
//! - **Backpressure with fail-fast health.** When the dispatch queue
//!   saturates, ordinary requests wait (the reactor stops polling their
//!   sockets) while `.health` probes get an immediate typed
//!   `Unavailable` — overload is observable, not a timeout.
//! - **Graceful drain.** Shutdown completes in-flight requests, flushes
//!   their responses, and force-closes idle stragglers; the
//!   `reactor_sessions` gauge returns to zero.
//!
//! Both poller backends (the platform default and the portable
//! `poll(2)` fallback) run the same smoke path.

#![cfg(unix)]

use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::frame::{read_frame, write_frame};
use spacefungus::fungus_server::{
    serve, Client, ErrorCode, IoModel, PollerKind, Request, Response, ServerConfig,
};

fn reactor_db() -> SharedDatabase {
    let db = SharedDatabase::new(Database::new(7));
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) WITH FUNGUS ttl(1000000)",
    )
    .unwrap();
    db
}

fn reactor_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        io_model: IoModel::Reactor,
        ..ServerConfig::default()
    }
}

/// Runs a representative session against the given config and checks
/// the request/response ledger afterwards. Shared by the epoll and
/// poll(2) smoke tests.
fn smoke(config: ServerConfig) {
    let db = reactor_db();
    let handle = serve(db, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client.ping().unwrap();
    for i in 0..20 {
        let resp = client
            .sql(format!("INSERT INTO r VALUES ({i}, {i}.5)"))
            .unwrap();
        assert!(!resp.is_error(), "insert {i} failed: {resp:?}");
    }
    let rows = client.sql("SELECT sensor, reading FROM r").unwrap();
    assert_eq!(rows.row_count(), Some(20), "all inserts visible: {rows:?}");

    // The stats surface is reachable over the reactor and includes the
    // reactor counter block.
    let stats = client.dot(".stats").unwrap();
    assert_eq!(stats.row_count(), Some(30), "full counter table: {stats:?}");

    client.close();
    let report = handle.shutdown().unwrap();
    let m = report.metrics;
    assert_eq!(m.requests, m.responses, "every request answered");
    assert_eq!(m.errors, 0, "clean run");
    assert_eq!(m.reactor_sessions, 0, "gauge back to zero after drain");
    assert!(m.reactor_ready_events > 0, "poller observed readiness");
    assert!(m.reactor_wakeups > 0, "completions woke the reactor");
    assert!(m.reactor_write_hwm > 0, "responses passed the write buffer");
}

#[test]
fn reactor_serves_sql_end_to_end() {
    smoke(reactor_config());
}

#[test]
fn poll_fallback_serves_sql_end_to_end() {
    smoke(ServerConfig {
        poller: PollerKind::Poll,
        reactor_threads: 1,
        ..reactor_config()
    });
}

#[test]
fn reactor_holds_more_sessions_than_workers() {
    const SESSIONS: usize = 24;

    let db = reactor_db();
    let handle = serve(
        db,
        ServerConfig {
            max_sessions: 64,
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Every client connects, proves liveness, then *stays connected*
    // while the rest do the same — far more open sessions than the two
    // pool workers could ever hold one-to-one.
    let all_open = Arc::new(Barrier::new(SESSIONS + 1));
    let all_done = Arc::new(Barrier::new(SESSIONS + 1));
    let mut threads = Vec::new();
    for i in 0..SESSIONS {
        let all_open = Arc::clone(&all_open);
        let all_done = Arc::clone(&all_done);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            all_open.wait();
            let resp = client
                .sql(format!("INSERT INTO r VALUES ({i}, 1.0)"))
                .unwrap();
            assert!(!resp.is_error(), "session {i}: {resp:?}");
            all_done.wait();
            client.close();
        }));
    }

    all_open.wait();
    // All sessions have completed a round trip and none has closed: the
    // gauge must show every one of them registered.
    assert_eq!(handle.metrics().reactor_sessions, SESSIONS as u64);
    all_done.wait();
    for t in threads {
        t.join().unwrap();
    }

    let report = handle.shutdown().unwrap();
    let m = report.metrics;
    assert_eq!(m.accepted, SESSIONS as u64);
    assert_eq!(m.rejected, 0, "capacity was never exceeded");
    assert_eq!(m.requests, m.responses);
    assert_eq!(m.reactor_sessions, 0);
}

#[test]
fn overload_sheds_health_probes_and_loses_nothing() {
    const HOGS: usize = 4;
    const PER_HOG: usize = 32;

    let db = reactor_db();
    // Preload enough rows that each SELECT is a real unit of work for
    // the single worker.
    for chunk in 0..20 {
        let values: Vec<String> = (0..100)
            .map(|i| format!("({}, {}.0)", chunk * 100 + i, i))
            .collect();
        db.execute(&format!("INSERT INTO r VALUES {}", values.join(", ")))
            .unwrap();
    }

    let handle = serve(
        db,
        ServerConfig {
            workers: 1,
            reactor_threads: 1,
            dispatch_depth: 1,
            max_sessions: 64,
            io_model: IoModel::Reactor,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Hog connections pipeline a burst of heavy SELECTs without reading
    // a single response: the depth-1 dispatch queue saturates at once.
    let select = Request::Sql {
        text: "SELECT sensor, reading FROM r".into(),
    }
    .encode()
    .unwrap();
    let mut hogs = Vec::new();
    for _ in 0..HOGS {
        let mut s = TcpStream::connect(addr).unwrap();
        for _ in 0..PER_HOG {
            write_frame(&mut s, &select).unwrap();
        }
        hogs.push(s);
    }

    // A probe hammers `.health` while the storm is queued. The
    // backpressure contract promises a *fast* typed `Unavailable` from
    // the reactor itself whenever the queue is full — never a stall.
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut shed = false;
    while Instant::now() < deadline {
        if let Response::Error { code, message } = probe.dot(".health").unwrap() {
            assert_eq!(code, ErrorCode::Unavailable, "{message}");
            shed = true;
            break;
        }
    }
    assert!(shed, "overloaded server never failed a health probe fast");
    probe.close();

    // Backpressure delayed the hogs — it must not have dropped them.
    // Every pipelined request eventually gets its full response, in
    // order, uncorrupted.
    for (h, mut s) in hogs.into_iter().enumerate() {
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        for i in 0..PER_HOG {
            let payload = read_frame(&mut s)
                .unwrap()
                .unwrap_or_else(|| panic!("hog {h} hit EOF at response {i}"));
            let resp = Response::decode(&payload).unwrap();
            assert!(!resp.is_error(), "hog {h} response {i}: {resp:?}");
            assert_eq!(resp.row_count(), Some(2000), "hog {h} response {i}");
        }
        drop(s);
    }

    let report = handle.shutdown().unwrap();
    let m = report.metrics;
    assert!(m.reactor_stalls >= 1, "the dispatch queue never saturated");
    assert_eq!(m.reactor_sessions, 0);
}

#[test]
fn shutdown_returns_promptly_with_idle_sessions_open() {
    let db = reactor_db();
    let handle = serve(db, reactor_config()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    // The client is left open and idle: the drain must force it closed
    // rather than waiting out a timeout.
    let started = Instant::now();
    let report = handle.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain hung on an idle session"
    );
    assert_eq!(report.metrics.reactor_sessions, 0);
    drop(client);
}
