//! Concurrency: the decay driver, ingest threads, and query threads all
//! hammer one database without deadlock or lost updates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use spacefungus::prelude::*;

fn schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]).unwrap()
}

/// Background decay + concurrent writers + concurrent readers, then a
/// global accounting check: every tuple ever inserted is either live,
/// consumed, or rotted — none lost, none duplicated.
#[test]
fn concurrent_ingest_query_decay_conserves_tuples() {
    let mut db = Database::new(99);
    db.create_container(
        "r",
        schema(),
        ContainerPolicy::new(FungusSpec::Retention { max_age: 40 }),
    )
    .unwrap();
    let db = Arc::new(db);

    let driver = db.spawn_decay_driver(Duration::from_micros(200));
    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Two writer threads.
    for w in 0..2u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let inserted = Arc::clone(&inserted);
        handles.push(thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                db.insert("r", vec![Value::Int(w as i64), Value::float(i as f64)])
                    .unwrap();
                inserted.fetch_add(1, Ordering::Relaxed);
                i += 1;
                if i % 64 == 0 {
                    thread::yield_now();
                }
            }
        }));
    }
    // Two reader threads, one of them consuming.
    for consuming in [false, true] {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let sql = if consuming {
                "SELECT v FROM r WHERE k = 1 AND v < 5 CONSUME"
            } else {
                "SELECT COUNT(*), AVG(v) FROM r WHERE $age <= 10"
            };
            while !stop.load(Ordering::Relaxed) {
                db.execute(sql).unwrap();
                thread::yield_now();
            }
        }));
    }

    thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    driver.stop();

    let container = db.container("r").unwrap();
    let guard = container.read();
    let live = guard.live_count() as u64;
    let metrics = *guard.metrics();
    let total_inserted = inserted.load(Ordering::Relaxed);
    assert_eq!(metrics.inserts, total_inserted, "no lost inserts");
    assert_eq!(
        live + metrics.tuples_rotted + metrics.tuples_consumed,
        total_inserted,
        "conservation: live + rotted + consumed = inserted"
    );
    assert!(total_inserted > 0, "writers made progress");
    assert!(db.now() > Tick(0), "the driver ticked");
}

/// Queries from many threads against a static extent all see consistent
/// answers while decay is paused.
#[test]
fn parallel_readers_agree() {
    let mut db = Database::new(7);
    db.create_container("r", schema(), ContainerPolicy::immortal())
        .unwrap();
    for i in 0..500i64 {
        db.insert("r", vec![Value::Int(i % 10), Value::float(i as f64)])
            .unwrap();
    }
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            let mut answers = Vec::new();
            for _ in 0..50 {
                let out = db.execute("SELECT COUNT(*) FROM r WHERE k = 3").unwrap();
                answers.push(out.result.scalar().unwrap().as_i64().unwrap());
            }
            answers
        }));
    }
    let mut all: Vec<i64> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert!(
        all.iter().all(|&a| a == 50),
        "every read sees the same 50 rows"
    );
}

/// Dropping a container while its decay task might be firing is safe.
#[test]
fn drop_container_races_with_driver() {
    for round in 0..10u64 {
        let mut db = Database::new(round);
        db.create_container(
            "ephemeral",
            schema(),
            ContainerPolicy::new(FungusSpec::Linear { lifetime: 3 }),
        )
        .unwrap();
        db.execute("INSERT INTO ephemeral VALUES (1, 1.0)").unwrap();
        let driver = db.spawn_decay_driver(Duration::from_micros(50));
        thread::sleep(Duration::from_millis(2));
        assert!(db.drop_container("ephemeral"));
        driver.stop();
        assert_eq!(db.container_count(), 0);
    }
}

/// `SUMMARIZE` served from sealed snapshots while writers ingest and the
/// decay driver cooks departing tuples: no deadlock, every read answers,
/// and the sketch hit counter — shared between the live distiller and
/// every published snapshot clone — accounts for *all* reads, locked or
/// snapshot-served. This pins the fix for the counter the snapshot path
/// used to strand on stale clones.
#[test]
fn concurrent_summarize_and_ingest_share_one_hit_counter() {
    let mut db = Database::new(411);
    db.execute_ddl(
        "CREATE CONTAINER clicks (item INT NOT NULL) WITH FUNGUS ttl(8) \
         WITH DISTILL (hot = fading_topk(8, 0.05) ON item)",
    )
    .unwrap();
    let db = Arc::new(db);
    let driver = db.spawn_decay_driver(Duration::from_micros(500));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                db.execute(&format!("INSERT INTO clicks VALUES ({})", i % 17))
                    .unwrap();
                i += 1;
                if i % 32 == 0 {
                    thread::yield_now();
                }
            }
        })
    };

    let mut readers = Vec::new();
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let out = db.execute("SUMMARIZE hot FROM clicks TOP 4").unwrap();
                assert!(
                    out.result.rows.len() <= 4,
                    "TOP 4 returned {} rows",
                    out.result.rows.len()
                );
                reads += 1;
                thread::yield_now();
            }
            reads
        }));
    }

    thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let mut reads = 0u64;
    for r in readers {
        reads += r.join().unwrap();
    }
    driver.stop();

    assert!(reads > 0, "readers made no progress");
    let sketches = db.sketch_telemetry();
    assert_eq!(
        sketches.hits, reads,
        "hit counter lost reads: {} summarizes, {} hits recorded",
        reads, sketches.hits
    );
    assert!(
        sketches.absorbed > 0,
        "decay never cooked a tuple into the sketch"
    );
    let mvcc = db.mvcc_telemetry();
    assert!(
        mvcc.snapshot_reads > 0,
        "no SUMMARIZE was served from a snapshot"
    );
    assert_eq!(
        mvcc.retired, mvcc.reclaimed,
        "snapshot versions leaked at quiescence: {mvcc:?}"
    );
}
