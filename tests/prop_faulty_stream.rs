//! Property tests for the fault-injection layer and the client retry
//! policy — the two halves of the chaos suite's survivability claim.
//!
//! The core theorem, stated over arbitrary frame streams and fault
//! seeds: a faulty transport can **truncate** a conversation but never
//! **corrupt** it. Whatever the schedule does, the frames that come out
//! of the decoder are exactly a prefix of the fault-free decode, and the
//! terminal condition is clean EOF or a typed `Truncated` error — never
//! a garbled frame, never a panic.
//!
//! The retry half pins the backoff schedule's contract: monotone
//! non-decreasing delays, every delay within the cap, the attempt budget
//! exact, and the same seed replaying the same jitter.

use std::time::Duration;

use proptest::prelude::*;

use spacefungus::fungus_server::frame::encode_frame;
use spacefungus::fungus_server::{
    drain_frames, Client, ClientError, FaultPlan, Faulty, FrameError, RetryPolicy,
};

/// Read-side fault pipe: the payloads as one encoded byte stream, served
/// through a [`Faulty`] reader under the given plan and connection id.
fn faulty_decode(
    payloads: &[Vec<u8>],
    plan: &FaultPlan,
    conn: u64,
) -> (Vec<Vec<u8>>, Option<FrameError>) {
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(&encode_frame(p).unwrap());
    }
    let mut faulty = Faulty::new(stream.as_slice(), plan.schedule_for(conn));
    drain_frames(&mut faulty)
}

proptest! {
    /// Under any fault schedule, decoding through the faulty stream
    /// yields a prefix of the original frame sequence, and the terminal
    /// condition is clean (None) or a typed Truncated error. Oversized
    /// is impossible for well-formed input; garbled frames would show up
    /// as a non-prefix mismatch.
    #[test]
    fn faulty_streams_truncate_but_never_corrupt(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200usize),
            1..8usize,
        ),
        seed in any::<u64>(),
        conn in 1u64..64,
        disconnect in 0.0f64..0.3,
        transient in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::new(seed)
            .with_disconnects(disconnect)
            .with_transients(transient);
        let (frames, err) = faulty_decode(&payloads, &plan, conn);

        prop_assert!(frames.len() <= payloads.len());
        for (got, want) in frames.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want, "frame garbled in transit");
        }
        match err {
            None => {}
            Some(FrameError::Truncated { have, need }) => prop_assert!(have < need),
            Some(other) => prop_assert!(false, "unexpected terminal error {:?}", other),
        }
    }

    /// The same plan and connection id replay the *exact* same decode —
    /// frames and terminal error both — while a different seed is free to
    /// diverge. This is what makes a chaos failure reproducible from its
    /// seed alone.
    #[test]
    fn fault_schedules_replay_deterministically(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64usize),
            1..5usize,
        ),
        seed in any::<u64>(),
        conn in 1u64..16,
    ) {
        let plan = FaultPlan::new(seed)
            .with_disconnects(0.1)
            .with_transients(0.2);
        let first = faulty_decode(&payloads, &plan, conn);
        let second = faulty_decode(&payloads, &plan, conn);
        prop_assert_eq!(first, second);
    }

    /// Torn writes obey the prefix property at the byte level: whatever
    /// lands in the inner stream is a strict prefix of what was sent.
    #[test]
    fn torn_writes_emit_strict_prefixes(
        payload in proptest::collection::vec(any::<u8>(), 1..300usize),
        seed in any::<u64>(),
    ) {
        let frame = encode_frame(&payload).unwrap();
        let plan = FaultPlan::new(seed).with_torn_writes(1.0);
        let mut out = Vec::new();
        {
            let mut w = Faulty::new(&mut out, plan.schedule_for(1));
            let err = std::io::Write::write_all(&mut w, &frame).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
            prop_assert!(w.is_dead());
        }
        prop_assert!(out.len() < frame.len());
        prop_assert_eq!(&out[..], &frame[..out.len()]);
    }

    /// Purely transient fault plans (WouldBlock/Interrupted/delays, no
    /// stream kills) are invisible to a retrying reader: every frame
    /// arrives intact.
    #[test]
    fn transient_only_plans_lose_nothing(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128usize),
            1..6usize,
        ),
        seed in any::<u64>(),
        transient in 0.0f64..0.9,
    ) {
        let plan = FaultPlan::new(seed)
            .with_transients(transient)
            .with_read_delays(0.05, Duration::from_micros(50));
        let (frames, err) = faulty_decode(&payloads, &plan, 5);
        prop_assert_eq!(frames, payloads);
        prop_assert_eq!(err, None);
    }

    /// Backoff schedules are monotone non-decreasing, capped, exactly
    /// `max_attempts - 1` long, and reproducible from their seed.
    #[test]
    fn backoff_schedules_are_monotone_capped_and_seeded(
        seed in any::<u64>(),
        attempts in 1u32..12,
        base_ms in 0u64..20,
        cap_ms in 1u64..200,
    ) {
        let policy = RetryPolicy::new(seed)
            .with_max_attempts(attempts)
            .with_base_delay(Duration::from_millis(base_ms))
            .with_max_delay(Duration::from_millis(cap_ms));
        let delays = policy.backoff_delays();

        prop_assert_eq!(delays.len(), attempts.saturating_sub(1) as usize);
        for pair in delays.windows(2) {
            prop_assert!(pair[0] <= pair[1], "delays not monotone: {:?}", delays);
        }
        let cap = Duration::from_millis(cap_ms);
        prop_assert!(delays.iter().all(|d| *d <= cap), "delay above cap: {:?}", delays);
        prop_assert_eq!(delays, policy.backoff_delays(), "same seed must replay");
    }

    /// Jitter stays within one base-delay of the deterministic
    /// exponential floor (before capping), so backoff timing is
    /// predictable to within the documented bound.
    #[test]
    fn jitter_is_bounded_by_one_base_delay(
        seed in any::<u64>(),
        base_ms in 1u64..10,
    ) {
        let base = Duration::from_millis(base_ms);
        let policy = RetryPolicy::new(seed)
            .with_max_attempts(6)
            .with_base_delay(base)
            .with_max_delay(Duration::from_secs(3600)); // cap out of the way
        for (i, d) in policy.backoff_delays().into_iter().enumerate() {
            let floor = base * 2u32.pow(i as u32);
            prop_assert!(d >= floor, "delay {i} below exponential floor");
            prop_assert!(d < floor + base, "delay {i} jittered past one base");
        }
    }
}

/// The attempt budget is exact: against an address that accepts and
/// immediately hangs up, an idempotent request fails with
/// `RetriesExhausted` whose attempt count equals the policy budget, and
/// the client's retry counter shows budget − 1 resends.
#[test]
fn retry_budget_is_respected_against_a_hostile_server() {
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept and instantly drop every connection. Deliberately not
    // joined: the thread parks in accept() once the client gives up.
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            drop(stream);
        }
    });

    let budget = 5u32;
    let policy = RetryPolicy::new(3)
        .with_max_attempts(budget)
        .with_base_delay(Duration::from_millis(1))
        .with_max_delay(Duration::from_millis(4));
    let mut client = Client::connect_with_retry(addr, policy).unwrap();
    match client.dot(".health") {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, budget, "attempt budget not exact");
            assert!(last.is_transport(), "final error not transport: {last}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(client.stats().retries, u64::from(budget) - 1);
}

/// Non-idempotent requests never enter the retry loop: one transport
/// error, zero resends, and the error surfaces unchanged.
#[test]
fn consuming_requests_are_never_replayed() {
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            drop(stream);
        }
    });

    let policy = RetryPolicy::new(9)
        .with_max_attempts(6)
        .with_base_delay(Duration::from_millis(1));
    let mut client = Client::connect_with_retry(addr, policy).unwrap();
    let err = client
        .sql("SELECT * FROM r CONSUME")
        .expect_err("hostile server must fail the request");
    assert!(
        !matches!(err, ClientError::RetriesExhausted { .. }),
        "consuming read went through the retry loop: {err:?}"
    );
    assert!(err.is_transport());
    assert_eq!(client.stats().retries, 0, "non-idempotent op was resent");
    assert_eq!(client.stats().not_retried, 1);
}
