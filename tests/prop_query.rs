//! Property tests over the query layer: parser round-trips, pruning
//! soundness, consume-law algebra, and aggregate consistency.

use proptest::prelude::*;

use spacefungus::fungus_query::{execute_statement, parse_expr, CmpOp, Expr};
use spacefungus::fungus_storage::TableStore;
use spacefungus::prelude::*;

// ------------------------------------------------------------ strategies --

/// Expressions over columns a (Int), b (Float), s (Str), with literals
/// chosen so every expression is well-typed for evaluation.
fn arb_num_operand() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::col("a")),
        Just(Expr::col("b")),
        (-100i64..100).prop_map(Expr::lit),
        (-100.0f64..100.0).prop_map(Expr::lit),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let leaf =
        (arb_num_operand(), arb_num_operand(), arb_cmp()).prop_map(|(l, r, op)| l.cmp(op, r));
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn test_table(rows: &[(i64, f64)]) -> TableStore {
    let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]).unwrap();
    let mut t = TableStore::new(
        schema,
        StorageConfig {
            segment_capacity: 8,
            ..Default::default()
        },
    )
    .unwrap();
    for (i, (a, b)) in rows.iter().enumerate() {
        t.insert(vec![Value::Int(*a), Value::float(*b)], Tick(i as u64))
            .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics, whatever bytes it is fed — it either
    /// produces a statement or a clean `ParseError` with an offset.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,60}") {
        let _ = spacefungus::fungus_query::parse_statement(&input);
        let _ = parse_expr(&input);
    }

    /// SQL-looking garbage (keyword soup) also parses or fails cleanly,
    /// and parse errors carry in-bounds offsets.
    #[test]
    fn parser_fails_cleanly_on_keyword_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "SELECT", "FROM", "WHERE", "CONSUME", "AND", "OR", "NOT",
                "GROUP", "BY", "ORDER", "LIMIT", "IN", "BETWEEN", "LIKE",
                "IS", "NULL", "COUNT", "(", ")", ",", "*", "=", "<", "a",
                "r", "1", "0.5", "'s'", "$freshness", "$age",
            ]),
            0..12,
        )
    ) {
        let input = words.join(" ");
        if let Err(FungusError::ParseError { offset, .. }) =
            spacefungus::fungus_query::parse_statement(&input)
        {
            prop_assert!(offset <= input.len(), "offset {offset} beyond input");
        }
    }

    /// Display → parse is the identity on expression trees.
    #[test]
    fn parser_roundtrips_pretty_printed_expressions(e in arb_predicate()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(reparsed, e);
    }

    /// Zone-map pruning never changes an answer: a full SELECT with a
    /// prunable predicate returns exactly the brute-force filter.
    #[test]
    fn pruning_is_sound(
        rows in proptest::collection::vec((-50i64..50, -50.0f64..50.0), 0..100),
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        let mut table = test_table(&rows);
        let hi = lo + width;
        let sql = format!("SELECT a, b FROM t WHERE a BETWEEN {lo} AND {hi}");
        let result = execute_statement(&sql, &mut table, Tick(100)).unwrap();
        let expected: Vec<(i64, f64)> = rows
            .iter()
            .copied()
            .filter(|(a, _)| *a >= lo && *a <= hi)
            .collect();
        prop_assert_eq!(result.len(), expected.len());
        for (row, (a, b)) in result.rows.iter().zip(expected) {
            prop_assert_eq!(&row[0], &Value::Int(a));
            prop_assert_eq!(row[1].sql_eq(&Value::float(b)), Some(true));
        }
        // The zone-maps-off ablation gives identical answers (just no
        // segment skipping).
        let schema =
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]).unwrap();
        let mut unzoned = TableStore::new(
            schema,
            StorageConfig { segment_capacity: 8, zone_maps: false, ..Default::default() },
        )
        .unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            unzoned.insert(vec![Value::Int(*a), Value::float(*b)], Tick(i as u64)).unwrap();
        }
        let unpruned = execute_statement(&sql, &mut unzoned, Tick(100)).unwrap();
        prop_assert_eq!(&unpruned.rows, &result.rows);
        prop_assert_eq!(unpruned.pruned_segments, 0, "nothing to prune without zones");
    }

    /// Law 2 algebra: after `CONSUME`, extent = old extent − answer set,
    /// and nothing matching the predicate remains.
    #[test]
    fn consume_law_partitions_the_extent(
        rows in proptest::collection::vec((-20i64..20, -50.0f64..50.0), 0..60),
        pivot in -25i64..25,
    ) {
        let mut table = test_table(&rows);
        let before = table.live_count();
        let sql = format!("SELECT a FROM t WHERE a >= {pivot} CONSUME");
        let result = execute_statement(&sql, &mut table, Tick(100)).unwrap();
        prop_assert_eq!(result.consumed.len(), result.len());
        prop_assert_eq!(table.live_count(), before - result.len());
        // σ_P(R) is gone.
        let check = format!("SELECT COUNT(*) FROM t WHERE a >= {pivot}");
        let rest = execute_statement(&check, &mut table, Tick(100)).unwrap();
        prop_assert_eq!(rest.scalar().unwrap(), &Value::Int(0));
        // And the complement survives intact.
        let complement = rows.iter().filter(|(a, _)| *a < pivot).count();
        prop_assert_eq!(table.live_count(), complement);
    }

    /// Aggregates agree with directly computed values for any data.
    #[test]
    fn aggregates_match_direct_computation(
        rows in proptest::collection::vec((-20i64..20, -50.0f64..50.0), 1..80),
    ) {
        let mut table = test_table(&rows);
        let result = execute_statement(
            "SELECT COUNT(*), SUM(b), MIN(a), MAX(a), AVG(b) FROM t",
            &mut table,
            Tick(0),
        )
        .unwrap();
        let row = &result.rows[0];
        let n = rows.len() as i64;
        let sum: f64 = rows.iter().map(|(_, b)| *b).sum();
        let min = rows.iter().map(|(a, _)| *a).min().unwrap();
        let max = rows.iter().map(|(a, _)| *a).max().unwrap();
        prop_assert_eq!(&row[0], &Value::Int(n));
        prop_assert!((row[1].as_f64().unwrap() - sum).abs() < 1e-6);
        prop_assert_eq!(&row[2], &Value::Int(min));
        prop_assert_eq!(&row[3], &Value::Int(max));
        prop_assert!((row[4].as_f64().unwrap() - sum / n as f64).abs() < 1e-6);
    }

    /// GROUP BY partitions: per-group COUNT(*)s sum to the total count and
    /// every group key is distinct.
    #[test]
    fn group_by_partitions_rows(
        rows in proptest::collection::vec((-5i64..5, -50.0f64..50.0), 0..80),
    ) {
        let mut table = test_table(&rows);
        let result = execute_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            &mut table,
            Tick(0),
        )
        .unwrap();
        let total: i64 = result.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
        let mut keys: Vec<&Value> = result.rows.iter().map(|r| &r[0]).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "group keys are unique");
    }

    /// ORDER BY + LIMIT returns the true top-k.
    #[test]
    fn order_by_limit_is_top_k(
        rows in proptest::collection::vec((-100i64..100, -50.0f64..50.0), 0..60),
        k in 0usize..10,
    ) {
        let mut table = test_table(&rows);
        let sql = format!("SELECT a FROM t ORDER BY a DESC LIMIT {k}");
        let result = execute_statement(&sql, &mut table, Tick(0)).unwrap();
        let mut expected: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expected.sort_unstable_by(|x, y| y.cmp(x));
        expected.truncate(k);
        let got: Vec<i64> = result.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    /// A secondary index never changes an answer: identical tables with
    /// and without an index on `a` agree on every equality/IN query, and
    /// consume-through-index removes the same tuples.
    #[test]
    fn index_scan_is_transparent(
        rows in proptest::collection::vec((-10i64..10, -50.0f64..50.0), 0..60),
        probe in -12i64..12,
        consume in proptest::bool::ANY,
    ) {
        let mut indexed = test_table(&rows);
        let mut plain = test_table(&rows);
        indexed.create_index("a").unwrap();
        let sql = format!(
            "SELECT a, b FROM t WHERE a = {probe}{}",
            if consume { " CONSUME" } else { "" }
        );
        let r1 = execute_statement(&sql, &mut indexed, Tick(5)).unwrap();
        let r2 = execute_statement(&sql, &mut plain, Tick(5)).unwrap();
        prop_assert_eq!(&r1.rows, &r2.rows);
        prop_assert_eq!(r1.used_index, !rows.is_empty() || r1.used_index);
        prop_assert_eq!(indexed.live_count(), plain.live_count());
        // After consuming, both stores agree the probe rows are gone.
        if consume {
            let count = format!("SELECT COUNT(*) FROM t WHERE a = {probe}");
            let c1 = execute_statement(&count, &mut indexed, Tick(5)).unwrap();
            prop_assert_eq!(c1.scalar().unwrap(), &Value::Int(0));
        }
    }

    /// An ordered index never changes an answer on range queries.
    #[test]
    fn ordered_index_is_transparent(
        rows in proptest::collection::vec((-10i64..10, -50.0f64..50.0), 0..60),
        lo in -12i64..12,
        width in 0i64..10,
    ) {
        let mut indexed = test_table(&rows);
        let mut plain = test_table(&rows);
        indexed.create_ord_index("a").unwrap();
        let hi = lo + width;
        for sql in [
            format!("SELECT a, b FROM t WHERE a BETWEEN {lo} AND {hi}"),
            format!("SELECT a FROM t WHERE a > {lo}"),
            format!("SELECT a FROM t WHERE a <= {hi}"),
            format!("SELECT COUNT(*) FROM t WHERE a >= {lo} AND a < {hi}"),
        ] {
            let r1 = execute_statement(&sql, &mut indexed, Tick(5)).unwrap();
            let r2 = execute_statement(&sql, &mut plain, Tick(5)).unwrap();
            prop_assert_eq!(&r1.rows, &r2.rows, "{}", sql);
            prop_assert!(r1.used_index || rows.is_empty(), "{}", sql);
        }
    }

    /// Arbitrary well-typed predicates evaluate identically through the
    /// engine and through direct brute-force evaluation.
    #[test]
    fn engine_matches_brute_force_for_random_predicates(
        rows in proptest::collection::vec((-20i64..20, -20.0f64..20.0), 0..40),
        pred in arb_predicate(),
    ) {
        let mut table = test_table(&rows);
        let schema = table.schema().clone();
        let sql = format!("SELECT a, b FROM t WHERE {pred}");
        let result = execute_statement(&sql, &mut table, Tick(1000)).unwrap();
        // Brute force over the same tuples.
        let mut expected = 0usize;
        for t in table.iter_live() {
            if pred.eval_predicate(t, &schema, Tick(1000)).unwrap() {
                expected += 1;
            }
        }
        prop_assert_eq!(result.len(), expected);
    }
}
