//! The chaos suite: the full server stack under the seeded fault plan.
//!
//! Eight fault-aware [`ClientMix`] clients drive a server whose every
//! connection runs through [`FaultPlan::chaos`] — 5% torn writes, 2%
//! mid-frame disconnects, transient I/O errors, read delays, and a
//! scheduled worker panic — while a 1 ms wall-clock decay driver ticks
//! underneath. The invariants checked are the ones the paper's Law 1
//! stakes its claim on:
//!
//! * **No protocol corruption.** A fault may truncate a conversation,
//!   never garble it: no client ever sees a malformed response frame.
//! * **Retry-safe requests eventually succeed.** Probes and
//!   non-consuming reads ride the retry policy to completion; only
//!   non-idempotent writes may surface transport errors (the ambiguity
//!   guard working as designed).
//! * **Zero lost committed writes.** Every `INSERT` the server
//!   acknowledged is present afterwards; the only slack is writes that
//!   died *in transit* (the server may or may not have executed them).
//! * **Decay never stops.** The driver's tick counter keeps advancing
//!   through worker panics and connection storms.
//! * **Panicked workers respawn.** The supervisor replaces every worker
//!   the fault plan kills.
//!
//! The fault seed comes from `CHAOS_SEED` (CI runs a small matrix of
//! fixed seeds); any seed must uphold every invariant.

use std::sync::Once;
use std::time::Duration;

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::{
    serve, Client, ClientError, ErrorCode, FaultPlan, IoModel, Response, RetryPolicy, ServerConfig,
};
use spacefungus::fungus_types::Tick;
use spacefungus::fungus_workload::{ClientMix, ClientOp};

/// The fault seed under test. CI sets `CHAOS_SEED` to sweep a matrix;
/// locally the default keeps runs reproducible.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF06)
}

/// The fault plan panics workers on purpose; keep those expected panics
/// out of the test log while letting real ones print.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected worker panic") {
                default_hook(info);
            }
        }));
    });
}

/// Rows a statement would append, for committed-write accounting. Each
/// generated `INSERT` row is one parenthesised tuple.
fn insert_rows(op: &ClientOp) -> u64 {
    let text = op.text();
    if text.starts_with("INSERT") {
        text.matches('(').count() as u64
    } else {
        0
    }
}

/// The chaos scenario, parameterised over the extent layout and the
/// server's I/O model: `None` runs the monolithic store, `Some(clause)`
/// appends the given DDL sharding clause (`SHARDS n` / `WITH SHARDING
/// (…)`) to the `CREATE CONTAINER`. Every invariant in the module doc
/// must hold for every layout on both connection layers.
fn run_chaos_plan(sharding_clause: Option<&str>, io: IoModel) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 200;

    silence_injected_panics();
    let seed = chaos_seed();

    let db = SharedDatabase::new(Database::new(seed));
    // A TTL far beyond the test horizon: nothing rots mid-run, so the
    // committed-write ledger can be checked exactly against the extent.
    db.execute_ddl(&format!(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(1000000) {}",
        sharding_clause.unwrap_or_default()
    ))
    .unwrap();

    let config = ServerConfig {
        workers: CLIENTS,
        io_model: io,
        tick_period: Some(Duration::from_millis(1)),
        fault_plan: Some(FaultPlan::chaos(seed)),
        ..ServerConfig::default()
    };
    let handle = serve(db, config).unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(
                seed ^ ((c as u64 + 1) * 7919),
                "r",
                "sensor",
                "reading",
                32,
                16,
            )
            .with_health_every(37)
            .with_fault_aware(true);
            let policy = RetryPolicy::new(seed.wrapping_add(c as u64))
                .with_max_attempts(8)
                .with_base_delay(Duration::from_millis(1))
                .with_max_delay(Duration::from_millis(16));
            let mut client = Client::connect_with_retry(addr, policy).unwrap();

            let mut committed = 0u64; // rows in acknowledged INSERTs
            let mut ambiguous = 0u64; // rows in INSERTs that died in transit
            for i in 0..PER_CLIENT {
                let op = mix.next_op(Tick(i + 1));
                let retry_safe = op.is_retry_safe();
                let rows = insert_rows(&op);
                let result = match &op {
                    ClientOp::Sql(sql) => client.sql(sql.clone()),
                    ClientOp::Dot(line) => client.dot(line.clone()),
                };
                match result {
                    Ok(resp) => {
                        // Faults may truncate the conversation, never
                        // garble it: a Protocol error on either side
                        // would mean corrupted bytes got through.
                        assert!(
                            !matches!(
                                resp,
                                Response::Error {
                                    code: ErrorCode::Protocol,
                                    ..
                                }
                            ),
                            "protocol corruption surfaced: {resp:?}"
                        );
                        assert!(!resp.is_error(), "statement failed under chaos: {resp:?}");
                        committed += rows;
                    }
                    Err(ClientError::Protocol(msg)) => {
                        panic!("client decoded a garbled response: {msg}")
                    }
                    Err(err) => {
                        assert!(
                            !retry_safe,
                            "retry-safe op gave up (seed {seed}, client {c}, op {i}): {err}"
                        );
                        ambiguous += rows;
                    }
                }
            }
            let stats = client.stats();
            client.close();
            (committed, ambiguous, stats)
        }));
    }

    let mut committed = 0u64;
    let mut ambiguous = 0u64;
    let mut retries = 0u64;
    let mut transport_errors = 0u64;
    for t in threads {
        let (c, a, stats) = t.join().expect("client thread died");
        committed += c;
        ambiguous += a;
        retries += stats.retries;
        transport_errors += stats.transport_errors;
    }
    assert!(
        transport_errors > 0,
        "chaos run saw no faults at all (seed {seed}) — injection not wired?"
    );
    assert!(retries > 0, "retry layer never engaged (seed {seed})");

    // Decay stayed on schedule: the driver is still ticking after the
    // storm. This is a liveness check, not a rate check — a debug-mode
    // sweep over a storm-sized extent can take many milliseconds per
    // tick on a loaded single-core host, so the driver gets a bounded
    // window to accrue its ticks rather than one fixed 50 ms sample.
    let ticks_before = handle.driver_ticks();
    assert!(ticks_before > 0, "driver never ticked during the run");
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut advanced = 0;
    while std::time::Instant::now() < deadline {
        advanced = handle.driver_ticks() - ticks_before;
        if advanced >= 5 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        advanced >= 5,
        "driver nearly stalled after chaos: {advanced} ticks in 2s"
    );

    // Zero lost committed writes: everything acknowledged is present;
    // the only slack is writes whose fate the client never learned.
    let live = handle.db().live_count("r") as u64;
    assert!(
        live >= committed,
        "lost committed writes: {committed} acknowledged, {live} live (seed {seed})"
    );
    assert!(
        live <= committed + ambiguous,
        "phantom rows: {live} live > {committed} committed + {ambiguous} ambiguous"
    );

    if let Some(clause) = sharding_clause {
        // The storm really ran against a sharded extent, not a layout
        // that silently fell back to monolithic.
        let guard = handle.db().write();
        let c = guard.container("r").expect("container survived chaos");
        let shards = c.read().shard_count();
        assert!(
            shards >= 4,
            "sharded chaos run ended with {shards} shards (`{clause}`, live {live})"
        );
    }

    let report = handle.shutdown().expect("graceful shutdown after chaos");
    let m = report.metrics;
    assert!(m.faults_injected > 0, "server injected no stream faults");
    assert!(
        m.worker_panics >= 1,
        "the scheduled worker panic never fired (seed {seed})"
    );
    assert_eq!(
        m.worker_panics, m.workers_respawned,
        "supervisor lost workers: {} panics, {} respawns",
        m.worker_panics, m.workers_respawned
    );
}

#[test]
fn chaos_clients_survive_the_fault_plan() {
    run_chaos_plan(None, IoModel::Threaded);
}

/// The same storm over the event-driven connection layer: sessions as
/// state machines on the reactor, requests dispatched to the shared
/// worker pool. Faulty wrappers, doomed-worker panics, and the
/// committed-write ledger must all behave identically.
#[cfg(unix)]
#[test]
fn chaos_clients_survive_the_fault_plan_on_the_reactor() {
    run_chaos_plan(None, IoModel::Reactor);
}

/// The sharded storm on the reactor as well: split/merge churn under
/// the decay driver while the reactor multiplexes faulted sockets.
#[cfg(unix)]
#[test]
fn chaos_survives_on_a_sharded_extent_on_the_reactor() {
    run_chaos_plan(Some("SHARDS 64"), IoModel::Reactor);
}

/// The same storm against a time-range-sharded extent: the committed-write
/// ledger, decay schedule, and supervisor invariants must not care how the
/// extent is laid out. 64-row shards put the run well past four shards;
/// the layout comes from the DDL clause, same as any user container.
#[test]
fn chaos_survives_on_a_sharded_extent() {
    run_chaos_plan(Some("SHARDS 64"), IoModel::Threaded);
}

/// The storm against an *adaptive* sharded extent (splits and merges
/// armed), with a checkpoint taken mid-run — while the decay driver is
/// ticking and a second client wave is about to hit — and restored into a
/// fresh database afterwards. Invariants: the checkpoint captures the
/// exact shard structure of that instant, no committed write from before
/// the checkpoint is missing from the restore, and the serving database
/// never loses a committed write across the whole run.
#[test]
fn adaptive_chaos_checkpoint_loses_no_committed_writes() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 150;

    silence_injected_panics();
    let seed = chaos_seed();

    let db = SharedDatabase::new(Database::new(seed));
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(1000000) \
         WITH SHARDING (rows_per_shard = 64, adaptive = on, low_water = 0.5)",
    )
    .unwrap();
    let handle = serve(
        db,
        ServerConfig {
            workers: CLIENTS,
            tick_period: Some(Duration::from_millis(1)),
            fault_plan: Some(FaultPlan::chaos(seed)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Wave one: chaos clients bank a committed-write ledger.
    let (committed1, ambiguous1) = storm(addr, seed, CLIENTS, PER_CLIENT, 0x5747_0001);

    // Quiesce: wait for a couple of full decay sweeps after the last wave-
    // one insert, so any tail split the wave's pressure armed has fired and
    // the shard layout is at a fixed point (with the TTL far beyond the
    // horizon, a sweep over an insert-free database cannot split, merge, or
    // drop anything further).
    let settled = handle.driver_ticks() + 3;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.driver_ticks() < settled {
        assert!(
            std::time::Instant::now() < deadline,
            "decay driver stalled while quiescing before the checkpoint"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Mid-run checkpoint: the 1 ms decay driver keeps ticking through the
    // container locks the whole time, so per-tuple freshness (and with it
    // the envelope summaries and the sweep-relative insert gauge) drifts
    // between any two observations. What *cannot* move between the waves
    // is the quiesced time structure — boundaries, seals, live counts,
    // lifecycle counters. That skeleton is what we pin across the restore;
    // the bit-exact envelope round-trip is asserted under a frozen clock
    // in the shard and core suites.
    let dir = std::env::temp_dir().join(format!("fungus-chaos-ckpt-{}", std::process::id()));
    let skeleton_at_checkpoint = {
        let guard = handle.db().write();
        guard.checkpoint(&dir).expect("mid-run checkpoint");
        let c = guard.container("r").expect("container alive");
        let g = c.read();
        let ext = g.extent().as_sharded().expect("adaptive extent is sharded");
        assert!(
            ext.shard_count() >= 2,
            "wave one left too few shards to make the round-trip interesting"
        );
        skeleton(&ext.structure())
    };

    // Wave two: the storm continues against the live database.
    let (committed2, ambiguous2) = storm(addr, seed, CLIENTS, PER_CLIENT, 0x5747_0002);

    // The serving database lost nothing across the whole run.
    let live = handle.db().live_count("r") as u64;
    let committed = committed1 + committed2;
    let ambiguous = ambiguous1 + ambiguous2;
    assert!(
        live >= committed,
        "lost committed writes: {committed} acknowledged, {live} live (seed {seed})"
    );
    assert!(
        live <= committed + ambiguous,
        "phantom rows: {live} live > {committed} committed + {ambiguous} ambiguous"
    );
    handle.shutdown().expect("graceful shutdown after chaos");

    // The restore rebuilds the checkpoint instant exactly: same shard
    // structure bit for bit, and every write committed before the
    // checkpoint is present.
    let mut restored = Database::new(seed);
    restored.restore_checkpoint(&dir).expect("restore");
    std::fs::remove_dir_all(&dir).ok();
    let c = restored.container("r").expect("restored container");
    {
        let g = c.read();
        let ext = g.extent().as_sharded().expect("restored extent is sharded");
        assert_eq!(
            skeleton(&ext.structure()),
            skeleton_at_checkpoint,
            "restored shard structure differs from the checkpoint instant"
        );
    }
    let restored_live = c.read().live_count() as u64;
    assert!(
        restored_live >= committed1,
        "restore lost committed writes: {committed1} acknowledged before the \
         checkpoint, {restored_live} restored (seed {seed})"
    );
    assert!(
        restored_live <= committed1 + ambiguous1,
        "restore has phantom rows: {restored_live} > {committed1} + {ambiguous1}"
    );
}

/// The decay-invariant part of a shard structure: boundaries, capacities,
/// seals, live counts, tick ranges, dropped-range memory, and lifecycle
/// counters — everything except the freshness envelopes, dirty flags,
/// and the sweep-relative insert gauge, which the live decay driver
/// keeps moving under the test.
#[allow(clippy::type_complexity)]
fn skeleton(
    s: &spacefungus::fungus_shard::ShardStructure,
) -> (
    u64,
    Vec<(u64, u64, u64, bool, usize, u64, u64)>,
    Vec<(u64, u64, bool)>,
    [u64; 3],
) {
    (
        s.next_id,
        s.shards
            .iter()
            .map(|r| {
                (
                    r.base, r.end, r.capacity, r.sealed, r.live, r.min_tick, r.max_tick,
                )
            })
            .collect(),
        s.dropped.clone(),
        [s.shards_dropped, s.shards_split, s.shards_merged],
    )
}

/// One wave of fault-aware chaos clients; returns the committed and
/// ambiguous row tallies (acknowledged inserts vs. inserts that died in
/// transit). `salt` decorrelates the waves' workloads and retry jitter.
fn storm(
    addr: std::net::SocketAddr,
    seed: u64,
    clients: usize,
    per_client: u64,
    salt: u64,
) -> (u64, u64) {
    let mut threads = Vec::new();
    for c in 0..clients {
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(
                seed ^ salt ^ ((c as u64 + 1) * 7919),
                "r",
                "sensor",
                "reading",
                32,
                16,
            )
            .with_health_every(37)
            .with_fault_aware(true);
            let policy = RetryPolicy::new(seed.wrapping_add(salt).wrapping_add(c as u64))
                .with_max_attempts(8)
                .with_base_delay(Duration::from_millis(1))
                .with_max_delay(Duration::from_millis(16));
            let mut client = Client::connect_with_retry(addr, policy).unwrap();
            let mut committed = 0u64;
            let mut ambiguous = 0u64;
            for i in 0..per_client {
                let op = mix.next_op(Tick(i + 1));
                let retry_safe = op.is_retry_safe();
                let rows = insert_rows(&op);
                let result = match &op {
                    ClientOp::Sql(sql) => client.sql(sql.clone()),
                    ClientOp::Dot(line) => client.dot(line.clone()),
                };
                match result {
                    Ok(resp) => {
                        assert!(!resp.is_error(), "statement failed under chaos: {resp:?}");
                        committed += rows;
                    }
                    Err(ClientError::Protocol(msg)) => {
                        panic!("client decoded a garbled response: {msg}")
                    }
                    Err(err) => {
                        assert!(!retry_safe, "retry-safe op gave up: {err}");
                        ambiguous += rows;
                    }
                }
            }
            client.close();
            (committed, ambiguous)
        }));
    }
    let mut committed = 0u64;
    let mut ambiguous = 0u64;
    for t in threads {
        let (c, a) = t.join().expect("storm client died");
        committed += c;
        ambiguous += a;
    }
    (committed, ambiguous)
}

/// MVCC chaos: snapshot readers race batch writers and a 1 ms decay
/// driver, and must never observe a torn epoch or a half-applied decay
/// sweep. The probe is batch atomicity: every `INSERT` statement writes
/// `K` rows tagged with one batch id at one tick, so a single statement
/// commits them under one container lock and one snapshot publication —
/// and the TTL fungus rots the whole batch in one sweep. A reader that
/// ever counts a batch at anything other than 0 or `K` rows caught a
/// snapshot published mid-mutation. A second, immortal container checks
/// the other half of the contract: its per-reader counts are monotone
/// (epochs never go backwards) and, at the end, exactly equal to the
/// committed ledger — zero lost committed writes.
#[test]
fn mvcc_snapshots_never_expose_torn_batches() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    const K: u64 = 7;
    const BATCHES: u64 = 200;
    const READERS: usize = 3;

    let seed = chaos_seed();
    let db = SharedDatabase::new(Database::new(seed));
    // The churning container: short TTL over 32-row shards, so decay
    // sweeps keep killing whole batches while the writer appends.
    db.execute_ddl("CREATE CONTAINER r (batch INT NOT NULL, x INT) WITH FUNGUS ttl(20) SHARDS 32")
        .unwrap();
    // The ledger container: nothing rots, so the final count is exact.
    db.execute_ddl("CREATE CONTAINER keep (batch INT NOT NULL, x INT) WITH FUNGUS ttl(1000000)")
        .unwrap();
    let driver = db.spawn_decay_driver(Duration::from_millis(1));

    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0)); // batches fully committed
    let writer = {
        let db = db.clone();
        let written = Arc::clone(&written);
        std::thread::spawn(move || {
            for b in 0..BATCHES {
                let rows: Vec<String> = (0..K).map(|x| format!("({b}, {x})")).collect();
                let values = rows.join(", ");
                db.execute(&format!("INSERT INTO r VALUES {values}"))
                    .unwrap();
                db.execute(&format!("INSERT INTO keep VALUES {values}"))
                    .unwrap();
                written.store(b + 1, Ordering::Release);
            }
        })
    };

    let mut readers = Vec::new();
    for rd in 0..READERS {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let written = Arc::clone(&written);
        readers.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut probes = 0u64;
            let mut last_keep = 0i64;
            let mut lcg = seed ^ (rd as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            while !stop.load(Ordering::Relaxed) {
                let committed = written.load(Ordering::Acquire);
                if committed == 0 {
                    std::thread::yield_now();
                    continue;
                }
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (lcg >> 33) % committed;
                let n = db
                    .execute(&format!("SELECT COUNT(*) FROM r WHERE batch = {b}"))
                    .map_err(|e| e.to_string())?
                    .result
                    .scalar()
                    .ok()
                    .and_then(|v| v.as_i64())
                    .ok_or("COUNT returned no scalar")?;
                if n != 0 && n != K as i64 {
                    return Err(format!(
                        "torn batch {b}: snapshot saw {n} of {K} rows (seed {seed})"
                    ));
                }
                let keep = db
                    .execute("SELECT COUNT(*) FROM keep WHERE batch >= 0")
                    .map_err(|e| e.to_string())?
                    .result
                    .scalar()
                    .ok()
                    .and_then(|v| v.as_i64())
                    .ok_or("COUNT returned no scalar")?;
                if keep < last_keep {
                    return Err(format!(
                        "epoch went backwards: keep count fell {last_keep} -> {keep}"
                    ));
                }
                if keep % K as i64 != 0 {
                    return Err(format!(
                        "half-applied insert visible: keep count {keep} not a multiple of {K}"
                    ));
                }
                last_keep = keep;
                probes += 1;
            }
            Ok(probes)
        }));
    }

    writer.join().expect("writer died");
    stop.store(true, Ordering::Relaxed);
    let mut probes = 0u64;
    for r in readers {
        probes += r.join().expect("reader died").unwrap();
    }
    driver.stop();
    assert!(probes > 0, "readers never probed a batch");

    // Zero lost committed writes: the immortal ledger holds every row the
    // writer was acknowledged for, and the churning container still holds
    // only whole batches.
    assert_eq!(db.live_count("keep") as u64, BATCHES * K);
    for b in 0..BATCHES {
        let n = db
            .execute(&format!("SELECT COUNT(*) FROM r WHERE batch = {b}"))
            .unwrap()
            .result
            .scalar()
            .ok()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(
            n == 0 || n == K as i64,
            "batch {b} ended torn: {n} of {K} rows (seed {seed})"
        );
    }

    // The MVCC machinery was actually on the hot path, and with every
    // reader gone the retired version list drained.
    let t = db.mvcc_telemetry();
    assert!(t.snapshot_reads > 0, "no read used the snapshot path");
    assert_eq!(
        t.retired, t.reclaimed,
        "retired snapshot versions leaked at quiescence: {t:?}"
    );
}

/// With the fault plan disabled the same harness must behave exactly like
/// the fault-free integration suite: every request answered, no retries,
/// no panics — pinning that the fault layer is pay-for-what-you-use.
#[test]
fn disabled_fault_plan_changes_nothing() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 100;

    let db = SharedDatabase::new(Database::new(7));
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(1000000)",
    )
    .unwrap();
    let handle = serve(
        db,
        ServerConfig {
            workers: CLIENTS,
            tick_period: Some(Duration::from_millis(1)),
            fault_plan: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(800 + c as u64, "r", "sensor", "reading", 32, 16)
                .with_fault_aware(true);
            let mut client = Client::connect_with_retry(addr, RetryPolicy::new(c as u64)).unwrap();
            for i in 0..PER_CLIENT {
                let resp = match mix.next_op(Tick(i + 1)) {
                    ClientOp::Sql(sql) => client.sql(sql),
                    ClientOp::Dot(line) => client.dot(line),
                }
                .expect("request failed without faults");
                assert!(!resp.is_error(), "{resp:?}");
            }
            let stats = client.stats();
            client.close();
            stats
        }));
    }
    for t in threads {
        let stats = t.join().unwrap();
        assert_eq!(stats.retries, 0, "retries on a healthy transport");
        assert_eq!(stats.transport_errors, 0);
        assert_eq!(stats.reconnects, 0);
    }

    let report = handle.shutdown().unwrap();
    let m = report.metrics;
    assert_eq!(m.requests, (CLIENTS as u64) * PER_CLIENT);
    assert_eq!(m.requests, m.responses, "dropped responses without faults");
    assert_eq!(m.faults_injected, 0);
    assert_eq!(m.worker_panics, 0);
    assert_eq!(m.workers_respawned, 0);
}
