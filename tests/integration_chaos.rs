//! The chaos suite: the full server stack under the seeded fault plan.
//!
//! Eight fault-aware [`ClientMix`] clients drive a server whose every
//! connection runs through [`FaultPlan::chaos`] — 5% torn writes, 2%
//! mid-frame disconnects, transient I/O errors, read delays, and a
//! scheduled worker panic — while a 1 ms wall-clock decay driver ticks
//! underneath. The invariants checked are the ones the paper's Law 1
//! stakes its claim on:
//!
//! * **No protocol corruption.** A fault may truncate a conversation,
//!   never garble it: no client ever sees a malformed response frame.
//! * **Retry-safe requests eventually succeed.** Probes and
//!   non-consuming reads ride the retry policy to completion; only
//!   non-idempotent writes may surface transport errors (the ambiguity
//!   guard working as designed).
//! * **Zero lost committed writes.** Every `INSERT` the server
//!   acknowledged is present afterwards; the only slack is writes that
//!   died *in transit* (the server may or may not have executed them).
//! * **Decay never stops.** The driver's tick counter keeps advancing
//!   through worker panics and connection storms.
//! * **Panicked workers respawn.** The supervisor replaces every worker
//!   the fault plan kills.
//!
//! The fault seed comes from `CHAOS_SEED` (CI runs a small matrix of
//! fixed seeds); any seed must uphold every invariant.

use std::sync::Once;
use std::time::Duration;

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::{
    serve, Client, ClientError, ErrorCode, FaultPlan, Response, RetryPolicy, ServerConfig,
};
use spacefungus::fungus_shard::ShardSpec;
use spacefungus::fungus_types::Tick;
use spacefungus::fungus_workload::{ClientMix, ClientOp};

/// The fault seed under test. CI sets `CHAOS_SEED` to sweep a matrix;
/// locally the default keeps runs reproducible.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF06)
}

/// The fault plan panics workers on purpose; keep those expected panics
/// out of the test log while letting real ones print.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected worker panic") {
                default_hook(info);
            }
        }));
    });
}

/// Rows a statement would append, for committed-write accounting. Each
/// generated `INSERT` row is one parenthesised tuple.
fn insert_rows(op: &ClientOp) -> u64 {
    let text = op.text();
    if text.starts_with("INSERT") {
        text.matches('(').count() as u64
    } else {
        0
    }
}

/// The chaos scenario, parameterised over the extent layout: `None` runs
/// the monolithic store, `Some(rows)` re-creates the container with
/// time-range shards of `rows` tuples before the storm starts. Every
/// invariant in the module doc must hold for both layouts.
fn run_chaos_plan(rows_per_shard: Option<u64>) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 200;

    silence_injected_panics();
    let seed = chaos_seed();

    let db = SharedDatabase::new(Database::new(seed));
    // A TTL far beyond the test horizon: nothing rots mid-run, so the
    // committed-write ledger can be checked exactly against the extent.
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(1000000)",
    )
    .unwrap();
    if let Some(rows) = rows_per_shard {
        // The DDL language has no SHARDS clause; apply the layout
        // programmatically, the same way `examples/serve.rs --shards`
        // does at boot.
        let mut guard = db.write();
        let (schema, policy) = {
            let c = guard.container("r").expect("container just created");
            let g = c.read();
            (g.schema().clone(), g.policy().clone())
        };
        guard.drop_container("r");
        guard
            .create_container("r", schema, policy.with_sharding(ShardSpec::new(rows)))
            .expect("re-create container with sharding");
    }

    let config = ServerConfig {
        workers: CLIENTS,
        tick_period: Some(Duration::from_millis(1)),
        fault_plan: Some(FaultPlan::chaos(seed)),
        ..ServerConfig::default()
    };
    let handle = serve(db, config).unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(
                seed ^ ((c as u64 + 1) * 7919),
                "r",
                "sensor",
                "reading",
                32,
                16,
            )
            .with_health_every(37)
            .with_fault_aware(true);
            let policy = RetryPolicy::new(seed.wrapping_add(c as u64))
                .with_max_attempts(8)
                .with_base_delay(Duration::from_millis(1))
                .with_max_delay(Duration::from_millis(16));
            let mut client = Client::connect_with_retry(addr, policy).unwrap();

            let mut committed = 0u64; // rows in acknowledged INSERTs
            let mut ambiguous = 0u64; // rows in INSERTs that died in transit
            for i in 0..PER_CLIENT {
                let op = mix.next_op(Tick(i + 1));
                let retry_safe = op.is_retry_safe();
                let rows = insert_rows(&op);
                let result = match &op {
                    ClientOp::Sql(sql) => client.sql(sql.clone()),
                    ClientOp::Dot(line) => client.dot(line.clone()),
                };
                match result {
                    Ok(resp) => {
                        // Faults may truncate the conversation, never
                        // garble it: a Protocol error on either side
                        // would mean corrupted bytes got through.
                        assert!(
                            !matches!(
                                resp,
                                Response::Error {
                                    code: ErrorCode::Protocol,
                                    ..
                                }
                            ),
                            "protocol corruption surfaced: {resp:?}"
                        );
                        assert!(!resp.is_error(), "statement failed under chaos: {resp:?}");
                        committed += rows;
                    }
                    Err(ClientError::Protocol(msg)) => {
                        panic!("client decoded a garbled response: {msg}")
                    }
                    Err(err) => {
                        assert!(
                            !retry_safe,
                            "retry-safe op gave up (seed {seed}, client {c}, op {i}): {err}"
                        );
                        ambiguous += rows;
                    }
                }
            }
            let stats = client.stats();
            client.close();
            (committed, ambiguous, stats)
        }));
    }

    let mut committed = 0u64;
    let mut ambiguous = 0u64;
    let mut retries = 0u64;
    let mut transport_errors = 0u64;
    for t in threads {
        let (c, a, stats) = t.join().expect("client thread died");
        committed += c;
        ambiguous += a;
        retries += stats.retries;
        transport_errors += stats.transport_errors;
    }
    assert!(
        transport_errors > 0,
        "chaos run saw no faults at all (seed {seed}) — injection not wired?"
    );
    assert!(retries > 0, "retry layer never engaged (seed {seed})");

    // Decay stayed on schedule: the driver is still ticking after the
    // storm, at a rate consistent with its 1 ms period.
    let ticks_before = handle.driver_ticks();
    assert!(ticks_before > 0, "driver never ticked during the run");
    std::thread::sleep(Duration::from_millis(50));
    let advanced = handle.driver_ticks() - ticks_before;
    assert!(
        advanced >= 5,
        "driver nearly stalled after chaos: {advanced} ticks in 50ms"
    );

    // Zero lost committed writes: everything acknowledged is present;
    // the only slack is writes whose fate the client never learned.
    let live = handle.db().live_count("r") as u64;
    assert!(
        live >= committed,
        "lost committed writes: {committed} acknowledged, {live} live (seed {seed})"
    );
    assert!(
        live <= committed + ambiguous,
        "phantom rows: {live} live > {committed} committed + {ambiguous} ambiguous"
    );

    if let Some(rows) = rows_per_shard {
        // The storm really ran against a sharded extent, not a layout
        // that silently fell back to monolithic.
        let guard = handle.db().write();
        let c = guard.container("r").expect("container survived chaos");
        let shards = c.read().shard_count();
        assert!(
            shards >= 4,
            "sharded chaos run ended with {shards} shards (rows_per_shard {rows}, live {live})"
        );
    }

    let report = handle.shutdown().expect("graceful shutdown after chaos");
    let m = report.metrics;
    assert!(m.faults_injected > 0, "server injected no stream faults");
    assert!(
        m.worker_panics >= 1,
        "the scheduled worker panic never fired (seed {seed})"
    );
    assert_eq!(
        m.worker_panics, m.workers_respawned,
        "supervisor lost workers: {} panics, {} respawns",
        m.worker_panics, m.workers_respawned
    );
}

#[test]
fn chaos_clients_survive_the_fault_plan() {
    run_chaos_plan(None);
}

/// The same storm against a time-range-sharded extent: the committed-write
/// ledger, decay schedule, and supervisor invariants must not care how the
/// extent is laid out. 64-row shards put the run well past four shards.
#[test]
fn chaos_survives_on_a_sharded_extent() {
    run_chaos_plan(Some(64));
}

/// With the fault plan disabled the same harness must behave exactly like
/// the fault-free integration suite: every request answered, no retries,
/// no panics — pinning that the fault layer is pay-for-what-you-use.
#[test]
fn disabled_fault_plan_changes_nothing() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 100;

    let db = SharedDatabase::new(Database::new(7));
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(1000000)",
    )
    .unwrap();
    let handle = serve(
        db,
        ServerConfig {
            workers: CLIENTS,
            tick_period: Some(Duration::from_millis(1)),
            fault_plan: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(800 + c as u64, "r", "sensor", "reading", 32, 16)
                .with_fault_aware(true);
            let mut client = Client::connect_with_retry(addr, RetryPolicy::new(c as u64)).unwrap();
            for i in 0..PER_CLIENT {
                let resp = match mix.next_op(Tick(i + 1)) {
                    ClientOp::Sql(sql) => client.sql(sql),
                    ClientOp::Dot(line) => client.dot(line),
                }
                .expect("request failed without faults");
                assert!(!resp.is_error(), "{resp:?}");
            }
            let stats = client.stats();
            client.close();
            stats
        }));
    }
    for t in threads {
        let stats = t.join().unwrap();
        assert_eq!(stats.retries, 0, "retries on a healthy transport");
        assert_eq!(stats.transport_errors, 0);
        assert_eq!(stats.reconnects, 0);
    }

    let report = handle.shutdown().unwrap();
    let m = report.metrics;
    assert_eq!(m.requests, (CLIENTS as u64) * PER_CLIENT);
    assert_eq!(m.requests, m.responses, "dropped responses without faults");
    assert_eq!(m.faults_injected, 0);
    assert_eq!(m.worker_panics, 0);
    assert_eq!(m.workers_respawned, 0);
}
