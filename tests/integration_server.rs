//! The network front-end under real concurrency: many clients, a live
//! wall-clock decay driver, mixed consuming/non-consuming traffic, and a
//! graceful drain — plus a deterministic virtual-time mode where the
//! clock only moves on explicit `.tick` requests.

use std::time::Duration;

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::{serve, Client, Response, ServerConfig};
use spacefungus::fungus_types::Tick;
use spacefungus::fungus_workload::{ClientMix, ClientOp};

fn server_db(seed: u64) -> SharedDatabase {
    let db = SharedDatabase::new(Database::new(seed));
    db.execute_ddl(
        "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
         WITH FUNGUS ttl(50) DECAY EVERY 2",
    )
    .unwrap();
    db
}

/// Eight concurrent clients — half consuming readers, half mixed
/// ingest/query streams — against a server whose decay driver ticks on
/// wall time throughout. Every request must get a response, the extent
/// must stay bounded, and shutdown must drain cleanly.
#[test]
fn eight_clients_under_live_decay() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 150;

    let config = ServerConfig {
        workers: CLIENTS,
        tick_period: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    };
    let handle = serve(server_db(17), config).unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            // Even clients consume what they read; odd ones only peek.
            let mut mix = ClientMix::new(300 + c as u64, "r", "sensor", "reading", 32, 16)
                .with_consuming_reads(c % 2 == 0)
                .with_health_every(50);
            let mut client = Client::connect(addr).unwrap();
            let mut responses = 0u64;
            let mut statement_errors = 0u64;
            for i in 0..PER_CLIENT {
                let resp = match mix.next_op(Tick(i + 1)) {
                    ClientOp::Sql(sql) => client.sql(sql),
                    ClientOp::Dot(line) => client.dot(line),
                }
                .expect("every request gets a response");
                responses += 1;
                if resp.is_error() {
                    statement_errors += 1;
                }
            }
            client.close();
            (responses, statement_errors)
        }));
    }

    let mut responses = 0u64;
    let mut statement_errors = 0u64;
    for t in threads {
        let (r, e) = t.join().expect("client thread must not deadlock");
        responses += r;
        statement_errors += e;
    }
    assert_eq!(responses, (CLIENTS as u64) * PER_CLIENT);
    assert_eq!(statement_errors, 0);

    // Decay ran concurrently with the traffic.
    assert!(handle.db().now().get() > 0, "decay driver never ticked");
    // The TTL fungus plus consuming readers bound the extent: with a
    // 50-tick TTL and the driver at 1 ms, anything older than ~50 ms is
    // gone. Allow generous slack for scheduling; what matters is that the
    // extent is nowhere near the ~1200 rows ingested.
    let live = handle.db().live_count("r");
    assert!(live < 800, "extent unbounded: {live} live tuples");

    let report = handle.shutdown().expect("graceful shutdown");
    assert_eq!(
        report.metrics.requests, report.metrics.responses,
        "server dropped responses: {:?}",
        report.metrics
    );
    assert_eq!(report.metrics.requests, (CLIENTS as u64) * PER_CLIENT);
    assert_eq!(report.metrics.errors, 0, "{:?}", report.metrics);
}

/// Without a decay driver the server is in virtual-time mode: the clock
/// moves only on `.tick`, so a scripted session is bit-for-bit
/// reproducible across server instances with the same seed.
#[test]
fn virtual_time_mode_is_deterministic() {
    let run = || -> Vec<Response> {
        let handle = serve(server_db(99), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut transcript = Vec::new();
        for round in 0..5 {
            for s in 0..4 {
                let v = 20.0 + f64::from(round * 4 + s);
                transcript.push(
                    client
                        .sql(format!("INSERT INTO r VALUES ({s}, {v:.1})"))
                        .unwrap(),
                );
            }
            transcript.push(client.dot(".tick 10").unwrap());
            transcript.push(
                client
                    .sql("SELECT COUNT(*), AVG(reading) FROM r WHERE $age <= 20")
                    .unwrap(),
            );
            transcript.push(
                client
                    .sql("SELECT reading FROM r WHERE sensor = 0 CONSUME")
                    .unwrap(),
            );
        }
        transcript.push(client.dot(".health r").unwrap());
        client.close();
        handle.shutdown().unwrap();
        transcript
    };

    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual-time transcripts diverged");
    assert!(a.iter().all(|r| !r.is_error()));
}

/// DDL from one connection is immediately visible to another, and a
/// session surviving a statement error keeps its counter advancing.
#[test]
fn cross_session_catalog_and_error_recovery() {
    let handle = serve(server_db(5), ServerConfig::default()).unwrap();
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();

    let r = a
        .sql("CREATE CONTAINER events (kind TEXT NOT NULL) WITH FUNGUS ttl(30)")
        .unwrap();
    assert!(!r.is_error(), "{r:?}");
    let r = b.sql("INSERT INTO events VALUES ('boot')").unwrap();
    assert!(!r.is_error(), "{r:?}");

    // A parse error leaves b's session usable.
    assert!(b.sql("SELEKT nonsense").unwrap().is_error());
    let r = b.sql("SELECT COUNT(*) FROM events").unwrap();
    match r {
        Response::Rows { rows, .. } => {
            assert_eq!(rows[0][0], spacefungus::fungus_types::Value::Int(1));
        }
        other => panic!("{other:?}"),
    }

    a.close();
    b.close();
    handle.shutdown().unwrap();
}

/// The MVCC gauges ride `.stats` end to end, and the version-reclamation
/// ledger balances at quiescence for every shard layout: after a burst of
/// snapshot-read traffic under live decay, `mvcc_retired` equals
/// `mvcc_reclaimed` — no snapshot version leaks once every reader is gone
/// — while `mvcc_snapshot_reads` proves the lock-free path actually
/// served the reads.
#[test]
fn stats_mvcc_gauges_balance_across_shard_layouts() {
    let gauge = |resp: &Response, name: &str| -> i64 {
        match resp {
            Response::Rows { rows, .. } => rows
                .iter()
                .find(|r| r[0] == spacefungus::fungus_types::Value::Str(name.into()))
                .unwrap_or_else(|| panic!("gauge {name} missing from .stats: {rows:?}"))[1]
                .as_i64()
                .unwrap(),
            other => panic!("{other:?}"),
        }
    };

    for shards in [1u64, 4, 16] {
        let db = SharedDatabase::new(Database::new(shards));
        db.execute_ddl(&format!(
            "CREATE CONTAINER r (sensor INT NOT NULL, reading FLOAT) \
             WITH FUNGUS ttl(40) SHARDS {shards}"
        ))
        .unwrap();
        let handle = serve(
            db,
            ServerConfig {
                workers: 2,
                tick_period: Some(Duration::from_millis(1)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        for i in 0..120i64 {
            let r = client
                .sql(format!("INSERT INTO r VALUES ({}, {:.1})", i % 8, i as f64))
                .unwrap();
            assert!(!r.is_error(), "{r:?}");
            if i % 3 == 0 {
                let r = client
                    .sql("SELECT COUNT(*) FROM r WHERE sensor >= 0")
                    .unwrap();
                assert!(!r.is_error(), "{r:?}");
            }
        }

        let stats = client.dot(".stats").unwrap();
        let published = gauge(&stats, "mvcc_published");
        let snapshot_reads = gauge(&stats, "mvcc_snapshot_reads");
        let retired = gauge(&stats, "mvcc_retired");
        let reclaimed = gauge(&stats, "mvcc_reclaimed");
        assert!(
            published > 0,
            "{shards}-shard layout never published a snapshot"
        );
        assert!(
            snapshot_reads > 0,
            "{shards}-shard layout never served a snapshot read"
        );
        assert_eq!(
            retired, reclaimed,
            "{shards}-shard layout leaked snapshot versions: \
             retired {retired}, reclaimed {reclaimed}"
        );

        client.close();
        handle.shutdown().unwrap();
    }
}
