//! Whole-system determinism: two databases with the same seed, driven by
//! the same (generated) workload, end in identical observable state —
//! stochastic fungi, sketch hashing, query mixes, and all.
//!
//! This is the property every experiment in EXPERIMENTS.md leans on.

use spacefungus::fungus_core::RouteSpec;
use spacefungus::prelude::*;

/// A full-stack session: two containers, EGI + TTL, a rot route, two
/// distillers, a consuming query mix, indexes, compaction.
fn drive_session(seed: u64) -> Database {
    let mut db = Database::new(seed);
    let mut fleet = SensorStream::new(8, 25, db.rng());
    let mut mix =
        QueryMix::new("hot", "sensor", "reading", 8, 15, db.rng()).with_consuming_reads(true);

    db.create_container(
        "hot",
        fleet.schema().clone(),
        ContainerPolicy::new(FungusSpec::Egi(EgiConfig {
            seeds_per_tick: 2,
            spread_width: 1,
            rot_rate: 0.15,
            seed_bias: SeedBias::AgePow(1.0),
        }))
        .with_distiller(DistillSpec {
            name: "stats".into(),
            column: Some("reading".into()),
            summary: SummarySpec::Moments,
            trigger: DistillTrigger::Both,
        })
        .with_compaction_every(Some(16)),
    )
    .unwrap();
    db.create_container(
        "cold",
        Schema::from_pairs(&[("reading", DataType::Float)]).unwrap(),
        ContainerPolicy::new(FungusSpec::Retention { max_age: 200 }).with_distiller(DistillSpec {
            name: "survivors".into(),
            column: Some("reading".into()),
            summary: SummarySpec::Distinct { precision: 10 },
            trigger: DistillTrigger::Both,
        }),
    )
    .unwrap();
    db.add_route(
        "hot",
        RouteSpec {
            to: "cold".into(),
            columns: vec!["reading".into()],
            trigger: DistillTrigger::Rotted,
        },
    )
    .unwrap();
    db.execute_ddl("CREATE INDEX ON hot (sensor)").unwrap();

    for t in 1..=120u64 {
        db.tick();
        db.insert_batch("hot", fleet.rows_at(Tick(t))).unwrap();
        let (_, sql) = mix.next_statement(Tick(t));
        db.execute(&sql).unwrap();
    }
    db
}

fn fingerprint(db: &Database) -> Vec<(String, usize, u64, u64, u64, Vec<u64>)> {
    db.container_names()
        .into_iter()
        .map(|name| {
            let c = db.container(&name).unwrap();
            let g = c.read();
            let live_ids: Vec<u64> = g.store().iter_live().map(|t| t.meta.id.get()).collect();
            (
                name,
                g.live_count(),
                g.metrics().tuples_rotted,
                g.metrics().tuples_consumed,
                g.metrics().distilled,
                live_ids,
            )
        })
        .collect()
}

#[test]
fn same_seed_same_universe() {
    let a = drive_session(314159);
    let b = drive_session(314159);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // Even floating summaries agree bit-for-bit.
    let summary = |db: &Database| -> (u64, f64) {
        let c = db.container("hot").unwrap();
        let g = c.read();
        match g.distiller().summary("stats").unwrap() {
            AnySummary::Moments(m) => (m.count(), m.mean().unwrap_or(0.0)),
            _ => unreachable!(),
        }
    };
    let (na, ma) = summary(&a);
    let (nb, mb) = summary(&b);
    assert_eq!(na, nb);
    assert_eq!(ma.to_bits(), mb.to_bits(), "summaries are bit-identical");
    // Health agrees too.
    let ha = a.health("hot").unwrap();
    let hb = b.health("hot").unwrap();
    assert_eq!(ha.score.to_bits(), hb.score.to_bits());
}

#[test]
fn different_seeds_diverge() {
    let a = drive_session(1);
    let b = drive_session(2);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different seeds must explore different universes"
    );
}

#[test]
fn snapshot_restore_then_identical_future() {
    // Determinism across a checkpoint boundary: run 60 ticks, checkpoint,
    // keep running the original while a restored copy runs the same tail —
    // with the same post-restore inputs their extents must match.
    let mut original = Database::new(27);
    let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
    original
        .create_container(
            "r",
            schema,
            ContainerPolicy::new(FungusSpec::Retention { max_age: 30 }),
        )
        .unwrap();
    for i in 0..60i64 {
        original.tick();
        original.insert("r", vec![Value::Int(i)]).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("fungus-det-{}", std::process::id()));
    original.checkpoint(&dir).unwrap();

    let mut restored = Database::new(27);
    restored.restore_checkpoint(&dir).unwrap();

    for i in 60..90i64 {
        for db in [&mut original, &mut restored] {
            db.tick();
            db.insert("r", vec![Value::Int(i)]).unwrap();
        }
    }
    let ids = |db: &Database| -> Vec<u64> {
        let c = db.container("r").unwrap();
        let g = c.read();
        g.store().iter_live().map(|t| t.meta.id.get()).collect()
    };
    assert_eq!(ids(&original), ids(&restored));
    assert_eq!(original.now(), restored.now());
    std::fs::remove_dir_all(&dir).ok();
}
