//! Property tests for the reactor's per-connection state machine
//! ([`SessionConn`]) and the shared incremental frame pump behind it.
//!
//! The claims under test are the satellite contract of the reactor
//! work: **byte-at-a-time and fault-torn partial frames never corrupt
//! framing, and a committed response is never lost** — whatever the
//! read chunking, write budgets, or injected faults, every byte that
//! reaches the wire is a whole, decodable response frame in dispatch
//! order, and a torn stream ends in a typed truncation, not garbage.
//!
//! The machine is driven exactly as the reactor drives it (readable
//! events → dispatch → completion → writable events), just
//! single-threaded over in-memory streams so proptest can shrink.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::time::Duration;

use proptest::prelude::*;

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::frame::{encode_frame, read_frame};
use spacefungus::fungus_server::reactor::conn::SessionConn;
use spacefungus::fungus_server::{
    drain_frames, ErrorCode, FaultPlan, Faulty, FrameError, Request, Response, Session,
};

/// An in-memory duplex with scripted misbehaviour: reads serve the
/// input in arbitrary chunk sizes (optionally returning `WouldBlock`
/// every `block_every`-th call), writes land in a capture buffer under
/// a cycling per-call byte budget (optionally blocking too). This is
/// the nonblocking-socket weather the reactor lives in.
struct ScriptedStream {
    input: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    ci: usize,
    block_every: usize,
    reads: usize,
    wrote: Vec<u8>,
    budgets: Vec<usize>,
    bi: usize,
    wblock_every: usize,
    writes: usize,
}

impl ScriptedStream {
    fn new(input: Vec<u8>, chunks: Vec<usize>, budgets: Vec<usize>) -> ScriptedStream {
        ScriptedStream {
            input,
            pos: 0,
            chunks,
            ci: 0,
            block_every: 0,
            reads: 0,
            wrote: Vec::new(),
            budgets,
            bi: 0,
            wblock_every: 0,
            writes: 0,
        }
    }
}

impl Read for ScriptedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        if self.block_every > 0 && self.reads.is_multiple_of(self.block_every) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted"));
        }
        if self.pos >= self.input.len() {
            return Ok(0);
        }
        let chunk = match self.chunks.get(self.ci % self.chunks.len().max(1)) {
            Some(&c) => c.max(1),
            None => 17,
        };
        self.ci += 1;
        let n = chunk.min(buf.len()).min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for ScriptedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writes += 1;
        if self.wblock_every > 0 && self.writes.is_multiple_of(self.wblock_every) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted"));
        }
        let budget = match self.budgets.get(self.bi % self.budgets.len().max(1)) {
            Some(&b) => b.max(1),
            None => 23,
        };
        self.bi += 1;
        let n = buf.len().min(budget);
        self.wrote.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn session() -> Session {
    Session::new(1, SharedDatabase::new(Database::new(1)))
}

fn ping_frame() -> Vec<u8> {
    encode_frame(&Request::Ping.encode().unwrap()).unwrap()
}

/// Drives the machine the way a reactor tick does — readable event,
/// dispatch sweep (handled synchronously: the "worker" runs inline),
/// writable event, cap-freed decode — until the connection says it is
/// done. Returns how many responses the flush path committed.
fn drive<S: Read + Write>(conn: &mut SessionConn<S>, max_iters: usize) -> Option<usize> {
    let mut flushed = 0;
    for _ in 0..max_iters {
        conn.on_readable();
        while let Some((mut s, payload)) = conn.next_dispatch() {
            let resp = match Request::decode(&payload) {
                Ok(req) => s.handle(req),
                Err(e) => Response::from_error(&e),
            };
            conn.complete(s, &resp);
        }
        flushed += conn.on_writable().responses;
        conn.decode_buffered();
        if conn.should_close() {
            return Some(flushed);
        }
    }
    None
}

/// Splits the captured wire bytes back into decoded responses. Panics
/// (failing the property) on any framing corruption or trailing
/// fragment — flushed output must always be whole frames.
fn decode_wire(wrote: &[u8]) -> Vec<Response> {
    let mut cursor = wrote;
    let mut out = Vec::new();
    while let Some(payload) = read_frame(&mut cursor).expect("wire is never corrupt") {
        out.push(Response::decode(&payload).expect("every frame is a response"));
    }
    out
}

proptest! {
    /// Whatever the read chunking (down to a byte at a time), scripted
    /// `WouldBlock` storms, and partial-write budgets, every pipelined
    /// request is served and every response reaches the wire whole and
    /// in order.
    #[test]
    fn chunked_reads_and_partial_writes_lose_nothing(
        n in 1usize..12,
        chunks in proptest::collection::vec(1usize..48, 1..16),
        budgets in proptest::collection::vec(1usize..48, 1..16),
        block_every in prop_oneof![Just(0usize), 2usize..6],
        wblock_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        let input: Vec<u8> = std::iter::repeat_with(ping_frame).take(n).flatten().collect();
        let mut stream = ScriptedStream::new(input, chunks, budgets);
        stream.block_every = block_every;
        stream.wblock_every = wblock_every;

        let mut conn = SessionConn::new(stream, session());
        let flushed = drive(&mut conn, 5_000).expect("machine reached close");
        prop_assert_eq!(flushed, n, "every committed response was flushed");

        let responses = decode_wire(&conn.into_stream().wrote);
        prop_assert_eq!(responses.len(), n);
        for r in &responses {
            prop_assert_eq!(r, &Response::Pong);
        }
    }

    /// Tearing the request stream at any byte offset never corrupts the
    /// response wire: the machine answers some prefix of the complete
    /// requests, then (iff the tear strands a partial frame) exactly one
    /// typed Protocol error, and closes. No response is ever fabricated
    /// past the tear and no flushed response is ever mangled.
    #[test]
    fn torn_request_streams_end_in_typed_truncation(
        n in 1usize..10,
        cut_fraction in 0.0f64..1.0,
        chunks in proptest::collection::vec(1usize..48, 1..16),
    ) {
        let frame_len = ping_frame().len();
        let full: Vec<u8> = std::iter::repeat_with(ping_frame).take(n).flatten().collect();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        let cut = cut.min(full.len());
        let clean = cut.is_multiple_of(frame_len);
        let whole = cut / frame_len;

        let stream = ScriptedStream::new(full[..cut].to_vec(), chunks, vec![64]);
        let mut conn = SessionConn::new(stream, session());
        let flushed = drive(&mut conn, 5_000).expect("machine reached close");

        let responses = decode_wire(&conn.into_stream().wrote);
        prop_assert_eq!(responses.len(), flushed, "flush accounting matches the wire");
        let pongs = responses.iter().take_while(|r| **r == Response::Pong).count();
        prop_assert!(pongs <= whole, "never more answers than complete requests");
        if clean {
            prop_assert_eq!(pongs, whole, "clean EOF serves every pipelined request");
            prop_assert_eq!(responses.len(), whole, "no error on a clean close");
        } else {
            prop_assert_eq!(responses.len(), pongs + 1, "exactly one terminal error");
            prop_assert!(matches!(
                responses.last(),
                Some(Response::Error { code: ErrorCode::Protocol, .. })
            ), "the tear surfaces as a typed Protocol error: {:?}", responses.last());
        }
    }

    /// Transient faults (injected `WouldBlock`/`Interrupted` storms and
    /// read delays, but no kills) are invisible at the protocol level:
    /// the machine retries through the fault wrapper and still serves
    /// everything — the reactor equivalent of the threaded model's
    /// "transients never cost a committed response" guarantee.
    #[test]
    fn injected_transients_are_invisible_to_the_protocol(
        n in 1usize..10,
        seed in any::<u64>(),
        transient in 0.0f64..0.8,
        chunks in proptest::collection::vec(1usize..48, 1..8),
    ) {
        let input: Vec<u8> = std::iter::repeat_with(ping_frame).take(n).flatten().collect();
        let stream = ScriptedStream::new(input, chunks, vec![32]);
        let plan = FaultPlan::new(seed)
            .with_transients(transient)
            .with_read_delays(0.05, Duration::from_micros(20));
        let mut conn = SessionConn::new(Faulty::new(stream, plan.schedule_for(3)), session());

        let flushed = drive(&mut conn, 20_000).expect("machine reached close");
        prop_assert_eq!(flushed, n);

        let (stream, _schedule) = conn.into_stream().into_inner();
        let responses = decode_wire(&stream.wrote);
        prop_assert_eq!(responses.len(), n);
        for r in &responses {
            prop_assert_eq!(r, &Response::Pong);
        }
    }

    /// The incremental `drain_frames` pump — the one code path both I/O
    /// models share — decodes a byte-at-a-time, arbitrarily torn stream
    /// to exactly the complete prefix plus a typed truncation carrying
    /// `have < need`, never a partial or corrupt frame.
    #[test]
    fn drain_frames_byte_at_a_time_over_torn_streams(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96usize),
            1..6usize,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut full = Vec::new();
        let mut boundaries = vec![0usize];
        for p in &payloads {
            full.extend_from_slice(&encode_frame(p).unwrap());
            boundaries.push(full.len());
        }
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        let cut = cut.min(full.len());
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();

        // Serve the torn stream one byte per read call.
        let mut reader = ScriptedStream::new(full[..cut].to_vec(), vec![1], vec![1]);
        let (frames, err) = drain_frames(&mut reader);

        prop_assert_eq!(frames.len(), whole, "exactly the complete prefix");
        for (got, want) in frames.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want, "no frame is ever corrupted");
        }
        let at_boundary = boundaries.contains(&cut);
        if at_boundary {
            prop_assert_eq!(err, None, "clean cut: clean EOF");
        } else {
            match err {
                Some(FrameError::Truncated { have, need }) => prop_assert!(have < need),
                other => prop_assert!(false, "expected typed truncation, got {:?}", other),
            }
        }
    }
}
