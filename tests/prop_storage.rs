//! Model-based property tests: the segmented [`TableStore`] against a
//! naive `BTreeMap` reference model under random operation sequences,
//! plus snapshot/WAL round-trip properties.

use std::collections::BTreeMap;

use proptest::prelude::*;

use spacefungus::fungus_storage::{decode_table, encode_table, TombstoneReason};
use spacefungus::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(usize),
    Decay(usize, f64),
    Infect(usize),
    Cure(usize),
    Touch(usize),
    EvictRotten,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i64>().prop_map(Op::Insert),
        2 => any::<usize>().prop_map(Op::Delete),
        3 => (any::<usize>(), 0.0f64..1.5).prop_map(|(i, a)| Op::Decay(i, a)),
        1 => any::<usize>().prop_map(Op::Infect),
        1 => any::<usize>().prop_map(Op::Cure),
        1 => any::<usize>().prop_map(Op::Touch),
        1 => Just(Op::EvictRotten),
        1 => Just(Op::Compact),
    ]
}

/// Reference model: id → (value, freshness, infected, accesses).
#[derive(Debug, Default)]
struct Model {
    rows: BTreeMap<u64, (i64, f64, bool, u32)>,
    next_id: u64,
}

fn small_store() -> TableStore {
    let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
    TableStore::new(
        schema,
        StorageConfig {
            segment_capacity: 4,
            compact_live_threshold: 0.5,
            zone_maps: true,
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any op sequence the store agrees with the reference model on
    /// membership, values, freshness, infection, and access counts.
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut store = small_store();
        let mut model = Model::default();
        let now = Tick(1);

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = store.insert(vec![Value::Int(v)], now).unwrap();
                    prop_assert_eq!(id.get(), model.next_id);
                    model.rows.insert(model.next_id, (v, 1.0, false, 0));
                    model.next_id += 1;
                }
                Op::Delete(i) => {
                    let target = pick(&model, i);
                    if let Some(id) = target {
                        store.delete(TupleId(id), TombstoneReason::Deleted);
                        model.rows.remove(&id);
                    }
                }
                Op::Decay(i, amount) => {
                    if let Some(id) = pick(&model, i) {
                        let f = store.decay(TupleId(id), amount).unwrap();
                        let m = model.rows.get_mut(&id).unwrap();
                        m.1 = (m.1 - amount.max(0.0)).max(0.0);
                        if m.1 < 1e-12 { m.1 = 0.0; }
                        prop_assert!((f.get() - m.1).abs() < 1e-9);
                    }
                }
                Op::Infect(i) => {
                    if let Some(id) = pick(&model, i) {
                        prop_assert!(store.infect(TupleId(id), now));
                        model.rows.get_mut(&id).unwrap().2 = true;
                    }
                }
                Op::Cure(i) => {
                    if let Some(id) = pick(&model, i) {
                        store.cure(TupleId(id));
                        model.rows.get_mut(&id).unwrap().2 = false;
                    }
                }
                Op::Touch(i) => {
                    if let Some(id) = pick(&model, i) {
                        store.touch(TupleId(id), now);
                        model.rows.get_mut(&id).unwrap().3 += 1;
                    }
                }
                Op::EvictRotten => {
                    let evicted = store.evict_rotten();
                    for t in &evicted {
                        let m = model.rows.remove(&t.meta.id.get());
                        prop_assert!(m.is_some());
                        prop_assert_eq!(m.unwrap().1, 0.0, "only rotten rows evict");
                    }
                    prop_assert!(model.rows.values().all(|r| r.1 > 0.0));
                }
                Op::Compact => {
                    store.compact();
                }
            }

            // Full-state comparison after every op.
            prop_assert_eq!(store.live_count(), model.rows.len());
            for (&id, &(v, f, infected, accesses)) in &model.rows {
                let t = store.get(TupleId(id));
                prop_assert!(t.is_some(), "id {} missing", id);
                let t = t.unwrap();
                prop_assert_eq!(&t.values[0], &Value::Int(v));
                prop_assert!((t.meta.freshness.get() - f).abs() < 1e-9);
                prop_assert_eq!(t.meta.infected, infected);
                prop_assert_eq!(t.meta.access_count, accesses);
            }
            let infected_model: Vec<u64> = model
                .rows
                .iter()
                .filter(|(_, r)| r.2)
                .map(|(id, _)| *id)
                .collect();
            let infected_store: Vec<u64> =
                store.infected_ids().iter().map(|i| i.get()).collect();
            prop_assert_eq!(infected_store, infected_model);
        }
    }

    /// Snapshot round-trip is the identity on every observable of the
    /// store, for any op sequence.
    #[test]
    fn snapshot_roundtrip_is_identity(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut store = small_store();
        let mut model = Model::default();
        let now = Tick(1);
        for op in ops {
            apply_unchecked(&mut store, &mut model, op, now);
        }
        let restored = decode_table(encode_table(&store)).unwrap();
        prop_assert_eq!(restored.live_count(), store.live_count());
        prop_assert_eq!(restored.next_id(), store.next_id());
        prop_assert_eq!(restored.infected_ids(), store.infected_ids());
        prop_assert_eq!(restored.evicted_rotted(), store.evicted_rotted());
        prop_assert_eq!(restored.rotted_unread(), store.rotted_unread());
        let a: Vec<_> = store.iter_live().cloned().collect();
        let b: Vec<_> = restored.iter_live().cloned().collect();
        prop_assert_eq!(a, b);
    }

    /// Snapshot decoding never panics on corrupted input: any single-byte
    /// mutation or truncation either round-trips (if it hit dead bytes) or
    /// fails with a clean error.
    #[test]
    fn snapshot_decode_survives_corruption(
        ops in proptest::collection::vec(arb_op(), 1..40),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
        cut_at in any::<usize>(),
    ) {
        let mut store = small_store();
        let mut model = Model::default();
        for op in ops {
            apply_unchecked(&mut store, &mut model, op, Tick(1));
        }
        let bytes = encode_table(&store);
        // Bit flip somewhere.
        let mut mutated = bytes.to_vec();
        let idx = flip_at % mutated.len();
        mutated[idx] ^= flip_bits;
        let _ = decode_table(bytes::Bytes::from(mutated)); // must not panic
        // Truncation anywhere.
        let cut = cut_at % (bytes.len() + 1);
        let _ = decode_table(bytes.slice(..cut)); // must not panic
    }

    /// Live neighbours always skip tombstones and stay ordered around the
    /// probe id.
    #[test]
    fn neighbors_are_ordered_live_tuples(ops in proptest::collection::vec(arb_op(), 1..80), probe in any::<u64>()) {
        let mut store = small_store();
        let mut model = Model::default();
        for op in ops {
            apply_unchecked(&mut store, &mut model, op, Tick(1));
        }
        let max_id = store.next_id().get();
        let probe = TupleId(if max_id == 0 { 0 } else { probe % (max_id + 1) });
        let (pred, succ) = store.live_neighbors(probe);
        if let Some(p) = pred {
            prop_assert!(p < probe);
            prop_assert!(store.get(p).is_some());
            // No live tuple strictly between p and probe.
            for id in (p.get() + 1)..probe.get() {
                prop_assert!(store.get(TupleId(id)).is_none());
            }
        }
        if let Some(s) = succ {
            prop_assert!(s > probe);
            prop_assert!(store.get(s).is_some());
            for id in (probe.get() + 1)..s.get() {
                prop_assert!(store.get(TupleId(id)).is_none());
            }
        }
    }
}

fn pick(model: &Model, i: usize) -> Option<u64> {
    if model.rows.is_empty() {
        None
    } else {
        model.rows.keys().nth(i % model.rows.len()).copied()
    }
}

fn apply_unchecked(store: &mut TableStore, model: &mut Model, op: Op, now: Tick) {
    match op {
        Op::Insert(v) => {
            store.insert(vec![Value::Int(v)], now).unwrap();
            model.rows.insert(model.next_id, (v, 1.0, false, 0));
            model.next_id += 1;
        }
        Op::Delete(i) => {
            if let Some(id) = pick(model, i) {
                store.delete(TupleId(id), TombstoneReason::Deleted);
                model.rows.remove(&id);
            }
        }
        Op::Decay(i, amount) => {
            if let Some(id) = pick(model, i) {
                store.decay(TupleId(id), amount);
            }
        }
        Op::Infect(i) => {
            if let Some(id) = pick(model, i) {
                store.infect(TupleId(id), now);
            }
        }
        Op::Cure(i) => {
            if let Some(id) = pick(model, i) {
                store.cure(TupleId(id));
            }
        }
        Op::Touch(i) => {
            if let Some(id) = pick(model, i) {
                store.touch(TupleId(id), now);
            }
        }
        Op::EvictRotten => {
            for t in store.evict_rotten() {
                model.rows.remove(&t.meta.id.get());
            }
        }
        Op::Compact => {
            store.compact();
        }
    }
}
