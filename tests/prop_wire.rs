//! Property tests for the server wire codec: framing and protocol
//! round-trips, and typed (never panicking) rejection of malformed,
//! truncated, and oversized input.

use bytes::BytesMut;
use proptest::prelude::*;

use spacefungus::fungus_server::frame::{
    decode_frame, encode_frame, read_frame, FrameError, HEADER_LEN, MAX_FRAME,
};
use spacefungus::fungus_server::{ErrorCode, Request, Response, StatsSummary};
use spacefungus::fungus_types::Value;

proptest! {
    /// encode → decode is the identity for any payload within the cap.
    #[test]
    fn frame_round_trip_identity(payload in proptest::collection::vec(any::<u8>(), 0..2048usize)) {
        let encoded = encode_frame(&payload).unwrap();
        prop_assert_eq!(encoded.len(), HEADER_LEN + payload.len());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encoded);
        let decoded = decode_frame(&mut buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded.as_slice(), &payload[..]);
        prop_assert!(buf.is_empty());
    }

    /// A stream of frames survives arbitrary re-chunking: feeding the
    /// concatenated bytes in random slices yields the same frames in
    /// order, with partial input never producing a frame or a panic.
    #[test]
    fn frames_survive_rechunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256usize),
            1..6usize,
        ),
        cuts in proptest::collection::vec(1usize..64, 0..24usize),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(17));
        while offset < stream.len() {
            let step = cut_iter.next().unwrap().min(stream.len() - offset);
            buf.extend_from_slice(&stream[offset..offset + step]);
            offset += step;
            while let Some(frame) = decode_frame(&mut buf).unwrap() {
                decoded.push(frame.to_vec());
            }
        }
        prop_assert_eq!(decoded, payloads);
    }

    /// Truncating a frame anywhere keeps the decoder waiting (incremental
    /// path) and yields a typed Truncated error (stream path) — no panic,
    /// no partial frame.
    #[test]
    fn truncated_frames_are_incomplete_not_wrong(
        payload in proptest::collection::vec(any::<u8>(), 1..512usize),
        keep_fraction in 0.0f64..1.0,
    ) {
        let encoded = encode_frame(&payload).unwrap();
        let keep = ((encoded.len() as f64) * keep_fraction) as usize;
        let keep = keep.min(encoded.len() - 1);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encoded[..keep]);
        prop_assert_eq!(decode_frame(&mut buf).unwrap(), None);
        prop_assert_eq!(buf.len(), keep); // untouched while incomplete

        let mut cut: &[u8] = &encoded[..keep];
        match read_frame(&mut cut) {
            Ok(None) => prop_assert_eq!(keep, 0),
            Err(FrameError::Truncated { have, need }) => {
                prop_assert!(have < need);
                prop_assert!(have <= keep);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Any header announcing more than MAX_FRAME is rejected with the
    /// typed Oversized error by both decode paths.
    #[test]
    fn oversized_claims_are_typed_errors(
        excess in 1u32..1_000_000,
        tail in proptest::collection::vec(any::<u8>(), 0..32usize),
    ) {
        let claimed = (MAX_FRAME as u32).saturating_add(excess);
        let mut raw = claimed.to_be_bytes().to_vec();
        raw.extend_from_slice(&tail);

        let mut buf = BytesMut::new();
        buf.extend_from_slice(&raw);
        prop_assert!(matches!(
            decode_frame(&mut buf),
            Err(FrameError::Oversized { .. })
        ));

        let mut cursor: &[u8] = &raw;
        prop_assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized { .. })
        ));
    }

    /// Requests round-trip through JSON + framing for arbitrary statement
    /// text (printable unicode).
    #[test]
    fn requests_round_trip_any_text(text in "\\PC{0,120}") {
        let req = Request::Sql { text };
        let bytes = req.encode().unwrap();
        let framed = encode_frame(&bytes).unwrap();
        let mut cursor: &[u8] = &framed;
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    /// Responses round-trip for arbitrary row shapes.
    #[test]
    fn responses_round_trip_any_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1_000_000i64..1_000_000, 0..4usize),
            0..8usize,
        ),
        distilled in 0u64..1_000_000,
    ) {
        let resp = Response::Rows {
            columns: vec!["a".into(), "b".into()],
            rows: rows
                .iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
            distilled,
            consumed: rows.len() as u64,
        };
        let bytes = resp.encode().unwrap();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    /// The full server-counter summary — shard gauges, cooking-sketch
    /// counters, and the MVCC gauges included — survives the wire
    /// bit-for-bit for arbitrary counter values up to the codec's 2^53
    /// integer ceiling.
    #[test]
    fn stats_summary_round_trips_any_counters(
        counters in proptest::collection::vec(0u64..(1 << 53), 30),
    ) {
        let resp = Response::Health {
            reports: vec![],
            server: Some(StatsSummary {
                accepted: counters[0],
                rejected: counters[1],
                requests: counters[2],
                responses: counters[3],
                errors: counters[4],
                faults_injected: counters[5],
                worker_panics: counters[6],
                workers_respawned: counters[7],
                driver_ticks: counters[8],
                shards: counters[9],
                shards_dropped: counters[10],
                shards_pruned: counters[11],
                shards_split: counters[12],
                shards_merged: counters[13],
                shards_restored: counters[14],
                sketches: counters[15],
                sketch_hits: counters[16],
                sketch_absorbed: counters[17],
                mvcc_epoch: counters[18],
                mvcc_published: counters[19],
                mvcc_retired: counters[20],
                mvcc_reclaimed: counters[21],
                mvcc_snapshot_reads: counters[22],
                mvcc_consume_retries: counters[23],
                mvcc_consume_fallbacks: counters[24],
                reactor_sessions: counters[25],
                reactor_ready_events: counters[26],
                reactor_stalls: counters[27],
                reactor_wakeups: counters[28],
                reactor_write_hwm: counters[29],
            }),
        };
        let bytes = resp.encode().unwrap();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    /// Arbitrary garbage payloads never panic the protocol decoder: they
    /// either parse (vanishingly unlikely) or produce a typed error.
    #[test]
    fn garbage_payloads_decode_to_typed_errors(garbage in proptest::collection::vec(any::<u8>(), 0..256usize)) {
        match Request::decode(&garbage) {
            Ok(_) | Err(_) => {} // reaching here at all is the property
        }
        match Response::decode(&garbage) {
            Ok(_) | Err(_) => {}
        }
    }
}

#[test]
fn error_code_variants_round_trip() {
    for code in [
        ErrorCode::Parse,
        ErrorCode::Unknown,
        ErrorCode::Execution,
        ErrorCode::Protocol,
        ErrorCode::Unavailable,
    ] {
        let resp = Response::Error {
            code,
            message: "m".into(),
        };
        let bytes = resp.encode().unwrap();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }
}
