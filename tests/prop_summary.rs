//! Property tests over the cooking schemes: sketch error bounds, merge
//! laws, and decay-model invariants at the fungus level.

use proptest::prelude::*;

use spacefungus::fungus_clock::DeterministicRng;
use spacefungus::fungus_storage::TableStore;
use spacefungus::fungus_summary::{
    CountMinSketch, HyperLogLog, SpaceSaving, StreamingMoments, SummarySpec,
};
use spacefungus::prelude::*;

/// One instance of every [`SummarySpec`] variant, sized small enough that
/// merges exercise the over-capacity paths.
fn all_specs() -> Vec<SummarySpec> {
    vec![
        SummarySpec::Moments,
        SummarySpec::Histogram {
            lo: 0.0,
            hi: 40.0,
            bins: 8,
        },
        SummarySpec::EquiDepth {
            buckets: 4,
            sample: 16,
        },
        SummarySpec::Reservoir { k: 12 },
        SummarySpec::CountMin {
            epsilon: 0.05,
            delta: 0.05,
        },
        SummarySpec::Distinct { precision: 6 },
        SummarySpec::TopK { k: 6 },
        SummarySpec::FadingTopK { k: 6, lambda: 0.1 },
        SummarySpec::BiasedReservoir { k: 12, lambda: 0.1 },
    ]
}

/// A report reduced to an order-independent answer: the `idx` column
/// (a physical sample position, not part of the answer) is dropped,
/// floats are rounded to 10 significant digits (merge formulas for the
/// floating-point kinds reassociate additions, so answers agree to
/// ~1 ulp, not bit-for-bit), and rows compare as a sorted multiset.
fn canonical(report: (Vec<String>, Vec<Vec<Value>>)) -> (Vec<String>, Vec<String>) {
    let (cols, rows) = report;
    let keep: Vec<usize> = cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.as_str() != "idx")
        .map(|(i, _)| i)
        .collect();
    let key = |v: &Value| match v {
        Value::Float(f) => format!("F:{f:.9e}"),
        other => format!("{other:?}"),
    };
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|r| {
            keep.iter()
                .map(|&i| key(&r[i]))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    (cols, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Count-Min never underestimates any key's true count.
    #[test]
    fn count_min_never_underestimates(keys in proptest::collection::vec(0i64..50, 0..400)) {
        let mut sketch = CountMinSketch::new(64, 4, 7).unwrap();
        let mut truth = std::collections::HashMap::new();
        for k in &keys {
            sketch.observe(&Value::Int(*k));
            *truth.entry(*k).or_insert(0u64) += 1;
        }
        for (k, count) in truth {
            prop_assert!(sketch.estimate(&Value::Int(k)) >= count);
        }
    }

    /// Count-Min merge equals the sketch of the concatenated stream.
    #[test]
    fn count_min_merge_is_concat(
        left in proptest::collection::vec(0i64..30, 0..100),
        right in proptest::collection::vec(0i64..30, 0..100),
    ) {
        let mut a = CountMinSketch::new(32, 4, 9).unwrap();
        let mut b = CountMinSketch::new(32, 4, 9).unwrap();
        let mut whole = CountMinSketch::new(32, 4, 9).unwrap();
        for k in &left {
            a.observe(&Value::Int(*k));
            whole.observe(&Value::Int(*k));
        }
        for k in &right {
            b.observe(&Value::Int(*k));
            whole.observe(&Value::Int(*k));
        }
        a.merge(&b).unwrap();
        for k in 0i64..30 {
            prop_assert_eq!(a.estimate(&Value::Int(k)), whole.estimate(&Value::Int(k)));
        }
    }

    /// HyperLogLog merge is idempotent, commutative, and bounded by the
    /// register-wise maximum law: merging a sketch with itself is a no-op.
    #[test]
    fn hll_merge_laws(keys in proptest::collection::vec(0i64..1000, 0..500)) {
        let mut a = HyperLogLog::new(8, 3).unwrap();
        for k in &keys {
            a.observe(&Value::Int(*k));
        }
        let before = a.estimate();
        let clone = a.clone();
        a.merge(&clone).unwrap();
        prop_assert_eq!(a.estimate(), before, "self-merge is a no-op");
    }

    /// Moments merge is associative up to floating-point tolerance.
    #[test]
    fn moments_merge_associative(
        xs in proptest::collection::vec(-100.0f64..100.0, 0..50),
        ys in proptest::collection::vec(-100.0f64..100.0, 0..50),
        zs in proptest::collection::vec(-100.0f64..100.0, 0..50),
    ) {
        let m = |v: &[f64]| {
            let mut s = StreamingMoments::new();
            for x in v { s.observe(*x); }
            s
        };
        // (x ∪ y) ∪ z
        let mut left = m(&xs);
        left.merge(&m(&ys));
        left.merge(&m(&zs));
        // x ∪ (y ∪ z)
        let mut right = m(&ys);
        right.merge(&m(&zs));
        let mut outer = m(&xs);
        outer.merge(&right);
        prop_assert_eq!(left.count(), outer.count());
        if left.count() > 0 {
            prop_assert!((left.mean().unwrap() - outer.mean().unwrap()).abs() < 1e-6);
            prop_assert!((left.variance().unwrap() - outer.variance().unwrap()).abs() < 1e-5);
        }
    }

    /// SpaceSaving: every key with true frequency > N/k is reported.
    #[test]
    fn space_saving_finds_heavy_hitters(
        noise in proptest::collection::vec(10i64..1000, 0..200),
        hot_reps in 50usize..150,
    ) {
        let mut s = SpaceSaving::new(20);
        let mut n = 0u64;
        for k in &noise {
            s.observe(&Value::Int(*k));
            n += 1;
        }
        for _ in 0..hot_reps {
            s.observe(&Value::Int(1));
            n += 1;
        }
        // The hot key has frequency hot_reps ≥ 50 > N/20 when N ≤ 350.
        if u64::from(u32::try_from(hot_reps).unwrap()) > n / 20 {
            let top = s.top(20);
            prop_assert!(
                top.iter().any(|h| h.key == Value::Int(1)),
                "hot key must be tracked"
            );
            prop_assert!(s.estimate(&Value::Int(1)) >= hot_reps as u64);
        }
    }

    /// Merge is commutative for EVERY `SummarySpec` variant: `a ∪ b` and
    /// `b ∪ a` agree for arbitrary (value, tick) streams on the two
    /// sides. For the integer-counter kinds the states are equal
    /// bit-for-bit; the floating-point kinds (moments, fading top-k)
    /// reassociate additions under merge, so their answers are compared
    /// after rounding to 10 significant digits.
    #[test]
    fn merge_is_commutative_for_every_spec(
        xs in proptest::collection::vec((0i64..40, 0u64..30), 0..80),
        ys in proptest::collection::vec((0i64..40, 0u64..30), 0..80),
        now in 30u64..60,
    ) {
        for spec in all_specs() {
            let mut a = spec.build(13).unwrap();
            let mut b = spec.build(13).unwrap();
            for (v, t) in &xs { a.observe_at(&Value::Int(*v), *t); }
            for (v, t) in &ys { b.observe_at(&Value::Int(*v), *t); }
            let mut ab = a.clone();
            ab.merge(&b).unwrap();
            let mut ba = b.clone();
            ba.merge(&a).unwrap();
            let exact_state = !matches!(
                spec,
                SummarySpec::Moments | SummarySpec::FadingTopK { .. }
            );
            if exact_state {
                prop_assert_eq!(&ab, &ba, "merge must be commutative for {}", spec.label());
            }
            prop_assert_eq!(
                canonical(ab.report(now)),
                canonical(ba.report(now)),
                "merged answers must agree for {}",
                spec.label()
            );
        }
    }

    /// Merging a same-spec empty summary never changes the answers, for
    /// EVERY variant. (The *state* may lawfully change for the sampled
    /// kinds — a reservoir re-selection can reorder its sample — so the
    /// law is stated over canonicalised reports.)
    #[test]
    fn merging_an_empty_summary_preserves_answers(
        xs in proptest::collection::vec((0i64..40, 0u64..30), 0..80),
        now in 30u64..60,
    ) {
        for spec in all_specs() {
            let mut x = spec.build(13).unwrap();
            let empty = spec.build(13).unwrap();
            for (v, t) in &xs { x.observe_at(&Value::Int(*v), *t); }
            let before = canonical(x.report(now));
            x.merge(&empty).unwrap();
            let after = canonical(x.report(now));
            prop_assert_eq!(before, after, "empty merge changed {}", spec.label());
        }
    }

    /// Fungus invariant: no fungus ever *increases* any tuple's freshness,
    /// for arbitrary spec parameters within their domains.
    #[test]
    fn fungi_are_monotone_decayers(
        spec_choice in 0usize..6,
        param in 0.01f64..0.99,
        tuples in 1u64..40,
        ticks in 1u64..20,
    ) {
        let spec = match spec_choice {
            0 => FungusSpec::Retention { max_age: (param * 100.0) as u64 + 1 },
            1 => FungusSpec::Linear { lifetime: (param * 50.0) as u64 + 1 },
            2 => FungusSpec::Exponential { lambda: param, rot_threshold: 0.01 },
            3 => FungusSpec::SlidingWindow { capacity: (param * 30.0) as usize + 1 },
            4 => FungusSpec::Stochastic { eviction_prob: param, age_scale: None },
            _ => FungusSpec::Egi(EgiConfig {
                rot_rate: param,
                ..Default::default()
            }),
        };
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let mut store = TableStore::new(schema, StorageConfig::default()).unwrap();
        for i in 0..tuples {
            store.insert(vec![Value::Int(i as i64)], Tick(i)).unwrap();
        }
        let mut fungus = spec.build(&DeterministicRng::new(11)).unwrap();
        let mut last: std::collections::HashMap<u64, f64> = store
            .iter_live()
            .map(|t| (t.meta.id.get(), t.meta.freshness.get()))
            .collect();
        for t in 0..ticks {
            fungus.tick(&mut store, Tick(tuples + t));
            for tup in store.iter_live() {
                let id = tup.meta.id.get();
                let f = tup.meta.freshness.get();
                if let Some(prev) = last.get(&id) {
                    prop_assert!(
                        f <= prev + 1e-12,
                        "fungus {} raised freshness of {} from {} to {}",
                        fungus.name(), id, prev, f
                    );
                }
                last.insert(id, f);
            }
            store.evict_rotten();
        }
    }

    /// Cross-kind merges are refused for every ordered pair of distinct
    /// variants — a mis-wired rollup errors instead of silently mixing
    /// incompatible sketches.
    #[test]
    fn cross_kind_merges_error(_dummy in 0u8..1) {
        let specs = all_specs();
        for (i, si) in specs.iter().enumerate() {
            for (j, sj) in specs.iter().enumerate() {
                let mut a = si.build(13).unwrap();
                let b = sj.build(13).unwrap();
                let merged = a.merge(&b);
                if i == j {
                    prop_assert!(merged.is_ok(), "{} ∪ {} must merge", si.label(), sj.label());
                } else {
                    prop_assert!(merged.is_err(), "{} ∪ {} must error", si.label(), sj.label());
                }
            }
        }
    }

    /// EGI invariant: immediately after any number of ticks on a static
    /// extent, every infected run is contiguous along the live time axis
    /// (the spots never fragment internally).
    #[test]
    fn egi_spots_are_contiguous_over_live_tuples(
        seeds in 1usize..4,
        spread in 0usize..3,
        ticks in 1u64..15,
    ) {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
        let mut store = TableStore::new(schema, StorageConfig::default()).unwrap();
        for i in 0..200u64 {
            store.insert(vec![Value::Int(i as i64)], Tick(0)).unwrap();
        }
        let mut fungus = FungusSpec::Egi(EgiConfig {
            seeds_per_tick: seeds,
            spread_width: spread,
            rot_rate: 0.0, // no eviction: measure pure spread structure
            ..Default::default()
        })
        .build(&DeterministicRng::new(5))
        .unwrap();
        for t in 0..ticks {
            fungus.tick(&mut store, Tick(t + 1));
        }
        // Each maximal infected run must be ≥ the seed count implied width
        // growth… we assert the structural property: between two infected
        // tuples of the same run there is no uninfected live tuple. That is
        // precisely what the census computes, so: total infected equals the
        // sum over spots (sanity), and with spread ≥ 1 and ≥ 2 ticks, every
        // spot has width ≥ 3 unless clipped by the table edge.
        let census = SpotCensus::collect(&store);
        prop_assert_eq!(census.infected_total, store.infected_count());
        if spread >= 1 && ticks >= 2 && census.infected_spots > 0 {
            // Spots may merge, but the *largest* must have grown.
            prop_assert!(census.largest_infected_spot >= 3);
        }
    }
}
