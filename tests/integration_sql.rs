//! End-to-end coverage of the whole SQL surface through `Database`:
//! DDL, DML, every clause, pseudo-columns, scalar functions, and the
//! paper-specific extensions — one session exercising all of it.

use spacefungus::prelude::*;

fn db_with_events() -> Database {
    let mut db = Database::new(404);
    db.execute_ddl(
        "CREATE CONTAINER events (kind TEXT NOT NULL, amount FLOAT, user_id INT) \
         WITH FUNGUS ttl(100)",
    )
    .unwrap();
    db.execute_ddl("CREATE INDEX ON events (user_id)").unwrap();
    db.execute_ddl("CREATE ORDERED INDEX ON events (amount)")
        .unwrap();
    for i in 0..30i64 {
        db.execute(&format!(
            "INSERT INTO events VALUES ('{}', {}, {})",
            if i % 5 == 0 { "refund" } else { "sale" },
            i as f64 * 1.5,
            i % 4,
        ))
        .unwrap();
        db.tick();
    }
    db
}

#[test]
fn the_full_surface_in_one_session() {
    let db = db_with_events();

    // DISTINCT.
    let out = db
        .execute("SELECT DISTINCT kind FROM events ORDER BY kind")
        .unwrap();
    assert_eq!(out.result.rows.len(), 2);

    // GROUP BY + HAVING + aliases + ORDER BY alias.
    let out = db
        .execute(
            "SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events \
             GROUP BY kind HAVING n > 10 ORDER BY total DESC",
        )
        .unwrap();
    assert_eq!(
        out.result.rows.len(),
        1,
        "only 'sale' has more than 10 rows"
    );
    assert_eq!(out.result.rows[0][0], Value::from("sale"));

    // Scalar functions + CASE inside projections and predicates.
    let out = db
        .execute(
            "SELECT UPPER(kind), ROUND(amount, 0), \
             CASE WHEN amount >= 30 THEN 'big' ELSE 'small' END \
             FROM events WHERE ABS(amount - 30) <= 1.5 ORDER BY amount",
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 3);
    assert_eq!(out.result.rows[0][0], Value::from("SALE"));

    // Index probes: hash on user_id, ordered on amount.
    let out = db
        .execute("SELECT COUNT(*) FROM events WHERE user_id = 2")
        .unwrap();
    assert!(out.result.used_index);
    let out = db
        .execute("SELECT COUNT(*) FROM events WHERE amount BETWEEN 10 AND 20")
        .unwrap();
    assert!(out.result.used_index, "ordered index answers the range");

    // Freshness-weighted aggregates: rows aged 1..30 of TTL 100.
    let out = db
        .execute("SELECT FCOUNT(*), COUNT(*) FROM events")
        .unwrap();
    let fcount = out.result.rows[0][0].as_f64().unwrap();
    let count = out.result.rows[0][1].as_f64().unwrap();
    assert!(fcount < count, "aged rows weigh less: {fcount} < {count}");
    assert!(fcount > 0.5 * count, "but nothing is near-rotten yet");

    // EXPLAIN through SQL.
    let out = db
        .execute("EXPLAIN SELECT DISTINCT kind FROM events WHERE user_id = 1 LIMIT 3")
        .unwrap();
    let plan_text: Vec<String> = out
        .result
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    assert!(
        plan_text.iter().any(|l| l.contains("Distinct")),
        "{plan_text:?}"
    );
    assert!(
        plan_text.iter().any(|l| l.contains("Limit 3")),
        "{plan_text:?}"
    );
    assert!(
        plan_text.iter().any(|l| l.contains("Scan events")),
        "{plan_text:?}"
    );

    // DELETE (owner discard) vs CONSUME (read-and-remove) accounting.
    let before = db.container("events").unwrap().read().live_count();
    let out = db
        .execute("SELECT * FROM events WHERE kind = 'refund' CONSUME")
        .unwrap();
    let consumed = out.result.consumed.len();
    db.execute("DELETE FROM events WHERE user_id = 3").unwrap();
    let c = db.container("events").unwrap();
    let guard = c.read();
    assert_eq!(guard.metrics().tuples_consumed, consumed as u64);
    assert!(guard.store().evicted_deleted() > 0);
    assert!(guard.live_count() < before - consumed);
}

#[test]
fn sql_errors_are_informative_not_panics() {
    let db = db_with_events();
    for (sql, needle) in [
        ("SELECT * FROM nowhere", "unknown container"),
        ("SELECT nope FROM events", "unknown column"),
        ("SELECT kind, COUNT(*) FROM events", "GROUP BY"),
        ("SELECT DISTINCT COUNT(*) FROM events", "DISTINCT"),
        ("SELECT * FROM events HAVING kind = 'x'", "HAVING"),
        ("SELECT BOGUS(kind) FROM events", "unknown function"),
        ("SELECT SUM(kind) FROM events", "numeric"),
        ("INSERT INTO events VALUES (1)", "arity"),
    ] {
        let err = db.execute(sql).unwrap_err().to_string().to_lowercase();
        assert!(
            err.contains(&needle.to_lowercase()),
            "`{sql}` → `{err}` missing `{needle}`"
        );
    }
}
