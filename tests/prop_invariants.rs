//! Property-based tests over the core data-model invariants.

use proptest::prelude::*;

use spacefungus::prelude::*;

proptest! {
    /// Freshness construction always lands in [0,1] and never NaN.
    #[test]
    fn freshness_always_in_unit_interval(x in proptest::num::f64::ANY) {
        let f = Freshness::new(x);
        prop_assert!((0.0..=1.0).contains(&f.get()));
        prop_assert!(!f.get().is_nan());
    }

    /// Decay is monotone: no amount (even negative/NaN) increases freshness.
    #[test]
    fn decay_is_monotone(start in 0.0f64..=1.0, amount in proptest::num::f64::ANY) {
        let f = Freshness::new(start);
        prop_assert!(f.decayed(amount) <= f);
    }

    /// Scaling is monotone and bounded.
    #[test]
    fn scaling_is_monotone(start in 0.0f64..=1.0, factor in proptest::num::f64::ANY) {
        let f = Freshness::new(start);
        let scaled = f.scaled(factor);
        prop_assert!(scaled <= f);
        prop_assert!(scaled.get() >= 0.0);
    }

    /// A chain of decays equals one decay by (roughly) the clamped sum —
    /// ordering of decay operations cannot matter beyond fp error.
    #[test]
    fn decay_chain_is_order_insensitive(
        start in 0.0f64..=1.0,
        amounts in proptest::collection::vec(0.0f64..0.2, 0..10)
    ) {
        let f = Freshness::new(start);
        let mut chained = f;
        for a in &amounts {
            chained = chained.decayed(*a);
        }
        let mut reversed = f;
        for a in amounts.iter().rev() {
            reversed = reversed.decayed(*a);
        }
        prop_assert!((chained.get() - reversed.get()).abs() < 1e-9);
    }

    /// Tick arithmetic never panics and age is antisymmetric-saturating.
    #[test]
    fn tick_arithmetic_saturates(a in proptest::num::u64::ANY, b in proptest::num::u64::ANY) {
        let ta = Tick(a);
        let tb = Tick(b);
        let d1 = ta.age_since(tb);
        let d2 = tb.age_since(ta);
        prop_assert!(d1 == TickDelta(0) || d2 == TickDelta(0));
        // Adding back a saturating difference recovers the max.
        prop_assert_eq!(tb + (ta - tb), ta.max(tb));
    }

    /// Value total order is consistent: antisymmetric and transitive over
    /// random triples (the sort interface depends on it).
    #[test]
    fn value_ordering_is_total(
        a in arb_value(),
        b in arb_value(),
        c in arb_value(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity of ≤.
        if a.cmp_total(&b) != Ordering::Greater && b.cmp_total(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp_total(&c), Ordering::Greater);
        }
    }

    /// Equal values hash equal (HashMap correctness for mixed Int/Float keys).
    #[test]
    fn value_hash_respects_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Arithmetic never panics on arbitrary operand pairs.
    #[test]
    fn value_arithmetic_never_panics(a in arb_value(), b in arb_value()) {
        let _ = a.add(&b);
        let _ = a.sub(&b);
        let _ = a.mul(&b);
        let _ = a.div(&b);
        let _ = a.rem(&b);
        let _ = a.neg();
    }

    /// Schema round trip: any row accepted by check_row survives
    /// normalise_row with the same SQL-visible values.
    #[test]
    fn normalise_preserves_accepted_rows(vals in proptest::collection::vec(arb_value(), 3)) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ]).unwrap();
        if schema.check_row(&vals).is_ok() {
            let norm = schema.normalise_row(vals.clone()).unwrap();
            for (orig, n) in vals.iter().zip(&norm) {
                // Coercion preserves SQL equality (Int 3 == Float 3.0).
                if !orig.is_null() {
                    prop_assert_eq!(orig.sql_eq(n), Some(true));
                }
            }
        }
    }
}

proptest! {
    /// The in-house JSON codec round-trips arbitrary nested structures
    /// built from the serde primitives the workspace uses.
    #[test]
    fn json_codec_roundtrips(doc in arb_json_doc()) {
        use spacefungus::fungus_types::json;
        let text = json::to_string(&doc).unwrap();
        let back: JsonDoc = json::from_str(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// The JSON parser never panics on arbitrary input.
    #[test]
    fn json_parser_never_panics(input in "\\PC{0,80}") {
        let _ = spacefungus::fungus_types::json::parse(&input);
    }

    /// Every FungusSpec round-trips through the JSON codec (the checkpoint
    /// manifest path).
    #[test]
    fn fungus_specs_roundtrip_json(
        choice in 0usize..7,
        a in 1u64..1000,
        p in 0.01f64..0.99,
    ) {
        use spacefungus::fungus_types::json;
        let spec = match choice {
            0 => FungusSpec::Null,
            1 => FungusSpec::Retention { max_age: a },
            2 => FungusSpec::Linear { lifetime: a },
            3 => FungusSpec::Exponential { lambda: p, rot_threshold: 0.01 },
            4 => FungusSpec::SlidingWindow { capacity: a as usize },
            5 => FungusSpec::Stochastic { eviction_prob: p, age_scale: Some(a as f64) },
            _ => FungusSpec::Sequence(vec![
                FungusSpec::Lease { lease: a },
                FungusSpec::Egi(EgiConfig::default()),
            ]),
        };
        let text = json::to_string(&spec).unwrap();
        let back: FungusSpec = json::from_str(&text).unwrap();
        prop_assert_eq!(back, spec);
    }
}

/// A small recursive document type exercising every serde shape the
/// workspace configuration types use.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum JsonDoc {
    Unit,
    // The codec documents integer fidelity up to 2^53 (JSON numbers are
    // doubles); the generator stays inside that envelope.
    Num(i64),
    Float(f64),
    Text(String),
    Flag(Option<bool>),
    List(Vec<JsonDoc>),
    Pair {
        left: Box<JsonDoc>,
        right: Box<JsonDoc>,
    },
}

fn arb_json_doc() -> impl Strategy<Value = JsonDoc> {
    let leaf = prop_oneof![
        Just(JsonDoc::Unit),
        (-(1i64 << 53)..(1i64 << 53)).prop_map(JsonDoc::Num),
        (-1e9f64..1e9).prop_map(JsonDoc::Float),
        "[a-zA-Z0-9 \\\"\n]{0,12}".prop_map(JsonDoc::Text),
        proptest::option::of(any::<bool>()).prop_map(JsonDoc::Flag),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(JsonDoc::List),
            (inner.clone(), inner).prop_map(|(l, r)| JsonDoc::Pair {
                left: Box::new(l),
                right: Box::new(r)
            }),
        ]
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: the engine normalises NaN to Null at intake.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Value::Bytes),
    ]
}
