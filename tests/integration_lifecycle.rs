//! End-to-end lifecycle: ingest → decay → query-consume → distill →
//! health → snapshot → recover, across every crate in the workspace.

use spacefungus::prelude::*;

fn sensor_schema() -> Schema {
    Schema::from_pairs(&[
        ("sensor", DataType::Int),
        ("reading", DataType::Float),
        ("site", DataType::Str),
    ])
    .unwrap()
}

/// The full pipeline the README promises, asserted at each stage.
#[test]
fn full_pipeline() {
    let mut db = Database::new(2024);
    let policy =
        ContainerPolicy::new(FungusSpec::Retention { max_age: 50 }).with_distiller(DistillSpec {
            name: "stats".into(),
            column: Some("reading".into()),
            summary: SummarySpec::Moments,
            trigger: DistillTrigger::Both,
        });
    db.create_container("r", sensor_schema(), policy).unwrap();

    // Stage 1: ingest 100 ticks of data.
    let mut workload = SensorStream::new(10, 20, db.rng());
    for t in 1..=100u64 {
        db.tick();
        db.insert_batch("r", workload.rows_at(Tick(t))).unwrap();
    }
    let container = db.container("r").unwrap();
    {
        let guard = container.read();
        assert_eq!(guard.metrics().inserts, 2000);
        // TTL 50 at 20 rows/tick → about 1000 live (±1 tick of slack).
        let live = guard.live_count();
        assert!((980..=1040).contains(&live), "live {live}");
        assert!(guard.metrics().tuples_rotted > 900);
    }

    // Stage 2: consuming queries remove what they return.
    let before = container.read().live_count();
    let out = db
        .execute("SELECT * FROM r WHERE sensor < 3 CONSUME")
        .unwrap();
    assert!(!out.result.is_empty());
    assert_eq!(out.result.consumed.len(), out.result.len());
    assert_eq!(
        container.read().live_count(),
        before - out.result.len(),
        "law 2: extent shrinks by exactly the answer set"
    );
    assert_eq!(out.distilled as usize, out.result.len());

    // Stage 3: every departure was distilled.
    {
        let guard = container.read();
        let departed = guard.metrics().tuples_rotted + guard.metrics().tuples_consumed;
        assert_eq!(guard.distiller().absorbed("stats"), Some(departed));
        match guard.distiller().summary("stats").unwrap() {
            AnySummary::Moments(m) => {
                assert_eq!(m.count(), departed);
                let mean = m.mean().unwrap();
                assert!(
                    (5.0..95.0).contains(&mean),
                    "sensor readings average {mean}"
                );
            }
            other => panic!("wrong summary {other:?}"),
        }
    }

    // Stage 4: health reflects the neglect level.
    let report = db.health("r").unwrap();
    assert!(report.score > 0.0 && report.score <= 1.0);
    assert!(!report.recommendations.is_empty());

    // Stage 5: snapshot, restore into a fresh database, verify state.
    let dir = std::env::temp_dir().join("spacefungus-lifecycle-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("lifecycle-{}.snap", std::process::id()));
    db.save_container("r", &path).unwrap();

    let mut db2 = Database::new(2024);
    db2.load_container("r", &path, ContainerPolicy::immortal())
        .unwrap();
    let out1 = db.execute("SELECT COUNT(*), SUM(reading) FROM r").unwrap();
    let out2 = db2.execute("SELECT COUNT(*), SUM(reading) FROM r").unwrap();
    assert_eq!(
        out1.result.rows, out2.result.rows,
        "restored store answers identically"
    );
    std::fs::remove_file(&path).ok();
}

/// Law 1 verbatim: "the extent of table R decays … until it has been
/// completely disappeared", for every bounded fungus.
#[test]
fn every_bounded_fungus_extinguishes_the_relation() {
    let fungi = vec![
        FungusSpec::Retention { max_age: 10 },
        FungusSpec::Linear { lifetime: 10 },
        FungusSpec::Exponential {
            lambda: 0.5,
            rot_threshold: 0.05,
        },
        FungusSpec::SlidingWindow { capacity: 1 },
        FungusSpec::Stochastic {
            eviction_prob: 0.3,
            age_scale: None,
        },
        FungusSpec::Egi(EgiConfig {
            seeds_per_tick: 4,
            spread_width: 2,
            rot_rate: 0.3,
            ..Default::default()
        }),
    ];
    for spec in fungi {
        let label = spec.label();
        let mut db = Database::new(1);
        db.create_container("r", sensor_schema(), ContainerPolicy::new(spec))
            .unwrap();
        for i in 0..50i64 {
            db.insert(
                "r",
                vec![Value::Int(i), Value::float(i as f64), Value::from("s")],
            )
            .unwrap();
        }
        db.run_for(2_000);
        let live = db.container("r").unwrap().read().live_count();
        // SlidingWindow keeps exactly its capacity; everything else goes to
        // zero without new arrivals.
        let floor = if label.starts_with("window") { 1 } else { 0 };
        assert_eq!(live, floor, "fungus {label} left {live} tuples");
    }
}

/// The second law's algebra: `extent' = extent − σ_P(extent)`, and the
/// answer set equals what a peek would have returned.
#[test]
fn consume_equals_peek_then_delete() {
    let mut db_peek = Database::new(77);
    let mut db_consume = Database::new(77);
    for db in [&mut db_peek, &mut db_consume] {
        db.create_container("r", sensor_schema(), ContainerPolicy::immortal())
            .unwrap();
        let mut w = SensorStream::new(5, 100, db.rng());
        let rows = w.rows_at(Tick(0));
        db.insert_batch("r", rows).unwrap();
    }
    let peek = db_peek
        .execute("SELECT sensor, reading FROM r WHERE sensor = 2")
        .unwrap();
    let consumed = db_consume
        .execute("SELECT sensor, reading FROM r WHERE sensor = 2 CONSUME")
        .unwrap();
    assert_eq!(peek.result.rows, consumed.result.rows, "same answer set A");
    // Peek left the extent whole; consume removed σ_P(R).
    assert_eq!(db_peek.container("r").unwrap().read().live_count(), 100);
    assert_eq!(
        db_consume.container("r").unwrap().read().live_count(),
        100 - consumed.result.len()
    );
    // And the remaining extent has no P-rows left.
    let rest = db_consume
        .execute("SELECT COUNT(*) FROM r WHERE sensor = 2")
        .unwrap();
    assert_eq!(rest.result.scalar().unwrap(), &Value::Int(0));
}

/// Freshness pseudo-columns make decayed data addressable, which is how
/// owners harvest rot before losing it.
#[test]
fn harvest_by_freshness_prevents_waste() {
    let mut db = Database::new(3);
    db.create_container(
        "r",
        sensor_schema(),
        ContainerPolicy::new(FungusSpec::Linear { lifetime: 20 }),
    )
    .unwrap();
    let mut w = SensorStream::new(5, 10, db.rng());
    for t in 1..=100u64 {
        db.tick();
        db.insert_batch("r", w.rows_at(Tick(t))).unwrap();
        // Harvest anything about to rot.
        db.execute("SELECT reading FROM r WHERE $freshness < 0.2 CONSUME")
            .unwrap();
    }
    let c = db.container("r").unwrap();
    let guard = c.read();
    let stats = guard.stats(db.now());
    assert!(
        stats.waste_ratio() < 0.05,
        "harvesting keeps waste near zero, got {}",
        stats.waste_ratio()
    );
    assert!(guard.metrics().tuples_consumed > 0);
}

/// Containers with different fungi coexist on one clock; moving data
/// between them ("stored in a new container subject to different data
/// fungi") works through plain SQL.
#[test]
fn cross_container_distillation_flow() {
    let mut db = Database::new(9);
    let hot_schema = sensor_schema();
    let cold_schema = Schema::from_pairs(&[("reading", DataType::Float)]).unwrap();
    db.create_container(
        "hot",
        hot_schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 5 }),
    )
    .unwrap();
    db.create_container(
        "cold",
        cold_schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 500 }),
    )
    .unwrap();

    let mut w = SensorStream::new(3, 10, db.rng());
    for t in 1..=50u64 {
        db.tick();
        db.insert_batch("hot", w.rows_at(Tick(t))).unwrap();
        // Move interesting rows to the long-lived container before they rot.
        let out = db
            .execute("SELECT reading FROM hot WHERE reading > 50 CONSUME")
            .unwrap();
        for row in out.result.rows {
            db.insert("cold", row).unwrap();
        }
    }
    let hot = db.container("hot").unwrap().read().live_count();
    let cold = db.container("cold").unwrap().read().live_count();
    assert!(hot <= 60, "hot container stays small: {hot}");
    assert!(cold > 0, "cold container accumulated the distillate");
    let out = db.execute("SELECT MIN(reading) FROM cold").unwrap();
    match out.result.scalar().unwrap() {
        Value::Float(f) => assert!(*f > 50.0),
        other => panic!("unexpected {other}"),
    }
}
