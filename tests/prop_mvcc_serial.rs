//! Property harness for the MVCC serializability guarantee: any
//! interleaving of snapshot reads, consuming reads, inserts, and decay
//! ticks over an MVCC catalog is observationally equivalent to the same
//! history under the fully locked monolithic semantics — the oracle.
//!
//! Under MVCC, non-consuming `SELECT`s resolve against the latest sealed
//! snapshot (never the container lock), `CONSUME` runs the optimistic
//! read-own-snapshot / write-live / retry-on-epoch-advance protocol, and
//! decay ticks republish the version they mutate. None of that machinery
//! may move an answer: every query's rows, every consumed set, and the
//! surviving extent must match the locked monolithic run bit-for-bit.
//!
//! Deliberately *excluded* from the observables: the engine's query
//! counter (pure snapshot reads are counted in MVCC telemetry, not
//! `metrics.queries`) and per-tuple access metadata (snapshot reads defer
//! touches to the next mutator, so `last_access` may lag by one mutation
//! — the documented contract).
//!
//! A second property pins explicit [`SnapshotHandle`]s mid-history and
//! reads them *later*, after more mutations: the delayed read must return
//! exactly what the oracle answered at pin time. That is serializability
//! in its sharpest form — the pinned read serializes at the pin point, no
//! matter how far the live extent has rotted past it.

use proptest::prelude::*;

use spacefungus::prelude::*;

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a row at the current tick.
    Insert(i64),
    /// Advance the decay clock one tick (runs the rot sweep).
    Tick,
    /// A recency-window read — served from the sealed snapshot.
    Recent(u64),
    /// A freshness aggregate — also snapshot-served.
    FreshCount,
    /// A consuming read — the optimistic MVCC consume path.
    Consume(i64),
    /// Pin an explicit snapshot handle for delayed reading.
    Pin,
    /// Read the oldest outstanding pin and release it.
    ReadPinned,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (-50i64..50).prop_map(Op::Insert),
        3 => Just(Op::Tick),
        2 => (0u64..16).prop_map(Op::Recent),
        1 => Just(Op::FreshCount),
        2 => (-50i64..50).prop_map(Op::Consume),
        1 => Just(Op::Pin),
        1 => Just(Op::ReadPinned),
    ]
}

/// The shard layouts the MVCC run is exercised over. `None` = monolithic;
/// the adaptive spec keeps split/merge on the hot path so republication
/// interleaves with shard lifecycle.
fn layouts(inserts: u64) -> Vec<Option<ShardSpec>> {
    let quarter = (inserts / 4).max(1);
    vec![
        None,
        Some(ShardSpec::new(quarter).with_workers(1)),
        Some(ShardSpec::new((inserts / 16).max(1)).with_workers(1)),
        Some(
            ShardSpec::new(6)
                .with_workers(1)
                .with_adaptive()
                .with_low_water(0.5),
        ),
    ]
}

fn fungus() -> FungusSpec {
    FungusSpec::Egi(EgiConfig {
        seeds_per_tick: 2,
        seed_bias: SeedBias::AgePow(2.0),
        rot_rate: 0.5,
        spread_width: 2,
    })
}

fn build(seed: u64, mvcc: bool, spec: Option<ShardSpec>) -> Database {
    let schema = Schema::from_pairs(&[("v", DataType::Int)]).unwrap();
    let mut policy = ContainerPolicy::new(fungus());
    if let Some(spec) = spec {
        policy = policy.with_sharding(spec);
    }
    if !mvcc {
        policy = policy.without_mvcc();
    }
    let mut db = Database::new(seed);
    db.create_container("t", schema, policy).unwrap();
    db
}

/// The full-extent probe used for pinned reads and the survivor check.
const SURVIVORS: &str = "SELECT $id, v FROM t WHERE v >= -50";

/// Everything observable from one run. Access metadata and the engine
/// query counter are deliberately absent (see module docs).
#[derive(Debug, PartialEq)]
struct Observed {
    /// Each query's answer rows, in program order (pinned reads
    /// included, at their *read* position).
    answers: Vec<Vec<Vec<Value>>>,
    /// Each consuming read's removed set, in program order.
    consumed: Vec<Vec<Vec<Value>>>,
    /// The surviving extent at the end.
    survivors: Vec<Vec<Value>>,
}

fn run_workload(ops: &[Op], seed: u64, mvcc: bool, spec: Option<ShardSpec>) -> Observed {
    let db = build(seed, mvcc, spec);
    let mut out = Observed {
        answers: Vec::new(),
        consumed: Vec::new(),
        survivors: Vec::new(),
    };
    // Outstanding pins, oldest first. The oracle (mvcc off) cannot pin —
    // Database::pin_snapshot returns None when nothing was published — so
    // it records the answer it would give at pin time instead; that is
    // exactly the serial point the MVCC read must land on.
    let mut pins: Vec<(Option<SnapshotHandle>, Vec<Vec<Value>>)> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(v) => {
                db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
            }
            Op::Tick => {
                db.run_for(1);
            }
            Op::Recent(back) => {
                let floor = db.now().get().saturating_sub(*back);
                let o = db
                    .execute(&format!(
                        "SELECT * FROM t WHERE $inserted_at >= {floor} AND v >= -50"
                    ))
                    .unwrap();
                out.answers.push(o.result.rows);
            }
            Op::FreshCount => {
                let o = db
                    .execute("SELECT COUNT(*) FROM t WHERE $freshness >= 0.5")
                    .unwrap();
                out.answers.push(o.result.rows);
            }
            Op::Consume(v) => {
                let o = db
                    .execute(&format!("SELECT * FROM t WHERE v >= {v} CONSUME"))
                    .unwrap();
                out.consumed
                    .push(o.result.consumed.iter().map(|t| t.values.clone()).collect());
                out.answers.push(o.result.rows);
            }
            Op::Pin => {
                let handle = db.pin_snapshot("t").unwrap();
                let at_pin = db.execute(SURVIVORS).unwrap().result.rows;
                pins.push((handle, at_pin));
            }
            Op::ReadPinned => {
                if pins.is_empty() {
                    continue;
                }
                let (handle, at_pin) = pins.remove(0);
                let rows = match handle {
                    Some(h) => {
                        let stmt = match parse_statement(SURVIVORS).unwrap() {
                            Statement::Select(s) => s,
                            other => panic!("expected select, got {other:?}"),
                        };
                        h.select(&stmt).unwrap().rows
                    }
                    // The locked oracle has no snapshot to hold; its
                    // serial point is the recorded pin-time answer.
                    None => at_pin,
                };
                out.answers.push(rows);
            }
        }
    }
    drop(pins);
    out.survivors = db.execute(SURVIVORS).unwrap().result.rows;
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The MVCC read/consume/decay machinery over monolithic, fixed-shard,
    /// and adaptive layouts observes the exact history of the locked
    /// monolithic oracle, case after case.
    #[test]
    fn mvcc_histories_serialize_against_the_locked_oracle(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1_000,
    ) {
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count() as u64;
        let oracle = run_workload(&ops, seed, false, None);
        for spec in layouts(inserts) {
            let label = match &spec {
                None => "mono".to_string(),
                Some(s) => format!("{s:?}"),
            };
            let mvcc = run_workload(&ops, seed, true, spec);
            prop_assert_eq!(
                &oracle, &mvcc,
                "mvcc layout {} diverged from the locked oracle", label
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Version reclamation under pinning: however many snapshots a
    /// history pins and drops, once every handle is gone the retired
    /// list drains to zero — retired == reclaimed at quiescence, across
    /// monolithic, 4- and 16-shard layouts.
    #[test]
    fn retired_versions_reclaim_at_quiescence(
        ops in proptest::collection::vec(arb_op(), 10..60),
        seed in 0u64..1_000,
        shards in prop_oneof![Just(0u64), Just(4), Just(16)],
    ) {
        let spec = if shards == 0 {
            None
        } else {
            let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count() as u64;
            Some(ShardSpec::new((inserts / shards).max(1)).with_workers(1))
        };
        let db = build(seed, true, spec);
        let mut pins = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(v) => {
                    db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
                }
                Op::Tick => { db.run_for(1); }
                Op::Consume(v) => {
                    db.execute(&format!("SELECT * FROM t WHERE v >= {v} CONSUME")).unwrap();
                }
                Op::Recent(back) => {
                    let floor = db.now().get().saturating_sub(*back);
                    db.execute(&format!(
                        "SELECT * FROM t WHERE $inserted_at >= {floor} AND v >= -50"
                    )).unwrap();
                }
                Op::FreshCount => {
                    db.execute("SELECT COUNT(*) FROM t WHERE $freshness >= 0.5").unwrap();
                }
                Op::Pin => { pins.push(db.pin_snapshot("t").unwrap()); }
                Op::ReadPinned => { if !pins.is_empty() { pins.remove(0); } }
            }
        }
        // Quiescence: drop every reader.
        drop(pins);
        let t = db.mvcc_telemetry_of("t").unwrap();
        prop_assert_eq!(
            t.retired, t.reclaimed,
            "retired versions leaked with every reader gone: {:?}", t
        );
    }
}
