//! In-tree property-testing harness with proptest's API shape.
//!
//! Covers the subset this workspace's tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! [`prop_oneof!`], collection/sample/option strategies, `any::<T>()`,
//! and the `prop_assert*` macros. Generation is deterministic (seeded from
//! the test name) and there is **no shrinking** — a failing case prints
//! its seed and case number instead.

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (FNV-1a over the bytes).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening multiply keeps the distribution unbiased enough
            // for test generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe producing random values of one type.
    pub trait Strategy: 'static {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { inner: self, f }
        }

        /// Builds recursive structures: `self` is the leaf strategy and
        /// `recurse` wraps an inner strategy into a deeper layer. The
        /// `_desired_size`/`_expected_branch` hints are accepted for API
        /// parity and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut layered = leaf.clone();
            for _ in 0..depth {
                // Keep leaves reachable at every level so generation
                // terminates: half leaf, half one-level-deeper.
                let deeper = recurse(layered).boxed();
                layered = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            layered
        }

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, shareable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + 'static,
        U: 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-valued strategies, as built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Chooses uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty)*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    if span > u128::from(u64::MAX) {
                        return rng.next_u64() as $ty;
                    }
                    (lo + rng.below(span as u64) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty)*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arb_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally wider BMP scalars.
            if rng.below(8) == 0 {
                char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('\u{fffd}')
            } else {
                (0x20 + rng.below(0x5f) as u8) as char
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.below(24) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::MIN_POSITIVE,
                _ => {
                    let magnitude = (rng.unit_f64() * 600.0) - 300.0;
                    let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                    sign * rng.unit_f64() * magnitude.exp2()
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy over the full value space of `T`.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Any<T> {
        /// Const instance backing the `ANY` constants.
        pub const NEW: Any<T> = Any(PhantomData);
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, like proptest's `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Output of [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty list");
        Select { options }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~3/4 of the time, like proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option`s of `inner` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod bool {
    use super::arbitrary::Any;

    /// Fair coin flips.
    pub const ANY: Any<bool> = Any::NEW;
}

pub mod num {
    macro_rules! num_mod {
        ($($m:ident : $ty:ty),*) => {$(
            pub mod $m {
                use crate::arbitrary::Any;

                /// Full-range values, including edge cases.
                pub const ANY: Any<$ty> = Any::NEW;
            }
        )*};
    }

    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: i8, i16: i16, i32: i32, i64: i64, isize: isize,
             f32: f32, f64: f64);
}

pub mod string {
    //! Pattern-string strategies: a `&'static str` is itself a strategy
    //! generating matching `String`s. Supported syntax is the subset the
    //! workspace's tests use: literal chars, `[...]` classes with ranges
    //! and backslash escapes, `\PC` (any printable char), and the
    //! repetitions `{n}`, `{m,n}`, `*`, `+`, `?`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    enum Atom {
        /// Inclusive codepoint ranges.
        Class(Vec<(u32, u32)>),
        /// Any printable (non-control) character.
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            None => panic!("proptest pattern `{pattern}`: unclosed class"),
                            Some(']') => break,
                            Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                panic!("proptest pattern `{pattern}`: trailing backslash")
                            })),
                            Some(other) => other,
                        };
                        // `a-z` range (but `-]` is a literal dash).
                        if chars.peek() == Some(&'-') {
                            let mut ahead = chars.clone();
                            ahead.next();
                            if ahead.peek().is_some_and(|&c| c != ']') {
                                chars.next();
                                let hi = match chars.next().unwrap() {
                                    '\\' => unescape(chars.next().unwrap()),
                                    other => other,
                                };
                                ranges.push((lo as u32, hi as u32));
                                continue;
                            }
                        }
                        ranges.push((lo as u32, lo as u32));
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('P') | Some('p') => {
                        // Only the `\PC` (printable) category is supported.
                        let cat = chars.next();
                        assert!(
                            cat == Some('C'),
                            "proptest pattern `{pattern}`: unsupported category {cat:?}"
                        );
                        Atom::Printable
                    }
                    Some(other) => {
                        let c = unescape(other);
                        Atom::Class(vec![(c as u32, c as u32)])
                    }
                    None => panic!("proptest pattern `{pattern}`: trailing backslash"),
                },
                other => Atom::Class(vec![(other as u32, other as u32)]),
            };

            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repeat min"),
                            n.trim().parse().expect("bad repeat max"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Class(ranges) => {
                let total: u64 = ranges.iter().map(|&(lo, hi)| u64::from(hi - lo + 1)).sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = u64::from(hi - lo + 1);
                    if pick < span {
                        return char::from_u32(lo + pick as u32).unwrap_or('\u{fffd}');
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally wider scalars.
                if rng.below(8) == 0 {
                    char::from_u32(0x00A1 + rng.below(0x1af) as u32).unwrap_or('\u{fffd}')
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let reps = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..reps {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate(self, rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///     fn roundtrip(x in 0u64..100, flag in proptest::bool::ANY()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@with_config ($cfg) $($rest)*}
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($pat,)*) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@with_config ($crate::test_runner::Config::default()) $($rest)*}
    };
}

/// Builds a [`strategy::Union`] choosing among the arms. Weights
/// (`w => strat`) are accepted and treated as uniform.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest] {}", format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Inequality assertion inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        fn maps_and_unions(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|n| n * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        fn vectors_sized(v in crate::collection::vec(0u32..100, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn weight(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(v) => *v,
                Tree::Node(children) => children.iter().map(weight).sum(),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::deterministic("recursive_terminates");
        for _ in 0..256 {
            let tree = strat.generate(&mut rng);
            let _ = weight(&tree);
        }
    }
}
