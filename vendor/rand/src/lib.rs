//! In-tree shim for the `rand` 0.8 API surface this workspace uses.
//!
//! [`rngs::SmallRng`] is xoshiro256++ (the same family the real crate's
//! `small_rng` feature ships on 64-bit targets), seeded through splitmix64
//! so `seed_from_u64` gives well-mixed states even for tiny seeds. The
//! workspace relies on determinism-per-seed, not on matching the real
//! crate's exact stream, so the generator choice only has to be stable
//! within this repository.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the shim's
/// stand-in for `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty => $via:ident),*) => {$(
        impl StandardSample for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $ty
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
              i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
              usize => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = widening_mod(rng, span);
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return <$ty as StandardSample>::sample(rng);
                }
                let draw = widening_mod(rng, span);
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draws uniformly in `0..span` by rejection-free widening multiply; the
/// bias is at most 2⁻⁶⁴ per draw, far below anything the experiment suite
/// can observe.
fn widening_mod<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    let x = rng.next_u64() as u128;
    ((x * span) >> 64) as u64
}

macro_rules! range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$ty as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let unit = <$ty as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

range_float!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a u64 via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// family the real crate uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: u64 = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&u));
            let f: f64 = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let x: usize = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}/10000 at p=0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
