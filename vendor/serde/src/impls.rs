//! `Serialize`/`Deserialize` impls for the std types the workspace
//! persists: scalars, strings, options, boxes, sequences, maps, sets,
//! and small tuples.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::de::{Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess, Visitor};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};

// ===================================================================
// Scalars
// ===================================================================

macro_rules! scalar {
    ($ty:ty, $ser:ident, $de_doc:literal, $visit:ident, $visit_ty:ty, $also:ident, $also_ty:ty) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self as _)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($de_doc)
                    }
                    fn $visit<E: DeError>(self, v: $visit_ty) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", $de_doc))
                        })
                    }
                    fn $also<E: DeError>(self, v: $also_ty) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", $de_doc))
                        })
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    };
}

scalar!(u8, serialize_u8, "u8", visit_u64, u64, visit_i64, i64);
scalar!(u16, serialize_u16, "u16", visit_u64, u64, visit_i64, i64);
scalar!(u32, serialize_u32, "u32", visit_u64, u64, visit_i64, i64);
scalar!(u64, serialize_u64, "u64", visit_u64, u64, visit_i64, i64);
scalar!(
    usize,
    serialize_u64,
    "usize",
    visit_u64,
    u64,
    visit_i64,
    i64
);
scalar!(i8, serialize_i8, "i8", visit_i64, i64, visit_u64, u64);
scalar!(i16, serialize_i16, "i16", visit_i64, i64, visit_u64, u64);
scalar!(i32, serialize_i32, "i32", visit_i64, i64, visit_u64, u64);
scalar!(i64, serialize_i64, "i64", visit_i64, i64, visit_u64, u64);
scalar!(
    isize,
    serialize_i64,
    "isize",
    visit_i64,
    i64,
    visit_u64,
    u64
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: DeError>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

macro_rules! float {
    ($ty:ty, $ser:ident) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn visit_f64<E: DeError>(self, v: f64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_i64<E: DeError>(self, v: i64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_u64<E: DeError>(self, v: u64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    };
}

float!(f32, serialize_f32);
float!(f64, serialize_f64);

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a single character")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected exactly one character")),
                }
            }
        }
        deserializer.deserialize_any(V)
    }
}

// ===================================================================
// Strings
// ===================================================================

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

// ===================================================================
// Unit, references, boxes
// ===================================================================

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
            fn visit_none<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T> Serialize for PhantomData<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit_struct("PhantomData")
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        <()>::deserialize(deserializer)?;
        Ok(PhantomData)
    }
}

// ===================================================================
// Option
// ===================================================================

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<Option<T>, D2::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ===================================================================
// Sequences
// ===================================================================

macro_rules! seq_serialize {
    ($ty:ty) => {
        impl<T: Serialize> Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.len()))?;
                for item in self {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
        }
    };
}

seq_serialize!(Vec<T>);
seq_serialize!([T]);
seq_serialize!(VecDeque<T>);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_tuple(N)?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut items = Vec::with_capacity(N);
                while let Some(item) = seq.next_element::<T>()? {
                    items.push(item);
                }
                let got = items.len();
                items.try_into().map_err(|_| {
                    <A::Error as DeError>::invalid_length(
                        got,
                        &format_args!("an array of length {N}"),
                    )
                })
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

struct SeqVisitor<C, T> {
    marker: PhantomData<(C, T)>,
}

impl<'de, T: Deserialize<'de>, C: Default + Extend<T>> Visitor<'de> for SeqVisitor<C, T> {
    type Value = C;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a sequence")
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<C, A::Error> {
        let mut out = C::default();
        while let Some(item) = seq.next_element::<T>()? {
            out.extend(std::iter::once(item));
        }
        Ok(out)
    }
}

macro_rules! seq_deserialize {
    ($ty:ty $(, $bound:path)*) => {
        impl<'de, T: Deserialize<'de> $(+ $bound)*> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                deserializer.deserialize_seq(SeqVisitor::<$ty, T> {
                    marker: PhantomData,
                })
            }
        }
    };
}

seq_deserialize!(Vec<T>);
seq_deserialize!(VecDeque<T>);
seq_deserialize!(BTreeSet<T>, Ord);
seq_deserialize!(HashSet<T>, Hash, Eq);

// ===================================================================
// Maps
// ===================================================================

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

struct MapVisitor<M, K, V> {
    marker: PhantomData<(M, K, V)>,
}

impl<'de, K, V, M> Visitor<'de> for MapVisitor<M, K, V>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    M: Default + Extend<(K, V)>,
{
    type Value = M;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a map")
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<M, A::Error> {
        let mut out = M::default();
        while let Some(entry) = map.next_entry::<K, V>()? {
            out.extend(std::iter::once(entry));
        }
        Ok(out)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(MapVisitor::<Self, K, V> {
            marker: PhantomData,
        })
    }
}

impl<'de, K: Deserialize<'de> + Hash + Eq, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(MapVisitor::<Self, K, V> {
            marker: PhantomData,
        })
    }
}

// ===================================================================
// Tuples
// ===================================================================

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $name:ident $ty:ident))+) => {
        impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }

        impl<'de, $($ty: Deserialize<'de>),+> Deserialize<'de> for ($($ty,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($ty),+>(PhantomData<($($ty,)+)>);
                impl<'de, $($ty: Deserialize<'de>),+> Visitor<'de> for V<$($ty),+> {
                    type Value = ($($ty,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        let mut _count = 0usize;
                        $(
                            let $name: $ty = match seq.next_element()? {
                                Some(v) => v,
                                None => {
                                    return Err(<__A::Error as DeError>::invalid_length(
                                        _count,
                                        &format_args!("a tuple of length {}", $len),
                                    ))
                                }
                            };
                            _count += 1;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 a A));
tuple_impl!(2 => (0 a A)(1 b B));
tuple_impl!(3 => (0 a A)(1 b B)(2 c C));
tuple_impl!(4 => (0 a A)(1 b B)(2 c C)(3 d D));
tuple_impl!(5 => (0 a A)(1 b B)(2 c C)(3 d D)(4 e E));
tuple_impl!(6 => (0 a A)(1 b B)(2 c C)(3 d D)(4 e E)(5 f F));
