//! In-tree reimplementation of the `serde` data-model traits.
//!
//! The workspace's JSON codec (`fungus_types::json`), checkpoint
//! manifests, and wire protocol are written against serde's serializer /
//! deserializer traits, but the real crate is unavailable in offline
//! build environments. This crate re-declares the trait surface those
//! call sites use — the full `Serializer`/`Deserializer` method families,
//! the access traits, and `forward_to_deserialize_any!` — together with
//! impls for the std types the engine persists. Semantics follow the real
//! crate for this subset: externally-tagged enums, `Option` as
//! some/none, maps as key–value streams, missing `Option` struct fields
//! deserializing to `None`.
//!
//! The matching `#[derive(Serialize, Deserialize)]` macros live in the
//! sibling `serde_derive` crate, re-exported here behind the `derive`
//! feature exactly like the real crate arranges it.

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Implements the remaining `Deserializer` methods by forwarding to
/// `deserialize_any`. Mirrors the real macro for impls whose lifetime
/// parameter is literally `'de` (every impl in this workspace).
#[macro_export]
macro_rules! forward_to_deserialize_any {
    ($($method:ident)*) => {
        $($crate::forward_one_to_deserialize_any!{$method})*
    };
}

/// One forwarded method; knows each method's extra arguments by name.
#[doc(hidden)]
#[macro_export]
macro_rules! forward_one_to_deserialize_any {
    (bool) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_bool}
    };
    (i8) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i8}
    };
    (i16) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i16}
    };
    (i32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i32}
    };
    (i64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i64}
    };
    (i128) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i128}
    };
    (u8) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u8}
    };
    (u16) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u16}
    };
    (u32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u32}
    };
    (u64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u64}
    };
    (u128) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u128}
    };
    (f32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_f32}
    };
    (f64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_f64}
    };
    (char) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_char}
    };
    (str) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_str}
    };
    (string) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_string}
    };
    (bytes) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_bytes}
    };
    (byte_buf) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_byte_buf}
    };
    (option) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_option}
    };
    (unit) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_unit}
    };
    (seq) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_seq}
    };
    (map) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_map}
    };
    (identifier) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_identifier}
    };
    (ignored_any) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_ignored_any}
    };
    (unit_struct) => {
        fn deserialize_unit_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (newtype_struct) => {
        fn deserialize_newtype_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (tuple) => {
        fn deserialize_tuple<V: $crate::de::Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (tuple_struct) => {
        fn deserialize_tuple_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (struct) => {
        fn deserialize_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (enum) => {
        fn deserialize_enum<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
}

/// A forwarded method taking only the visitor.
#[doc(hidden)]
#[macro_export]
macro_rules! forward_simple_to_deserialize_any {
    ($method:ident) => {
        fn $method<V: $crate::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> std::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
}
