//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from any message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// An enum tag matched no known variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A sequence or tuple had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A type buildable from the data model.
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to produce `Self`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful seed producing a value from a deserializer. The stateless
/// case is `PhantomData<T>`, which defers to `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced type.
    type Value;
    /// Drives `deserializer` with this seed.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A format backend producing the data-model shape of the input.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing dispatch on whatever the input holds.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a bool.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an i8.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an i16.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an i32.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an i64.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an i128.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a u8.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a u16.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a u32.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a u64.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a u128.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an f32.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an f64.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a char.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects owned bytes.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an optional value.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a tuple of known arity.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a struct with the given fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects an enum with the given variants.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a struct-field or variant-tag identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Consumes and discards one value of any shape.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

fn unexpected<'de, V: Visitor<'de>, E: Error, T>(visitor: &V, got: &str) -> Result<T, E> {
    struct Expecting<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<&'de ()>);
    impl<'de, V: Visitor<'de>> Display for Expecting<'_, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    Err(E::custom(format_args!(
        "invalid type: {got}, expected {}",
        Expecting(visitor, PhantomData)
    )))
}

/// Receives the data-model shape found in the input. Every method defaults
/// to a type error mentioning [`expecting`](Visitor::expecting); narrower
/// integer and string forms forward to the widest one first.
pub trait Visitor<'de>: Sized {
    /// The value under construction.
    type Value;

    /// Writes "what this visitor expects" into an error message.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a bool.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "boolean")
    }

    /// Visits an i8 (forwards to [`visit_i64`](Visitor::visit_i64)).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Visits an i16 (forwards to i64).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Visits an i32 (forwards to i64).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Visits an i64.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "integer")
    }

    /// Visits a u8 (forwards to u64).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Visits a u16 (forwards to u64).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Visits a u32 (forwards to u64).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Visits a u64.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "unsigned integer")
    }

    /// Visits an f32 (forwards to f64).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(f64::from(v))
    }

    /// Visits an f64.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "float")
    }

    /// Visits a char (forwards to str).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    /// Visits a string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "string")
    }

    /// Visits a borrowed string slice (forwards to str).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string (forwards to str).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits borrowed bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        unexpected(&self, "bytes")
    }

    /// Visits owned bytes (forwards to bytes).
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        unexpected(&self, "none")
    }

    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        unexpected(&self, "some")
    }

    /// Visits a unit.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        unexpected(&self, "unit")
    }

    /// Visits a newtype struct's payload.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        unexpected(&self, "newtype struct")
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        unexpected(&self, "sequence")
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        unexpected(&self, "map")
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        unexpected(&self, "enum")
    }
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Produces the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Produces the next element of a `Deserialize` type.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Element count hint, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<'de, A: SeqAccess<'de> + ?Sized> SeqAccess<'de> for &mut A {
    type Error = A::Error;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error> {
        (**self).next_element_seed(seed)
    }
    fn size_hint(&self) -> Option<usize> {
        (**self).size_hint()
    }
}

/// Streaming access to map entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Produces the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Produces the value for the pending key with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Produces the next key of a `Deserialize` type.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Produces the pending value of a `Deserialize` type.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Produces the next entry of `Deserialize` types.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Entry count hint, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<'de, A: MapAccess<'de> + ?Sized> MapAccess<'de> for &mut A {
    type Error = A::Error;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error> {
        (**self).next_key_seed(seed)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error> {
        (**self).next_value_seed(seed)
    }
    fn size_hint(&self) -> Option<usize> {
        (**self).size_hint()
    }
}

/// Access to an enum's tag, then its payload.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Payload accessor paired with the tag.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Produces the variant tag with a seed, plus the payload accessor.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Produces the variant tag of a `Deserialize` type.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to one enum variant's payload.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Expects no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Expects a single payload value, with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Expects a single payload value of a `Deserialize` type.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Expects a tuple payload of known arity.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Expects a struct payload with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a value into a deserializer over itself.
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Accepts and discards any single value; used by generated code to skip
/// unknown fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<IgnoredAny, D2::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_newtype_struct<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<IgnoredAny, D2::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}
