//! In-tree shim for the `bytes` crate API surface this workspace uses.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>` window; [`BytesMut`] is a growable buffer whose [`Buf`]
//! cursor consumes from the front. Both match the real crate's observable
//! semantics for the subset exercised by the storage codec, WAL, snapshot
//! writer, and the server's wire framing. The real crate's vectored-IO and
//! zero-copy-split refinements are deliberately out of scope.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

// ===================================================================
// Buf / BufMut traits
// ===================================================================

/// Read access to a contiguous cursor over bytes, consumed front-first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes from the front.
    ///
    /// # Panics
    /// Panics when `cnt > self.remaining()`, like the real crate.
    fn advance(&mut self, cnt: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: {} > {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

// ===================================================================
// Bytes
// ===================================================================

/// An immutable, cheaply-cloneable window into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (no copy in spirit; this shim copies once at
    /// construction, which the workspace's three `from_static` call sites
    /// — all tiny magic headers — don't notice).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The window as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Shortens the window to `len` bytes, dropping the tail.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// A copy of the window as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-window of this buffer (clone-cheap).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

// ===================================================================
// BytesMut
// ===================================================================

/// A growable byte buffer; reads consume from the front, writes append.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: everything before it has been consumed via [`Buf`].
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when nothing remains unread.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes the unread remainder into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.data.drain(..self.pos);
        }
        Bytes::from(self.data)
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.data[self.pos..self.pos + at].to_vec();
        self.data.drain(..self.pos + at);
        self.pos = 0;
        BytesMut {
            data: front,
            pos: 0,
        }
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v, pos: 0 }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        frozen.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn split_to_windows_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let front = b.split_to(2);
        assert_eq!(front.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        let again = b.clone();
        assert_eq!(again, b);
    }

    #[test]
    fn bytesmut_split_and_freeze_respect_cursor() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4]);
        assert_eq!(b.get_u8(), 1);
        let front = b.split_to(2);
        assert_eq!(front.as_slice(), &[2, 3]);
        assert_eq!(b.freeze().as_slice(), &[4]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }

    #[test]
    fn big_endian_helpers() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32(1);
        assert_eq!(v, [0, 0, 0, 1]);
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u32(), 1);
    }
}
