//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree
//! `serde` reimplementation.
//!
//! Implemented directly on `proc_macro` token streams — no `syn`/`quote`,
//! which are unavailable offline. The item is parsed by hand (attributes,
//! visibility, struct/enum body) and the generated impl is assembled as a
//! source string, then re-parsed into a token stream. Supported surface,
//! which covers every derive site in this workspace:
//!
//! - structs: named, newtype, tuple, unit; no generics
//! - enums: unit, newtype, tuple, and struct variants (externally tagged)
//! - `#[serde(transparent)]` — (de)serialize as the single inner field
//! - `#[serde(skip)]` — omitted on serialize, `Default::default()` on
//!   deserialize
//! - `#[serde(default)]` / `#[serde(default = "path")]` — missing struct
//!   fields deserialize to `Default::default()` / `path()`
//! - missing `Option<T>` struct fields deserialize to `None`; unknown
//!   fields are consumed via `IgnoredAny`

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

// ===================================================================
// Item model
// ===================================================================

struct Field {
    /// `None` for tuple/newtype fields.
    name: Option<String>,
    /// Type as source text, tokens joined by spaces (re-parses cleanly).
    ty: String,
    skip: bool,
    /// Type's head ident is `Option` — missing field becomes `None`.
    optional: bool,
    /// `#[serde(default)]` → `Some(None)` (use `Default::default()`);
    /// `#[serde(default = "path")]` → `Some(Some(path))` (call `path()`).
    default: Option<Option<String>>,
}

enum Payload {
    Unit,
    Unnamed(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Body {
    Struct { payload: Payload, transparent: bool },
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ===================================================================
// Parsing
// ===================================================================

/// Consumes leading `#[...]` attributes, returning any idents found inside
/// `#[serde(...)]` lists ("transparent", "skip", ...).
fn take_attrs(toks: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut flags = Vec::new();
    loop {
        match (toks.get(*pos), toks.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(head)), Some(TokenTree::Group(list))) =
                    (inner.first(), inner.get(1))
                {
                    if head.to_string() == "serde" && list.delimiter() == Delimiter::Parenthesis {
                        let items: Vec<TokenTree> = list.stream().into_iter().collect();
                        let mut i = 0;
                        while i < items.len() {
                            if let TokenTree::Ident(flag) = &items[i] {
                                // `flag = "value"` pairs fold into one
                                // `flag=value` entry (quotes stripped).
                                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                                    (items.get(i + 1), items.get(i + 2))
                                {
                                    if eq.as_char() == '=' {
                                        let value = lit.to_string().trim_matches('"').to_string();
                                        flags.push(format!("{flag}={value}"));
                                        i += 3;
                                        continue;
                                    }
                                }
                                flags.push(flag.to_string());
                            }
                            i += 1;
                        }
                    }
                }
                *pos += 2;
            }
            _ => return flags,
        }
    }
}

/// Consumes `pub` / `pub(...)` if present.
fn take_vis(toks: &[TokenTree], pos: &mut usize) {
    if matches!(toks.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(toks.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Splits a token list at top-level commas, tracking `<`/`>` nesting so
/// commas inside generic arguments don't split (`HashMap<K, V>`).
fn split_commas(toks: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in toks {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn type_text(toks: &[TokenTree]) -> String {
    // TokenStream's Display knows real token spacing (`::` stays glued);
    // naive per-token joining would print `std : : collections`.
    toks.iter().cloned().collect::<TokenStream>().to_string()
}

fn is_option(toks: &[TokenTree]) -> bool {
    matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "Option")
}

/// Extracts the `default` policy from a field's serde flags.
fn default_flag(flags: &[String]) -> Option<Option<String>> {
    for f in flags {
        if f == "default" {
            return Some(None);
        }
        if let Some(path) = f.strip_prefix("default=") {
            return Some(Some(path.to_string()));
        }
    }
    None
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for seg in split_commas(stream.into_iter().collect()) {
        let mut pos = 0;
        let flags = take_attrs(&seg, &mut pos);
        take_vis(&seg, &mut pos);
        let name = match seg.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        pos += 1;
        match seg.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        let ty_toks = &seg[pos..];
        fields.push(Field {
            name: Some(name),
            ty: type_text(ty_toks),
            skip: flags.iter().any(|f| f == "skip"),
            optional: is_option(ty_toks),
            default: default_flag(&flags),
        });
    }
    fields
}

fn parse_unnamed_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for seg in split_commas(stream.into_iter().collect()) {
        let mut pos = 0;
        let flags = take_attrs(&seg, &mut pos);
        take_vis(&seg, &mut pos);
        let ty_toks = &seg[pos..];
        fields.push(Field {
            name: None,
            ty: type_text(ty_toks),
            skip: flags.iter().any(|f| f == "skip"),
            optional: is_option(ty_toks),
            default: default_flag(&flags),
        });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let flags = take_attrs(&toks, &mut pos);
    let transparent = flags.iter().any(|f| f == "transparent");
    take_vis(&toks, &mut pos);

    let kind = match toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;
    if matches!(toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving `{name}`)");
    }

    let body = match kind.as_str() {
        "struct" => {
            let payload = match toks.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Payload::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Payload::Unnamed(parse_unnamed_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Payload::Unit,
                other => panic!("serde_derive: unsupported struct body: {other:?}"),
            };
            Body::Struct {
                payload,
                transparent,
            }
        }
        "enum" => {
            let group = match toks.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let mut variants = Vec::new();
            for seg in split_commas(group.stream().into_iter().collect()) {
                let mut vpos = 0;
                take_attrs(&seg, &mut vpos);
                let vname = match seg.get(vpos) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, found {other:?}"),
                };
                vpos += 1;
                let payload = match seg.get(vpos) {
                    None => Payload::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Payload::Unnamed(parse_unnamed_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Payload::Named(parse_named_fields(g.stream()))
                    }
                    other => panic!("serde_derive: unsupported variant payload: {other:?}"),
                };
                variants.push(Variant {
                    name: vname,
                    payload,
                });
            }
            Body::Enum(variants)
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item { name, body }
}

// ===================================================================
// Serialize codegen
// ===================================================================

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct {
            payload,
            transparent,
        } => match payload {
            Payload::Unit => {
                format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
            }
            Payload::Unnamed(fields) if *transparent || fields.len() == 1 => {
                // Newtype (and transparent tuple) structs serialize as the
                // inner value in this data model either way.
                if *transparent {
                    "::serde::ser::Serialize::serialize(&self.0, __serializer)".to_string()
                } else {
                    format!(
                        "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                    )
                }
            }
            Payload::Unnamed(fields) => {
                let mut s = format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {}usize)?;\n",
                    fields.iter().filter(|f| !f.skip).count()
                );
                for (i, f) in fields.iter().enumerate() {
                    if f.skip {
                        continue;
                    }
                    let _ = writeln!(
                        s,
                        "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;"
                    );
                }
                s.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
                s
            }
            Payload::Named(fields) if *transparent => {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert!(
                    live.len() == 1,
                    "serde_derive: `transparent` needs exactly one unskipped field"
                );
                let fname = live[0].name.as_ref().unwrap();
                format!("::serde::ser::Serialize::serialize(&self.{fname}, __serializer)")
            }
            Payload::Named(fields) => {
                let mut s = format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                    fields.iter().filter(|f| !f.skip).count()
                );
                for f in fields {
                    let fname = f.name.as_ref().unwrap();
                    if f.skip {
                        let _ = writeln!(
                            s,
                            "::serde::ser::SerializeStruct::skip_field(&mut __state, \"{fname}\")?;"
                        );
                    } else {
                        let _ = writeln!(
                            s,
                            "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{fname}\", &self.{fname})?;"
                        );
                    }
                }
                s.push_str("::serde::ser::SerializeStruct::end(__state)");
                s
            }
        },
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),"
                        );
                    }
                    Payload::Unnamed(fields) if fields.len() == 1 => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),"
                        );
                    }
                    Payload::Unnamed(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let mut block = format!(
                            "let mut __state = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.len()
                        );
                        for b in &binds {
                            let _ = writeln!(
                                block,
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;"
                            );
                        }
                        block.push_str("::serde::ser::SerializeTupleVariant::end(__state)");
                        let _ = writeln!(
                            arms,
                            "{name}::{vname}({}) => {{ {block} }}",
                            binds.join(", ")
                        );
                    }
                    Payload::Named(fields) => {
                        let binds: Vec<&String> =
                            fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                        let mut block = format!(
                            "let mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.len()
                        );
                        for b in &binds {
                            let _ = writeln!(
                                block,
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{b}\", {b})?;"
                            );
                        }
                        block.push_str("::serde::ser::SerializeStructVariant::end(__state)");
                        let _ = writeln!(
                            arms,
                            "{name}::{vname} {{ {} }} => {{ {block} }}",
                            binds
                                .iter()
                                .map(|b| b.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ===================================================================
// Deserialize codegen
// ===================================================================

/// `visit_map` body building `construct` (e.g. `Nested` or
/// `FungusSpec::Periodic`) from named fields. Handles duplicate keys,
/// unknown keys (ignored), missing `Option` fields (→ `None`), skipped
/// fields (→ `Default::default()`).
fn gen_visit_map(construct: &str, fields: &[Field]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for (i, f) in fields.iter().enumerate() {
        let fname = f.name.as_ref().unwrap();
        if f.skip {
            let _ = writeln!(build, "{fname}: ::std::default::Default::default(),");
            continue;
        }
        let ty = &f.ty;
        let _ = writeln!(
            decls,
            "let mut __field_{i}: ::std::option::Option<{ty}> = ::std::option::Option::None;"
        );
        let _ = writeln!(
            arms,
            "\"{fname}\" => {{\n\
             if __field_{i}.is_some() {{\n\
             return ::std::result::Result::Err(<__A::Error as ::serde::de::Error>::duplicate_field(\"{fname}\"));\n\
             }}\n\
             __field_{i} = ::std::option::Option::Some(::serde::de::MapAccess::next_value::<{ty}>(&mut __map)?);\n\
             }}"
        );
        let missing = match &f.default {
            Some(Some(path)) => format!("{path}()"),
            Some(None) => "::std::default::Default::default()".to_string(),
            None if f.optional => "::std::option::Option::None".to_string(),
            None => format!(
                "return ::std::result::Result::Err(<__A::Error as ::serde::de::Error>::missing_field(\"{fname}\"))"
            ),
        };
        let _ = writeln!(
            build,
            "{fname}: match __field_{i} {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => {missing},\n\
             }},"
        );
    }
    format!(
        "fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {decls}\
         while let ::std::option::Option::Some(__key) = \
         ::serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {{\n\
         match __key.as_str() {{\n\
         {arms}\
         _ => {{ let _ = ::serde::de::MapAccess::next_value::<::serde::de::IgnoredAny>(&mut __map)?; }}\n\
         }}\n\
         }}\n\
         ::std::result::Result::Ok({construct} {{\n{build}}})\n\
         }}"
    )
}

/// `visit_seq` body building `construct(...)` from positional fields.
fn gen_visit_seq(construct: &str, fields: &[Field], expecting: &str) -> String {
    let mut steps = String::new();
    let mut names = Vec::new();
    for (i, f) in fields.iter().enumerate() {
        let ty = &f.ty;
        if f.skip {
            let _ = writeln!(
                steps,
                "let __f{i}: {ty} = ::std::default::Default::default();"
            );
        } else {
            let _ = writeln!(
                steps,
                "let __f{i}: {ty} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::std::option::Option::Some(__v) => __v,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 <__A::Error as ::serde::de::Error>::invalid_length({i}usize, &\"{expecting}\")),\n\
                 }};"
            );
        }
        names.push(format!("__f{i}"));
    }
    format!(
        "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {steps}\
         ::std::result::Result::Ok({construct}({}))\n\
         }}",
        names.join(", ")
    )
}

fn visitor_wrap(value_ty: &str, expecting: &str, methods: &str) -> String {
    format!(
        "struct __Visitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         __f.write_str(\"{expecting}\")\n\
         }}\n\
         {methods}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct {
            payload,
            transparent,
        } => match payload {
            Payload::Unit => {
                let visitor = visitor_wrap(
                    name,
                    &format!("unit struct {name}"),
                    &format!(
                        "fn visit_unit<__E: ::serde::de::Error>(self) -> ::std::result::Result<Self::Value, __E> {{\n\
                         ::std::result::Result::Ok({name})\n\
                         }}"
                    ),
                );
                format!(
                    "{visitor}\n\
                     ::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
                )
            }
            Payload::Unnamed(fields) if *transparent || fields.len() == 1 => {
                // Newtype and transparent structs delegate straight to the
                // inner type; the wire shape is the inner value.
                format!(
                    "::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__deserializer)?))"
                )
            }
            Payload::Unnamed(fields) => {
                let visitor = visitor_wrap(
                    name,
                    &format!("tuple struct {name}"),
                    &gen_visit_seq(name, fields, &format!("tuple struct {name}")),
                );
                format!(
                    "{visitor}\n\
                     ::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {}usize, __Visitor)",
                    fields.len()
                )
            }
            Payload::Named(fields) if *transparent => {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert!(
                    live.len() == 1,
                    "serde_derive: `transparent` needs exactly one unskipped field"
                );
                let fname = live[0].name.as_ref().unwrap();
                let mut build =
                    format!("{fname}: ::serde::de::Deserialize::deserialize(__deserializer)?,\n");
                for f in fields.iter().filter(|f| f.skip) {
                    let _ = writeln!(
                        build,
                        "{}: ::std::default::Default::default(),",
                        f.name.as_ref().unwrap()
                    );
                }
                format!("::std::result::Result::Ok({name} {{\n{build}}})")
            }
            Payload::Named(fields) => {
                let field_names: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| format!("\"{}\"", f.name.as_ref().unwrap()))
                    .collect();
                let visitor = visitor_wrap(
                    name,
                    &format!("struct {name}"),
                    &gen_visit_map(name, fields),
                );
                format!(
                    "{visitor}\n\
                     ::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __Visitor)",
                    field_names.join(", ")
                )
            }
        },
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => {
                        let _ = writeln!(
                            arms,
                            "\"{vname}\" => {{\n\
                             ::serde::de::VariantAccess::unit_variant(__payload)?;\n\
                             ::std::result::Result::Ok({name}::{vname})\n\
                             }}"
                        );
                    }
                    Payload::Unnamed(fields) if fields.len() == 1 => {
                        let ty = &fields[0].ty;
                        let _ = writeln!(
                            arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::de::VariantAccess::newtype_variant::<{ty}>(__payload)?)),"
                        );
                    }
                    Payload::Unnamed(fields) => {
                        let inner = visitor_wrap(
                            name,
                            &format!("tuple variant {name}::{vname}"),
                            &gen_visit_seq(
                                &format!("{name}::{vname}"),
                                fields,
                                &format!("tuple variant {name}::{vname}"),
                            ),
                        )
                        .replace("__Visitor", "__VariantVisitor");
                        let _ = writeln!(
                            arms,
                            "\"{vname}\" => {{\n\
                             {inner}\n\
                             ::serde::de::VariantAccess::tuple_variant(__payload, {}usize, __VariantVisitor)\n\
                             }}",
                            fields.len()
                        );
                    }
                    Payload::Named(fields) => {
                        let field_names: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| format!("\"{}\"", f.name.as_ref().unwrap()))
                            .collect();
                        let inner = visitor_wrap(
                            name,
                            &format!("struct variant {name}::{vname}"),
                            &gen_visit_map(&format!("{name}::{vname}"), fields),
                        )
                        .replace("__Visitor", "__VariantVisitor");
                        let _ = writeln!(
                            arms,
                            "\"{vname}\" => {{\n\
                             {inner}\n\
                             ::serde::de::VariantAccess::struct_variant(__payload, &[{}], __VariantVisitor)\n\
                             }}",
                            field_names.join(", ")
                        );
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let visit_enum = format!(
                "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 let (__tag, __payload) = \
                 ::serde::de::EnumAccess::variant::<::std::string::String>(__data)?;\n\
                 match __tag.as_str() {{\n\
                 {arms}\
                 _ => ::std::result::Result::Err(<__A::Error as ::serde::de::Error>::unknown_variant(&__tag, &[{names}])),\n\
                 }}\n\
                 }}",
                names = variant_names.join(", ")
            );
            let visitor = visitor_wrap(name, &format!("enum {name}"), &visit_enum);
            format!(
                "{visitor}\n\
                 ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{}], __Visitor)",
                variant_names.join(", ")
            )
        }
    };

    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ===================================================================
// Entry points
// ===================================================================

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive: generated code failed to parse: {e}\n{code}"))
}

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(gen_serialize(&parse_item(input)))
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(gen_deserialize(&parse_item(input)))
}
