//! In-tree micro-benchmark harness with criterion's API shape.
//!
//! Runs each benchmark with a short warmup, then measures batches until a
//! wall-clock budget is spent, and prints the mean time per iteration.
//! No statistics, plots, or baselines — just enough to keep the
//! workspace's `benches/` compiling and producing useful numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Times one closure invocation pattern.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Measure in batches sized to roughly 10ms each.
        let batch =
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += batch_start.elapsed();
            self.iters += batch;
        }
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<48} (no iterations)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    if ns >= 1_000_000.0 {
        println!("{name:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{name:<48} {:>12.3} µs/iter", ns / 1_000.0);
    } else {
        println!("{name:<48} {:>12.1} ns/iter", ns);
    }
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Top-level harness handle, one per `criterion_group!` target fn.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.full), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner fn invoking each target with a [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
