//! In-tree shim for the `crossbeam` APIs this workspace uses — currently
//! only `crossbeam::channel`. The real crate is unavailable in offline
//! build environments; this implementation provides the same semantics
//! (MPMC, cloneable endpoints, bounded capacity with blocking sends,
//! disconnect detection) over a `Mutex` + `Condvar` queue. Throughput is
//! adequate for the scheduler driver and the server's request fan-out,
//! which move thousands — not millions — of messages per second.

pub mod channel;
