//! Multi-producer multi-consumer channels with optional capacity bounds.
//!
//! Semantics mirror `crossbeam-channel`: both endpoints are cloneable,
//! a bounded channel blocks senders at capacity, and an endpoint whose
//! counterpart set has fully dropped observes disconnection (`recv` drains
//! the queue first, exactly like the real crate).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone. Carries
/// the unsent message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `usize::MAX` means unbounded.
    cap: usize,
    /// Signalled when a message is enqueued or senders disconnect.
    not_empty: Condvar,
    /// Signalled when a message is dequeued or receivers disconnect.
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable; the channel disconnects for
/// senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel that holds at most `cap` in-flight messages. A zero
/// capacity is promoted to one (this shim does not implement rendezvous
/// handoff; the workspace only uses small positive bounds).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or every receiver is dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.shared.cap {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Enqueues without blocking, failing when full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped with the
    /// queue empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Borrowing iterator over received messages; ends at disconnection.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queued message survives disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_then_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let t = thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_fanout_delivers_every_message() {
        let (tx, rx) = bounded(8);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
