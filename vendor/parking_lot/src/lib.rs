//! In-tree shim that exposes the `parking_lot` API surface this workspace
//! uses, implemented over `std::sync`. The real crate is unavailable in
//! offline build environments, and the workspace only relies on the
//! ergonomic differences (no lock poisoning, `lock()` returning the guard
//! directly), not on parking-lot's adaptive spinning.
//!
//! Poisoning is erased by unwrapping into the inner guard: a thread that
//! panicked while holding a lock leaves the protected data in whatever
//! state it reached, exactly like the real parking_lot.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (non-poisoning `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses. Returns true on timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(&mut guard.inner, |g| {
            let (g, r) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Moves a guard through a consuming wait API behind a mutable reference.
/// Safe because the closure always returns a live replacement guard for the
/// same lock before the borrow is observable again.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    unsafe {
        let taken = std::ptr::read(slot);
        let replaced = f(taken);
        std::ptr::write(slot, replaced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((r1.len(), r2.len()), (1, 1));
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout_reports() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
