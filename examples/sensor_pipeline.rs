//! An IoT ingestion pipeline with decay and distillation.
//!
//! A fleet of sensors streams readings into a container with a sliding
//! retention horizon. Departing tuples — whether consumed by dashboards or
//! rotted away — are distilled into bounded summaries, so long-run
//! statistics survive even though raw data lives only briefly.
//!
//! ```text
//! cargo run --example sensor_pipeline
//! ```

use spacefungus::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new(7);
    let mut fleet = SensorStream::new(25, 40, db.rng());

    // Raw readings live ~60 cycles; everything leaving the extent feeds
    // two summaries: running moments of the reading, and a distinct count
    // of the sensors ever seen.
    let policy = ContainerPolicy::new(FungusSpec::Retention { max_age: 60 })
        .with_distiller(DistillSpec {
            name: "reading-stats".into(),
            column: Some("reading".into()),
            summary: SummarySpec::Moments,
            trigger: DistillTrigger::Both,
        })
        .with_distiller(DistillSpec {
            name: "sensors-seen".into(),
            column: Some("sensor".into()),
            summary: SummarySpec::Distinct { precision: 12 },
            trigger: DistillTrigger::Both,
        });
    db.create_container("readings", fleet.schema().clone(), policy)?;

    println!("tick | live rows | dashboard avg (window 20) | health");
    println!("-----+-----------+---------------------------+-------");
    for t in 1..=300u64 {
        db.tick();
        let rows = fleet.rows_at(Tick(t));
        db.insert_batch("readings", rows)?;

        if t % 50 == 0 {
            let out = db.execute("SELECT AVG(reading) FROM readings WHERE $age <= 20")?;
            let health = db.health("readings")?;
            let live = db.container("readings")?.read().live_count();
            println!(
                "{t:>4} | {live:>9} | {:>25} | {:.2}",
                out.result.scalar()?,
                health.score
            );
        }
    }

    // Raw data from the early run is long gone — the summaries remember.
    let container = db.container("readings")?;
    let guard = container.read();
    println!("\ninserted in total : {}", guard.metrics().inserts);
    println!("live right now    : {}", guard.live_count());
    if let Some(AnySummary::Moments(m)) = guard.distiller().summary("reading-stats") {
        println!(
            "departed readings : n={} mean={:.2} min={:.2} max={:.2}",
            m.count(),
            m.mean().unwrap_or(0.0),
            m.min().unwrap_or(0.0),
            m.max().unwrap_or(0.0),
        );
    }
    if let Some(AnySummary::Distinct(h)) = guard.distiller().summary("sensors-seen") {
        println!("distinct sensors  : ≈{:.0}", h.estimate());
    }
    Ok(())
}
