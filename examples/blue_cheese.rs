//! Watch the blue cheese grow.
//!
//! A static extent decays under EGI; every few cycles the example renders
//! the time axis as a strip of characters — `█` live and fresh, `▒`
//! infected (a rotting spot), `·` already eaten — so the paper's
//! Blue-Cheese picture is literally visible in the terminal.
//!
//! ```text
//! cargo run --example blue_cheese
//! ```

use spacefungus::fungus_core::Container;
use spacefungus::prelude::*;

const EXTENT: u64 = 4_000;
const STRIP: usize = 100; // terminal cells; each covers EXTENT/STRIP tuples

fn render_strip(container: &Container) -> String {
    let store = container.store();
    let bucket = (EXTENT as usize / STRIP).max(1);
    // Classify each bucket by the worst state inside it.
    let mut cells = vec![' '; STRIP];
    for (i, cell) in cells.iter_mut().enumerate() {
        let lo = (i * bucket) as u64;
        let hi = lo + bucket as u64;
        let mut live = 0usize;
        let mut infected = 0usize;
        let mut total = 0usize;
        for id in lo..hi {
            total += 1;
            if let Some(t) = store.get(TupleId(id)) {
                live += 1;
                if t.meta.infected {
                    infected += 1;
                }
            }
        }
        *cell = if live == 0 {
            '·' // fully eaten
        } else if infected * 2 >= live {
            '▒' // rotting spot
        } else if live < total {
            '▚' // partially eaten
        } else {
            '█' // fresh cheese
        };
    }
    cells.into_iter().collect()
}

fn main() -> Result<()> {
    let schema = Schema::from_pairs(&[("v", DataType::Int)])?;
    let policy = ContainerPolicy::new(FungusSpec::Egi(EgiConfig {
        seeds_per_tick: 1,
        spread_width: 1,
        rot_rate: 0.04,
        seed_bias: SeedBias::AgePow(1.0),
    }))
    .with_compaction_every(None); // keep the holes visible
    let mut cheese = Container::new("cheese", schema, policy, &DeterministicRng::new(99))?;

    for i in 0..EXTENT {
        cheese.insert(vec![Value::Int(i as i64)], Tick(i / 50))?;
    }

    println!("legend: █ fresh   ▒ rotting spot   ▚ nibbled   · eaten\n");
    let start = EXTENT / 50 + 1;
    for round in 0..20u64 {
        for step in 0..4 {
            cheese.decay_tick(Tick(start + round * 4 + step));
        }
        let census = cheese.spot_census();
        println!(
            "t+{:>3} |{}| live {:>4}, spots {:>2} (largest {:>3}), holes {:>2}",
            (round + 1) * 4,
            render_strip(&cheese),
            cheese.live_count(),
            census.infected_spots,
            census.largest_infected_spot,
            census.rot_holes,
        );
    }

    println!(
        "\n\"It remains edible for a long time though.\"  — {:.0}% of the cheese survives.",
        100.0 * cheese.live_count() as f64 / EXTENT as f64
    );
    Ok(())
}
