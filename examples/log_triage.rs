//! Log triage under the second natural law.
//!
//! Bursty service logs land in a container attacked by the EGI fungus.
//! An on-call loop *consumes* errors as it triages them (law 2) and
//! periodically harvests nearly-rotten rows into a latency histogram and a
//! top-k of noisy services, keeping the store healthy while raw logs stay
//! small.
//!
//! ```text
//! cargo run --example log_triage
//! ```

use spacefungus::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new(1234);
    let mut logs = LogEventStream::new(12, 30, 200, db.rng());

    let policy = ContainerPolicy::new(FungusSpec::Egi(EgiConfig {
        seeds_per_tick: 2,
        spread_width: 1,
        rot_rate: 0.08,
        seed_bias: SeedBias::AgePow(1.0),
    }))
    .with_distiller(DistillSpec {
        name: "latency-hist".into(),
        column: Some("latency_ms".into()),
        summary: SummarySpec::Histogram {
            lo: 0.0,
            hi: 500.0,
            bins: 50,
        },
        trigger: DistillTrigger::Both,
    })
    .with_distiller(DistillSpec {
        name: "noisy-services".into(),
        column: Some("service".into()),
        summary: SummarySpec::TopK { k: 8 },
        trigger: DistillTrigger::Both,
    });
    db.create_container("logs", logs.schema().clone(), policy)?;

    let mut errors_triaged = 0usize;
    for t in 1..=400u64 {
        db.tick();
        db.insert_batch("logs", logs.rows_at(Tick(t)))?;

        // Triage: every error is read once and consumed.
        let out = db.execute(
            "SELECT service, latency_ms FROM logs WHERE level = 'ERROR' OR level = 'FATAL' CONSUME",
        )?;
        errors_triaged += out.result.consumed.len();

        // Harvest the rotting tail before the fungus wins.
        if t % 10 == 0 {
            db.execute("SELECT latency_ms FROM logs WHERE $freshness < 0.4 CONSUME")?;
        }
    }

    let container = db.container("logs")?;
    let guard = container.read();
    println!("errors triaged          : {errors_triaged}");
    println!("raw log rows live       : {}", guard.live_count());
    println!("rows ever ingested      : {}", guard.metrics().inserts);
    println!(
        "consumed vs rotted      : {} vs {}",
        guard.metrics().tuples_consumed,
        guard.metrics().tuples_rotted
    );

    if let Some(AnySummary::Histogram(h)) = guard.distiller().summary("latency-hist") {
        println!(
            "latency from summaries  : p50≈{:.1}ms p99≈{:.1}ms (n={})",
            h.quantile(0.5).unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0.0),
            h.count()
        );
    }
    if let Some(AnySummary::TopK(t)) = guard.distiller().summary("noisy-services") {
        println!("noisiest services       :");
        for hit in t.top(3) {
            println!("  {:<8} ≈{} events", hit.key.to_string(), hit.count);
        }
    }

    let report = db.health("logs")?;
    println!(
        "\nfinal health            : {:.2} ({:?}), waste ratio {:.2}",
        report.score, report.status, report.waste_ratio
    );

    let census = guard.spot_census();
    println!(
        "rot structure           : {} active spots (largest {}), {} holes eaten",
        census.infected_spots, census.largest_infected_spot, census.rot_holes
    );
    Ok(())
}
