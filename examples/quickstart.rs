//! Quickstart: the two natural laws in twenty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spacefungus::prelude::*;

fn main() -> Result<()> {
    // A deterministic database: same seed, same run.
    let mut db = Database::new(42);

    // Law 1 — attach a data fungus. Readings older than 10 decay cycles rot.
    let schema = Schema::from_pairs(&[("sensor", DataType::Int), ("reading", DataType::Float)])?;
    db.create_container(
        "readings",
        schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 10 }),
    )?;

    // Ingest a little history.
    for i in 0..20 {
        db.execute(&format!(
            "INSERT INTO readings VALUES ({}, {})",
            i % 4,
            15.0 + i as f64
        ))?;
        db.tick(); // one decay cycle per insert
    }

    // The fungus has eaten everything older than 10 ticks.
    let out = db.execute("SELECT COUNT(*) FROM readings")?;
    println!("live after 20 ticks with TTL 10 : {}", out.result.scalar()?);

    // Freshness is queryable as a pseudo-column.
    let out = db.execute(
        "SELECT sensor, reading, $freshness FROM readings ORDER BY $freshness DESC LIMIT 3",
    )?;
    println!("\nfreshest three rows:");
    for row in &out.result.rows {
        println!(
            "  sensor={} reading={} freshness={}",
            row[0], row[1], row[2]
        );
    }

    // Law 2 — reading with CONSUME removes what you read.
    let out = db.execute("SELECT reading FROM readings WHERE sensor = 1 CONSUME")?;
    println!("\nconsumed {} rows for sensor 1", out.result.consumed.len());
    let out = db.execute("SELECT COUNT(*) FROM readings WHERE sensor = 1")?;
    println!("rows left for sensor 1         : {}", out.result.scalar()?);

    // The health monitor tells you how well you are tending the store.
    let report = db.health("readings")?;
    println!("\nhealth score {:.2} ({:?})", report.score, report.status);
    for r in &report.recommendations {
        println!("  advice: {r}");
    }
    Ok(())
}
