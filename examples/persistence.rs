//! Durability: snapshots and write-ahead-log recovery.
//!
//! The decay state — per-tuple freshness, infections, access counts,
//! tombstone reasons — is as much database state as the values are. This
//! example snapshots a half-rotted container, keeps a WAL of everything
//! that happens afterwards, "crashes", and recovers the exact state by
//! replaying the log over the snapshot.
//!
//! ```text
//! cargo run --example persistence
//! ```

use spacefungus::fungus_storage::{
    decode_table, encode_table, LogRecord, TableStore, TombstoneReason, WalReader, WalWriter,
};
use spacefungus::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("spacefungus-persistence-demo");
    std::fs::create_dir_all(&dir)?;
    let wal_path = dir.join("demo.wal");
    std::fs::remove_file(&wal_path).ok();

    // --- live system -----------------------------------------------------
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)])?;
    let mut store = TableStore::new(schema, StorageConfig::default())?;
    for i in 0..100i64 {
        store.insert(
            vec![Value::Int(i), Value::float(i as f64 / 2.0)],
            Tick(i as u64),
        )?;
    }
    // Some decay happened before the snapshot.
    for i in 0..30u64 {
        store.decay(TupleId(i), 0.5);
    }
    store.infect(TupleId(40), Tick(100));

    let snapshot = encode_table(&store);
    println!(
        "snapshot taken: {} bytes, {} live tuples",
        snapshot.len(),
        store.live_count()
    );

    // --- post-snapshot activity, logged to the WAL ------------------------
    let mut wal = WalWriter::open(&wal_path)?;
    let id = store.insert(vec![Value::Int(100), Value::float(50.0)], Tick(101))?;
    wal.append(&LogRecord::Insert(store.get(id).unwrap().clone()))?;

    store.decay(TupleId(40), 0.9);
    wal.append(&LogRecord::SetFreshness(
        TupleId(40),
        store.get(TupleId(40)).unwrap().meta.freshness.get(),
    ))?;

    store.delete(TupleId(5), TombstoneReason::Consumed);
    wal.append(&LogRecord::Delete(TupleId(5), TombstoneReason::Consumed))?;

    store.touch(TupleId(10), Tick(102));
    wal.append(&LogRecord::Touch(TupleId(10), Tick(102)))?;
    wal.append(&LogRecord::TickMark(Tick(102)))?;
    wal.flush()?;
    println!("wal written   : {} records", wal.records_written());

    // --- crash! recover from snapshot + wal -------------------------------
    let mut recovered = decode_table(snapshot)?;
    let last_tick = WalReader::open(&wal_path)?.replay_into(&mut recovered)?;

    println!("\nrecovered at  : {:?}", last_tick.unwrap());
    println!(
        "live tuples   : {} (original {})",
        recovered.live_count(),
        store.live_count()
    );
    assert_eq!(recovered.live_count(), store.live_count());
    assert_eq!(
        recovered.get(TupleId(40)).unwrap().meta.freshness,
        store.get(TupleId(40)).unwrap().meta.freshness,
        "decay state survives recovery"
    );
    assert_eq!(
        recovered.get(TupleId(10)).unwrap().meta.access_count,
        store.get(TupleId(10)).unwrap().meta.access_count,
        "access history survives recovery"
    );
    assert!(
        recovered.get(TupleId(5)).is_none(),
        "consumed tuple stays consumed"
    );
    assert_eq!(recovered.infected_ids(), store.infected_ids());
    println!("state matches : decay, infections, accesses, tombstones ✓");

    std::fs::remove_file(&wal_path).ok();
    Ok(())
}
