//! A runnable fungus server.
//!
//! ```text
//! cargo run --release --example serve -- [--port N] [--tick-ms N]
//!     [--workers N] [--seed N] [--ddl script.sql] [--checkpoint DIR]
//! ```
//!
//! Binds a TCP listener, spawns the worker pool and the wall-clock decay
//! driver, and serves until killed. Talk to it with
//! `fungus_server::Client` or the E11 load generator. Without `--ddl` it
//! creates a demo `sensors` container.
//!
//! ```text
//! cargo run --release --example serve -- --smoke
//! ```
//!
//! Self-driving smoke mode (used by CI): starts the server on a free
//! loopback port, drives it with 8 concurrent clients through 10 000+
//! requests under a 1 ms decay driver, then drains, checks that every
//! request got a response, and exits 0 — or panics loudly.

use std::time::{Duration, Instant};

use spacefungus::fungus_core::{Database, SharedDatabase};
use spacefungus::fungus_server::{serve, Client, ServerConfig};
use spacefungus::fungus_types::Tick;
use spacefungus::fungus_workload::{ClientMix, ClientOp};

const DEFAULT_DDL: &str = "CREATE CONTAINER sensors \
    (sensor INT NOT NULL, reading FLOAT) \
    WITH FUNGUS ttl(120) DECAY EVERY 2";

struct Args {
    port: u16,
    tick_ms: u64,
    workers: usize,
    seed: u64,
    ddl: Option<String>,
    checkpoint: Option<std::path::PathBuf>,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 4420,
        tick_ms: 1000,
        workers: 8,
        seed: 42,
        ddl: None,
        checkpoint: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--port" => args.port = value("--port").parse().expect("--port: u16"),
            "--tick-ms" => args.tick_ms = value("--tick-ms").parse().expect("--tick-ms: u64"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: usize"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: u64"),
            "--ddl" => {
                let path = value("--ddl");
                args.ddl = Some(std::fs::read_to_string(&path).expect("read DDL script"));
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint").into()),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--port N] [--tick-ms N] [--workers N] [--seed N] \
                     [--ddl FILE] [--checkpoint DIR] [--smoke]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let db = SharedDatabase::new(Database::new(args.seed));
    let script = args.ddl.as_deref().unwrap_or(DEFAULT_DDL);
    for outcome in db.execute_script(script).expect("DDL script failed") {
        drop(outcome);
    }
    eprintln!("containers: {:?}", db.container_names());

    if args.smoke {
        smoke(db);
        return;
    }

    let config = ServerConfig {
        addr: ([127, 0, 0, 1], args.port).into(),
        workers: args.workers,
        tick_period: Some(Duration::from_millis(args.tick_ms.max(1))),
        checkpoint_dir: args.checkpoint.clone(),
        ..ServerConfig::default()
    };
    let handle = serve(db, config).expect("server start");
    eprintln!(
        "fungus-server listening on {} ({} workers, decay every {} ms)",
        handle.addr(),
        args.workers,
        args.tick_ms
    );
    // Serve until killed; the decay driver keeps rotting data while we
    // park. (No signal handling by design: kill -9 loses at most the
    // un-checkpointed state, which the paper says is rotting anyway.)
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// The CI smoke scenario: 8 clients × 1300 requests, live decay, drain.
fn smoke(db: SharedDatabase) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 1300;

    let table = db
        .container_names()
        .first()
        .cloned()
        .expect("smoke needs at least one container");
    let config = ServerConfig {
        workers: CLIENTS,
        tick_period: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    };
    let handle = serve(db, config).expect("server start");
    let addr = handle.addr();
    eprintln!("smoke: {CLIENTS} clients x {PER_CLIENT} requests against {addr}");

    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        let table = table.clone();
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(9000 + c as u64, table, "sensor", "reading", 64, 20)
                .with_consuming_reads(true)
                .with_health_every(101);
            let mut client = Client::connect(addr).expect("connect");
            let mut errors = 0u64;
            for i in 0..PER_CLIENT {
                let resp = match mix.next_op(Tick(i + 1)) {
                    ClientOp::Sql(sql) => client.sql(sql),
                    ClientOp::Dot(line) => client.dot(line),
                }
                .expect("request failed");
                if resp.is_error() {
                    errors += 1;
                }
            }
            client.close();
            errors
        }));
    }
    let errors: u64 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    let elapsed = started.elapsed();

    let ticks = handle.db().now().get();
    let live = handle.db().live_count(&table);
    let report = handle.shutdown().expect("graceful shutdown");

    let expected = (CLIENTS as u64) * PER_CLIENT;
    assert_eq!(report.metrics.requests, expected, "request count");
    assert_eq!(
        report.metrics.requests, report.metrics.responses,
        "dropped responses"
    );
    assert_eq!(errors, 0, "statement errors");
    assert!(ticks > 0, "decay driver never ticked");

    println!(
        "smoke OK: {expected} requests in {:.2}s ({:.0} req/s), \
         0 dropped, 0 errors, {ticks} decay ticks, live extent {live}",
        elapsed.as_secs_f64(),
        expected as f64 / elapsed.as_secs_f64()
    );
}
