//! A runnable fungus server.
//!
//! ```text
//! cargo run --release --example serve -- [--port N] [--tick-ms N]
//!     [--workers N] [--seed N] [--ddl script.sql] [--checkpoint DIR]
//!     [--fault-seed N] [--shards N] [--reactor]
//! ```
//!
//! Binds a TCP listener, spawns the worker pool and the wall-clock decay
//! driver, and serves until killed. Talk to it with
//! `fungus_server::Client` or the E11 load generator. Without `--ddl` it
//! creates a demo `sensors` container.
//!
//! `--shards N` is sugar for adding `WITH SHARDING (rows_per_shard = N)`
//! to every container the DDL script creates: decay fans out per shard,
//! scans prune whole shards by tick/freshness bounds, and fully rotted
//! shards detach in O(1). Answers are bit-identical to the unsharded
//! layout under the same seed; the shard gauges show up in `.stats`.
//! Prefer declaring sharding in the DDL itself (`SHARDS n`, or the full
//! `WITH SHARDING (rows_per_shard = n, adaptive = on, …)` form for the
//! adaptive split/merge lifecycle) — the flag survives for scripts that
//! predate the clause and touches only containers the DDL left unsharded.
//!
//! `--fault-seed N` arms the chaos fault plan: every connection's streams
//! get a deterministic schedule (seeded by N) of torn writes, transient
//! I/O errors, read delays, and mid-frame disconnects, and one early
//! connection panics its worker to exercise supervisor respawn. The same
//! seed replays the same faults.
//!
//! `--reactor` swaps the thread-per-connection front-end for the
//! event-driven connection layer (`IoModel::Reactor`): sessions as state
//! machines over a poll/epoll reactor, requests dispatched to the same
//! worker pool — open sessions scale past the pool instead of capping at
//! `workers + backlog`. Unix only.
//!
//! ```text
//! cargo run --release --example serve -- --smoke [--fault-seed N]
//! ```
//!
//! Self-driving smoke mode (used by CI): starts the server on a free
//! loopback port, drives it with 8 concurrent clients through 10 000+
//! requests under a 1 ms decay driver, then drains, checks that every
//! request got a response, and exits 0 — or panics loudly. With
//! `--fault-seed` the clients switch to fault-aware retrying mode and the
//! checks relax to survival invariants: no protocol corruption, retry-safe
//! requests all answered, decay still ticking, panicked workers respawned.

use std::time::{Duration, Instant};

use spacefungus::fungus_core::{resolve_sharding, Database, SharedDatabase};
use spacefungus::fungus_query::ShardingClause;
use spacefungus::fungus_server::{
    serve, Client, ClientError, FaultPlan, IoModel, RetryPolicy, ServerConfig,
};
use spacefungus::fungus_types::Tick;
use spacefungus::fungus_workload::{ClientMix, ClientOp};

const DEFAULT_DDL: &str = "CREATE CONTAINER sensors \
    (sensor INT NOT NULL, reading FLOAT) \
    WITH FUNGUS ttl(120) DECAY EVERY 2";

struct Args {
    port: u16,
    tick_ms: u64,
    workers: usize,
    seed: u64,
    fault_seed: Option<u64>,
    shards: Option<u64>,
    ddl: Option<String>,
    checkpoint: Option<std::path::PathBuf>,
    smoke: bool,
    reactor: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 4420,
        tick_ms: 1000,
        workers: 8,
        seed: 42,
        fault_seed: None,
        shards: None,
        ddl: None,
        checkpoint: None,
        smoke: false,
        reactor: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--port" => args.port = value("--port").parse().expect("--port: u16"),
            "--tick-ms" => args.tick_ms = value("--tick-ms").parse().expect("--tick-ms: u64"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: usize"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: u64"),
            "--fault-seed" => {
                args.fault_seed = Some(value("--fault-seed").parse().expect("--fault-seed: u64"))
            }
            "--shards" => {
                args.shards = Some(value("--shards").parse().expect("--shards: rows per shard"))
            }
            "--ddl" => {
                let path = value("--ddl");
                args.ddl = Some(std::fs::read_to_string(&path).expect("read DDL script"));
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint").into()),
            "--smoke" => args.smoke = true,
            "--reactor" => args.reactor = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--port N] [--tick-ms N] [--workers N] [--seed N] \
                     [--fault-seed N] [--shards N] [--ddl FILE] [--checkpoint DIR] \
                     [--reactor] [--smoke]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let db = SharedDatabase::new(Database::new(args.seed));
    let script = args.ddl.as_deref().unwrap_or(DEFAULT_DDL);
    for outcome in db.execute_script(script).expect("DDL script failed") {
        drop(outcome);
    }
    if let Some(rows_per_shard) = args.shards {
        apply_sharding(&db, rows_per_shard);
        eprintln!("sharding: time-range shards of {rows_per_shard} rows");
    }
    eprintln!("containers: {:?}", db.container_names());

    if args.smoke {
        smoke(db, args.fault_seed, args.reactor);
        return;
    }

    let config = ServerConfig {
        addr: ([127, 0, 0, 1], args.port).into(),
        workers: args.workers,
        tick_period: Some(Duration::from_millis(args.tick_ms.max(1))),
        checkpoint_dir: args.checkpoint.clone(),
        fault_plan: args.fault_seed.map(FaultPlan::chaos),
        io_model: if args.reactor {
            IoModel::Reactor
        } else {
            IoModel::Threaded
        },
        ..ServerConfig::default()
    };
    let handle = serve(db, config).expect("server start");
    eprintln!(
        "fungus-server listening on {} ({} workers, {} front-end, decay every {} ms)",
        handle.addr(),
        args.workers,
        if args.reactor { "reactor" } else { "threaded" },
        args.tick_ms
    );
    if let Some(seed) = args.fault_seed {
        eprintln!("chaos fault plan armed with seed {seed} — connections will misbehave");
    }
    // Serve until killed; the decay driver keeps rotting data while we
    // park. (No signal handling by design: kill -9 loses at most the
    // un-checkpointed state, which the paper says is rotting anyway.)
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Re-creates every (still empty, just-DDL'd) container that the script
/// left unsharded, as if its `CREATE CONTAINER` had carried
/// `WITH SHARDING (rows_per_shard = N)` — the flag is boot-time sugar for
/// the DDL clause and goes through the same [`resolve_sharding`] path, so
/// defaults live in one place. Containers the DDL already sharded keep
/// their declared layout.
fn apply_sharding(db: &SharedDatabase, rows_per_shard: u64) {
    let spec = resolve_sharding(&ShardingClause {
        rows_per_shard,
        adaptive: None,
        low_water: None,
        workers: None,
    })
    .expect("--shards: invalid shard spec");
    let mut guard = db.write();
    for name in guard.container_names() {
        let (schema, policy) = {
            let c = guard.container(&name).expect("container just listed");
            let g = c.read();
            if g.policy().sharding.is_some() {
                continue; // the DDL's own clause wins
            }
            (g.schema().clone(), g.policy().clone())
        };
        guard.drop_container(&name);
        guard
            .create_container(name, schema, policy.with_sharding(spec))
            .expect("re-create container with sharding");
    }
}

/// The CI smoke scenario: 8 clients × 1300 requests, live decay, drain.
/// With a fault seed, the same load runs through the chaos plan with
/// retrying fault-aware clients and survival-invariant checks.
fn smoke(db: SharedDatabase, fault_seed: Option<u64>, reactor: bool) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 1300;

    let table = db
        .container_names()
        .first()
        .cloned()
        .expect("smoke needs at least one container");
    let config = ServerConfig {
        workers: CLIENTS,
        tick_period: Some(Duration::from_millis(1)),
        fault_plan: fault_seed.map(FaultPlan::chaos),
        io_model: if reactor {
            IoModel::Reactor
        } else {
            IoModel::Threaded
        },
        ..ServerConfig::default()
    };
    let handle = serve(db, config).expect("server start");
    let addr = handle.addr();
    match fault_seed {
        Some(seed) => eprintln!(
            "chaos smoke: {CLIENTS} clients x {PER_CLIENT} requests against {addr} \
             (fault seed {seed})"
        ),
        None => eprintln!("smoke: {CLIENTS} clients x {PER_CLIENT} requests against {addr}"),
    }

    // The fault plan panics a worker on purpose; keep that expected panic
    // out of the smoke log (everything else still prints normally).
    if fault_seed.is_some() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected worker panic") {
                default_hook(info);
            }
        }));
    }

    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        let table = table.clone();
        let chaos = fault_seed.is_some();
        threads.push(std::thread::spawn(move || {
            let mut mix = ClientMix::new(9000 + c as u64, table, "sensor", "reading", 64, 20)
                .with_consuming_reads(true)
                .with_health_every(101)
                .with_fault_aware(chaos);
            let mut client = if chaos {
                Client::connect_with_retry(
                    addr,
                    RetryPolicy::new(77 + c as u64)
                        .with_max_attempts(6)
                        .with_base_delay(Duration::from_millis(1))
                        .with_max_delay(Duration::from_millis(20)),
                )
            } else {
                Client::connect(addr)
            }
            .expect("connect");
            let mut errors = 0u64;
            let mut dropped_writes = 0u64;
            for i in 0..PER_CLIENT {
                let op = mix.next_op(Tick(i + 1));
                let retry_safe = op.is_retry_safe();
                let result = match op {
                    ClientOp::Sql(sql) => client.sql(sql),
                    ClientOp::Dot(line) => client.dot(line),
                };
                match result {
                    Ok(resp) => {
                        if resp.is_error() {
                            errors += 1;
                        }
                    }
                    // Under chaos, a non-retryable op may die with the
                    // transport; that is the guard working, not a bug.
                    // A protocol error would mean corruption — panic.
                    Err(err) if chaos && err.is_transport() && !retry_safe => {
                        dropped_writes += 1;
                    }
                    Err(ClientError::RetriesExhausted { attempts, last })
                        if chaos && retry_safe =>
                    {
                        panic!("retry-safe op exhausted {attempts} attempts: {last}")
                    }
                    Err(err) => panic!("request failed: {err}"),
                }
            }
            let stats = client.stats();
            client.close();
            (errors, dropped_writes, stats)
        }));
    }
    let mut errors = 0u64;
    let mut dropped_writes = 0u64;
    let mut retries = 0u64;
    for t in threads {
        let (e, d, stats) = t.join().expect("client");
        errors += e;
        dropped_writes += d;
        retries += stats.retries;
    }
    let elapsed = started.elapsed();

    let ticks = handle.db().now().get();
    let live = handle.db().live_count(&table);
    let report = handle.shutdown().expect("graceful shutdown");

    let expected = (CLIENTS as u64) * PER_CLIENT;
    assert_eq!(errors, 0, "statement errors");
    assert!(ticks > 0, "decay driver never ticked");

    if fault_seed.is_some() {
        // Survival invariants: every answered request got exactly one
        // response, faults were actually injected, the decay driver never
        // stopped, and any panicked worker came back.
        let m = &report.metrics;
        assert!(m.requests >= m.responses, "responses without requests");
        assert!(m.faults_injected > 0, "chaos run injected no faults");
        assert_eq!(
            m.worker_panics, m.workers_respawned,
            "panicked workers not all respawned"
        );
        assert!(m.driver_ticks > 0, "driver tick counter never moved");
        println!(
            "chaos smoke OK: {expected} requests in {:.2}s, {} faults injected, \
             {} retries, {dropped_writes} unretried writes surfaced, \
             {}/{} workers respawned, {ticks} decay ticks, live extent {live}",
            elapsed.as_secs_f64(),
            m.faults_injected,
            retries,
            m.workers_respawned,
            m.worker_panics,
        );
    } else {
        assert_eq!(report.metrics.requests, expected, "request count");
        assert_eq!(
            report.metrics.requests, report.metrics.responses,
            "dropped responses"
        );
        println!(
            "smoke OK: {expected} requests in {:.2}s ({:.0} req/s), \
             0 dropped, 0 errors, {ticks} decay ticks, live extent {live}",
            elapsed.as_secs_f64(),
            expected as f64 / elapsed.as_secs_f64()
        );
    }
}
