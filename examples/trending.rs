//! Trending items over a rotting store — the full cooking loop via DDL.
//!
//! Item popularity is Zipfian at every instant, but the hot identities
//! rotate over virtual time. Raw click tuples live only `ttl` ticks; a
//! DDL-declared fading top-k sketch absorbs every departure with its
//! departure tick, so `SUMMARIZE` keeps answering "what is hot right
//! now" from bounded state long after the evidence rotted — and the
//! answer *moves* as the trend does, because old weight decays away.
//!
//! ```text
//! cargo run --example trending [-- --smoke]
//! ```
//!
//! `--smoke` runs a short self-checking pass (used by CI): at every
//! report the current trend's head item must appear in the sketch's
//! top 5, with most of the raw stream already rotted.

use spacefungus::prelude::*;

const TTL: u64 = 40;
const ROTATION: u64 = 200;
const LAMBDA: f64 = 0.05;

fn main() -> Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (horizon, report_every) = if smoke { (240u64, 60u64) } else { (1200, 200) };

    let mut db = Database::new(2026);
    db.execute_ddl(&format!(
        "CREATE CONTAINER clicks (item INT NOT NULL, session INT) \
         WITH FUNGUS ttl({TTL}) \
         WITH DISTILL (hot = fading_topk(64, {LAMBDA}) ON item, \
                       fresh = tbs(64, {LAMBDA}) ON item, \
                       exit_health = moments)",
    ))?;

    let mut stream = TrendingItems::new(300, 80, 1.1, ROTATION, db.rng());
    let mut inserted = 0u64;

    println!("tick | live | rotting trend: sketch top-5 (weight)        | nominal hot");
    println!("-----+------+----------------------------------------------+------------");
    for _ in 0..horizon {
        let rows = stream.rows_at(db.now());
        inserted += rows.len() as u64;
        db.insert_batch("clicks", rows)?;
        let now = db.tick().get();

        if now.is_multiple_of(report_every) {
            let out = db.execute("SUMMARIZE hot FROM clicks TOP 5")?;
            let top: Vec<String> = out
                .result
                .rows
                .iter()
                .map(|r| format!("{}({})", r[1], truncate(&r[2])))
                .collect();
            // The sketch only knows departures, so its view of the trend
            // lags by the TTL — plus ~1/λ more for fresh evidence to
            // out-decay the previous epoch's accumulated weight. Compare
            // against the epoch that dominates the sketch's decayed mass.
            let lag = TTL + (1.0 / LAMBDA) as u64;
            let nominal = stream.item_at(0, Tick(now.saturating_sub(lag)));
            let live = db.container("clicks")?.read().live_count();
            println!("{now:>4} | {live:>4} | {:<44} | {nominal}", top.join(" "));

            if smoke {
                let hit = out.result.rows.iter().any(|r| r[1] == Value::Int(nominal));
                assert!(
                    hit,
                    "trend head {nominal} missing from sketch top-5: {top:?}"
                );
            }
        }
    }

    // The raw stream is long gone; the summaries remember.
    let live = db.container("clicks")?.read().live_count() as u64;
    let t = db.sketch_telemetry();
    println!("\ninserted          : {inserted}");
    println!("live right now    : {live}");
    println!(
        "rotted            : {} ({:.1}%)",
        inserted - live,
        100.0 * (inserted - live) as f64 / inserted as f64
    );
    println!(
        "sketches cooking  : {} ({} departures absorbed)",
        t.sketches, t.absorbed
    );

    let audit = db.execute("SUMMARIZE exit_health FROM clicks")?;
    println!(
        "exit freshness    : {} stats from the moments pipeline",
        audit.result.rows.len()
    );

    if smoke {
        assert!(live < inserted / 2, "less than half the stream rotted");
        assert!(t.absorbed > 0, "no departures reached the sketches");
        println!("\nsmoke OK");
    }
    Ok(())
}

/// Compact weight rendering for the table cells.
fn truncate(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.1}"),
        other => other.to_string(),
    }
}
