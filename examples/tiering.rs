//! Hot → warm → cold tiering with rot routes.
//!
//! The paper: data taken out of `R` may be "stored in a new container
//! subject to different data fungi". Chained routes make that a storage
//! hierarchy: full-fidelity rows live briefly in `hot`; when they rot,
//! a projection flows to `warm` (longer TTL, fewer columns); what rots
//! there flows on to `cold`, which only ever holds the value column and
//! distills everything it finally loses into permanent summaries.
//!
//! ```text
//! cargo run --example tiering
//! ```

use spacefungus::fungus_core::RouteSpec;
use spacefungus::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new(77);

    // Tier 1: full rows, 20-tick life.
    let hot_schema = Schema::from_pairs(&[
        ("sensor", DataType::Int),
        ("reading", DataType::Float),
        ("site", DataType::Str),
    ])?;
    db.create_container(
        "hot",
        hot_schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 20 }),
    )?;

    // Tier 2: drop the site column, 100-tick life.
    let warm_schema =
        Schema::from_pairs(&[("sensor", DataType::Int), ("reading", DataType::Float)])?;
    db.create_container(
        "warm",
        warm_schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 100 }),
    )?;

    // Tier 3: reading only, 400-tick life, with a terminal distiller.
    let cold_schema = Schema::from_pairs(&[("reading", DataType::Float)])?;
    db.create_container(
        "cold",
        cold_schema,
        ContainerPolicy::new(FungusSpec::Retention { max_age: 400 }).with_distiller(DistillSpec {
            name: "eternal-stats".into(),
            column: Some("reading".into()),
            summary: SummarySpec::Moments,
            trigger: DistillTrigger::Both,
        }),
    )?;

    // The chain: hot rots into warm, warm rots into cold.
    db.add_route(
        "hot",
        RouteSpec {
            to: "warm".into(),
            columns: vec!["sensor".into(), "reading".into()],
            trigger: DistillTrigger::Rotted,
        },
    )?;
    db.add_route(
        "warm",
        RouteSpec {
            to: "cold".into(),
            columns: vec!["reading".into()],
            trigger: DistillTrigger::Rotted,
        },
    )?;

    let mut fleet = SensorStream::new(10, 20, db.rng());
    println!("tick |   hot |  warm |  cold | distilled");
    println!("-----+-------+-------+-------+----------");
    for t in 1..=600u64 {
        db.tick();
        db.insert_batch("hot", fleet.rows_at(Tick(t)))?;
        if t % 100 == 0 {
            let count = |n: &str| db.container(n).unwrap().read().live_count();
            let distilled = db
                .container("cold")?
                .read()
                .distiller()
                .absorbed("eternal-stats")
                .unwrap_or(0);
            println!(
                "{t:>4} | {:>5} | {:>5} | {:>5} | {distilled:>8}",
                count("hot"),
                count("warm"),
                count("cold"),
            );
        }
    }

    // Each tier is bounded by rate × its horizon; nothing is ever lost
    // unrecorded: the terminal summary saw every reading that fell off the
    // end of the hierarchy.
    let cold = db.container("cold")?;
    let guard = cold.read();
    if let Some(AnySummary::Moments(m)) = guard.distiller().summary("eternal-stats") {
        println!(
            "\nreadings that aged out of all three tiers: n={} mean={:.2}",
            m.count(),
            m.mean().unwrap_or(0.0)
        );
    }
    for name in ["hot", "warm", "cold"] {
        let h = db.health(name)?;
        println!("{name:>5}: health {:.2} ({:?})", h.score, h.status);
    }
    Ok(())
}
