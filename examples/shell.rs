//! An interactive shell over a spacefungus database.
//!
//! ```text
//! cargo run --example shell
//! ```
//!
//! SQL statements run against the live database; `.`-commands manage it:
//!
//! ```text
//! .create <name> <col:type,…> [fungus]   create a container
//! .tick [n]                              advance the decay clock
//! .health [name]                         health report(s)
//! .stats <name>                          storage statistics
//! .census <name>                         rot-spot census
//! .sketch <name> <summary> [top]         read a cooking pipeline
//! .save <dir> / .load <dir>              checkpoint / restore
//! .tables                                list containers
//! .help / .quit
//! ```
//!
//! Fungus shorthands: `none`, `ttl:<ticks>`, `linear:<ticks>`,
//! `exp:<lambda>`, `window:<n>`, `egi`, `lease:<ticks>`.

use std::io::{self, BufRead, Write};

use spacefungus::prelude::*;

fn parse_fungus(spec: &str) -> Result<FungusSpec> {
    let (kind, arg) = match spec.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (spec, None),
    };
    let num = |a: Option<&str>| -> Result<f64> {
        a.and_then(|s| s.parse().ok()).ok_or_else(|| {
            FungusError::InvalidConfig(format!("fungus `{spec}` needs a numeric parameter"))
        })
    };
    Ok(match kind {
        "none" => FungusSpec::Null,
        "ttl" => FungusSpec::Retention {
            max_age: num(arg)? as u64,
        },
        "linear" => FungusSpec::Linear {
            lifetime: num(arg)? as u64,
        },
        "exp" => FungusSpec::Exponential {
            lambda: num(arg)?,
            rot_threshold: 0.01,
        },
        "window" => FungusSpec::SlidingWindow {
            capacity: num(arg)? as usize,
        },
        "lease" => FungusSpec::Lease {
            lease: num(arg)? as u64,
        },
        "egi" => FungusSpec::egi_default(),
        other => {
            return Err(FungusError::InvalidConfig(format!(
                "unknown fungus `{other}`"
            )))
        }
    })
}

fn parse_schema(spec: &str) -> Result<Schema> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part.split_once(':').ok_or_else(|| {
            FungusError::InvalidConfig(format!("column `{part}` must be name:type"))
        })?;
        let data_type = match ty.to_ascii_lowercase().as_str() {
            "int" => DataType::Int,
            "float" => DataType::Float,
            "str" | "string" | "text" => DataType::Str,
            "bool" => DataType::Bool,
            other => {
                return Err(FungusError::InvalidConfig(format!(
                    "unknown type `{other}`"
                )))
            }
        };
        cols.push(ColumnDef::nullable(name, data_type));
    }
    Schema::new(cols)
}

fn print_result(result: &ResultSet) {
    println!("{}", result.columns.join("\t"));
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    let mut notes = vec![format!("{} row(s)", result.rows.len())];
    if !result.consumed.is_empty() {
        notes.push(format!("{} consumed", result.consumed.len()));
    }
    if result.pruned_segments > 0 {
        notes.push(format!("{} segment(s) pruned", result.pruned_segments));
    }
    println!("-- {}", notes.join(", "));
}

fn dispatch(db: &mut Database, trace: &mut Trace, line: &str) -> Result<bool> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(true);
    }
    if !line.starts_with('.') {
        let now = db.now();
        let out = db.execute_ddl(line)?;
        trace.record(now, line)?;
        print_result(&out.result);
        if out.distilled > 0 {
            println!("-- {} value(s) distilled", out.distilled);
        }
        return Ok(true);
    }
    let mut parts = line.split_whitespace();
    match parts.next().unwrap_or_default() {
        ".quit" | ".exit" => return Ok(false),
        ".help" => {
            println!(
                ".create <name> <col:type,…> [fungus]\n.tick [n]\n.health [name]\n\
                 .stats <name>\n.census <name>\n.sketch <name> <summary> [top]\n\
                 .save <dir>\n.load <dir>\n\
                 .explain <select …>\n.save-trace <file>\n.replay <file>\n.tables\n.quit"
            );
        }
        ".save-trace" => {
            let path = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".save-trace needs a file path".into())
            })?;
            trace.save(path)?;
            println!("saved {} statement(s) to {path}", trace.len());
        }
        ".replay" => {
            let path = parts
                .next()
                .ok_or_else(|| FungusError::InvalidConfig(".replay needs a file path".into()))?;
            let recorded = Trace::load(path)?;
            let report = recorded.replay(db)?;
            println!(
                "replayed {} statement(s) over {} tick(s): {} row(s), {} consumed",
                report.statements,
                report.ticks_advanced,
                report.rows_returned,
                report.tuples_consumed
            );
        }
        ".route" => {
            let from = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".route needs a source container".into())
            })?;
            let to = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".route needs a target container".into())
            })?;
            let columns: Vec<String> = parts
                .next()
                .ok_or_else(|| FungusError::InvalidConfig(".route needs a column list".into()))?
                .split(',')
                .map(str::to_string)
                .collect();
            let trigger = match parts.next().unwrap_or("rotted") {
                "rotted" => DistillTrigger::Rotted,
                "consumed" => DistillTrigger::Consumed,
                "both" => DistillTrigger::Both,
                other => {
                    return Err(FungusError::InvalidConfig(format!(
                        "unknown trigger `{other}`"
                    )))
                }
            };
            db.add_route(
                from,
                spacefungus::fungus_core::RouteSpec {
                    to: to.into(),
                    columns,
                    trigger,
                },
            )?;
            println!("routing {from} departures to {to}");
        }
        ".explain" => {
            let sql = line.trim_start_matches(".explain").trim();
            match parse_statement(sql)? {
                Statement::Select(stmt) => {
                    let c = db.container(&stmt.table)?;
                    let plan = c.read().plan(&stmt)?;
                    println!("{plan}");
                }
                _ => println!("only SELECT statements can be explained"),
            }
        }
        ".tables" => {
            for name in db.container_names() {
                let c = db.container(&name)?;
                let guard = c.read();
                println!(
                    "{name}\t{} live\t{}\t{}",
                    guard.live_count(),
                    guard.schema(),
                    guard.fungus_description()
                );
            }
        }
        ".create" => {
            let name = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".create needs a container name".into())
            })?;
            let schema = parse_schema(
                parts
                    .next()
                    .ok_or_else(|| FungusError::InvalidConfig(".create needs a schema".into()))?,
            )?;
            let fungus = match parts.next() {
                Some(spec) => parse_fungus(spec)?,
                None => FungusSpec::Null,
            };
            db.create_container(name, schema, ContainerPolicy::new(fungus))?;
            println!("created `{name}`");
        }
        ".tick" => {
            let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            let now = db.run_for(n);
            println!("clock at {now}");
        }
        ".health" => {
            let reports = match parts.next() {
                Some(name) => vec![(name.to_string(), db.health(name)?)],
                None => db.health_all(),
            };
            for (name, r) in reports {
                println!(
                    "{name}: score {:.2} ({:?}), waste {:.2}, near-rotten {:.2}",
                    r.score, r.status, r.waste_ratio, r.near_rotten_fraction
                );
                for advice in &r.recommendations {
                    println!("  {advice}");
                }
            }
        }
        ".stats" => {
            let name = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".stats needs a container name".into())
            })?;
            let c = db.container(name)?;
            let guard = c.read();
            let s = guard.stats(db.now());
            println!(
                "live {} of {} inserted, {:.1} KiB in {} segment(s)",
                s.live_count,
                s.total_inserted,
                s.approx_bytes as f64 / 1024.0,
                s.segment_count
            );
            println!(
                "freshness mean {:.3} min {:.3}; infected {}; rotted {} (unread {}), consumed {}",
                s.mean_freshness,
                s.min_freshness,
                s.infected_count,
                s.evicted_rotted,
                s.rotted_unread,
                s.evicted_consumed
            );
        }
        // `.sketch <container> <summary> [top]` is the dot-command
        // spelling of `SUMMARIZE <summary> FROM <container> [TOP n]`.
        ".sketch" => {
            let container = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".sketch needs a container and a summary name".into())
            })?;
            let summary = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".sketch needs a container and a summary name".into())
            })?;
            let sql = match parts.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(top) => format!("SUMMARIZE {summary} FROM {container} TOP {top}"),
                None => format!("SUMMARIZE {summary} FROM {container}"),
            };
            print_result(&db.execute(&sql)?.result);
        }
        ".census" => {
            let name = parts.next().ok_or_else(|| {
                FungusError::InvalidConfig(".census needs a container name".into())
            })?;
            let c = db.container(name)?;
            let census = c.read().spot_census();
            println!(
                "{} rotting spot(s) (largest {}, mean {:.1}); {} hole(s) eaten (largest {})",
                census.infected_spots,
                census.largest_infected_spot,
                census.mean_infected_spot(),
                census.rot_holes,
                census.largest_rot_hole
            );
        }
        ".save" => {
            let dir = parts
                .next()
                .ok_or_else(|| FungusError::InvalidConfig(".save needs a directory".into()))?;
            db.checkpoint(dir)?;
            println!("checkpointed to {dir}");
        }
        ".load" => {
            let dir = parts
                .next()
                .ok_or_else(|| FungusError::InvalidConfig(".load needs a directory".into()))?;
            db.restore_checkpoint(dir)?;
            println!("restored from {dir}");
        }
        other => {
            return Err(FungusError::InvalidConfig(format!(
                "unknown command `{other}` (try .help)"
            )))
        }
    }
    Ok(true)
}

fn main() {
    let mut db = Database::new(2015);
    let mut trace = Trace::new();
    println!("spacefungus shell — data decays by design. Try .help");
    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("fungus> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        match dispatch(&mut db, &mut trace, &line) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    println!("goodbye — don't forget to eat your rice.");
}
